//! Crash-safe campaign progress persistence.
//!
//! A manifest is a JSON-lines file: a header object identifying the
//! campaign (name + fingerprint), then one [`CellResult`] object per
//! completed cell. Workers append a line — with an immediate write
//! syscall, no userspace buffering — the moment a cell finishes, so a
//! killed campaign loses at most the cells that were in flight. Resuming
//! loads the manifest, validates the fingerprint against the spec to be
//! run, and skips every recorded cell.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write as _};
use std::path::{Path, PathBuf};

use crate::json;
use crate::report::CellResult;
use crate::spec::CampaignSpec;
use crate::CampaignError;

/// Completed cells recovered from a manifest file.
#[derive(Debug, Default)]
pub struct ManifestState {
    /// Completed results, keyed by cell key.
    pub completed: BTreeMap<String, CellResult>,
}

/// An open, append-mode manifest.
#[derive(Debug)]
pub struct Manifest {
    path: PathBuf,
    file: File,
}

impl Manifest {
    /// Creates a fresh manifest for `spec`, truncating any existing file,
    /// and writes the header line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn create(path: &Path, spec: &CampaignSpec) -> Result<Manifest, CampaignError> {
        let mut file = File::create(path).map_err(|e| io_err(path, &e))?;
        let mut header = String::new();
        let _ = writeln!(
            header,
            "{{\"campaign\": \"{}\", \"fingerprint\": \"{}\", \"cells\": {}}}",
            json::escape(&spec.name),
            json::escape(&spec.fingerprint()),
            spec.cells.len(),
        );
        file.write_all(header.as_bytes()).map_err(|e| io_err(path, &e))?;
        Ok(Manifest { path: path.to_path_buf(), file })
    }

    /// Opens an existing manifest for `spec`, validates its header, and
    /// returns the append handle plus the recovered completed cells.
    /// Truncated or corrupt trailing lines (a crash mid-append) are
    /// ignored; every fully-written line is recovered.
    ///
    /// # Errors
    ///
    /// Fails when the file is unreadable, the header is missing or
    /// malformed, or the fingerprint does not match `spec` (resuming a
    /// manifest of a different campaign would silently mix results).
    pub fn resume(
        path: &Path,
        spec: &CampaignSpec,
    ) -> Result<(Manifest, ManifestState), CampaignError> {
        let reader =
            BufReader::new(File::open(path).map_err(|e| io_err(path, &e))?);
        let mut lines = reader.lines();
        let header_line = match lines.next() {
            Some(line) => line.map_err(|e| io_err(path, &e))?,
            None => {
                return Err(CampaignError::Manifest {
                    path: path.display().to_string(),
                    reason: "empty manifest (no header line)".into(),
                })
            }
        };
        let header = json::parse_object(&header_line).map_err(|reason| {
            CampaignError::Manifest { path: path.display().to_string(), reason }
        })?;
        let campaign = header.get("campaign").and_then(json::Json::as_str).unwrap_or("");
        let fingerprint =
            header.get("fingerprint").and_then(json::Json::as_str).unwrap_or("");
        if campaign != spec.name || fingerprint != spec.fingerprint() {
            return Err(CampaignError::Manifest {
                path: path.display().to_string(),
                reason: format!(
                    "manifest is for campaign {campaign:?} (fingerprint {fingerprint}), \
                     not {:?} (fingerprint {}); use a fresh manifest path or --fresh",
                    spec.name,
                    spec.fingerprint(),
                ),
            });
        }

        let valid_keys: std::collections::BTreeSet<String> =
            spec.cells.iter().map(crate::spec::CellSpec::key).collect();
        let mut state = ManifestState::default();
        for line in lines {
            let line = line.map_err(|e| io_err(path, &e))?;
            if line.trim().is_empty() {
                continue;
            }
            // A crash mid-append leaves at most one partial trailing line;
            // recover everything parseable and drop the rest.
            let Ok(cell) = CellResult::from_json(&line) else { continue };
            if valid_keys.contains(&cell.key) {
                state.completed.insert(cell.key.clone(), cell);
            }
        }

        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, &e))?;
        Ok((Manifest { path: path.to_path_buf(), file }, state))
    }

    /// Appends one completed cell, immediately handing the line to the OS.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn record(&mut self, cell: &CellResult) -> Result<(), CampaignError> {
        let mut line = cell.to_json();
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| io_err(&self.path, &e))
    }
}

fn io_err(path: &Path, e: &std::io::Error) -> CampaignError {
    CampaignError::Io { path: path.display().to_string(), reason: e.to_string() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(key: &str) -> CellResult {
        CellResult {
            key: key.into(),
            exit_code: 42,
            instructions: 10,
            operations: 9,
            cycles: None,
            l1_miss_ratio: None,
            wall_seconds: 0.1,
            mips: 0.0001,
            ns_per_instruction: 1e7,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("kahrisma-campaign-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn create_record_resume_round_trip() {
        let path = tmp("roundtrip.jsonl");
        let spec = CampaignSpec::by_name("smoke").unwrap();
        let key = spec.cells[0].key();
        {
            let mut m = Manifest::create(&path, &spec).unwrap();
            m.record(&sample(&key)).unwrap();
        }
        let (_m, state) = Manifest::resume(&path, &spec).unwrap();
        assert_eq!(state.completed.len(), 1);
        assert!(state.completed.contains_key(&key));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_foreign_fingerprint() {
        let path = tmp("foreign.jsonl");
        let smoke = CampaignSpec::by_name("smoke").unwrap();
        Manifest::create(&path, &smoke).unwrap();
        let err = Manifest::resume(&path, &CampaignSpec::by_name("table1").unwrap()).unwrap_err();
        assert!(err.to_string().contains("fingerprint"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_survives_truncated_trailing_line() {
        let path = tmp("truncated.jsonl");
        let spec = CampaignSpec::by_name("smoke").unwrap();
        let key = spec.cells[0].key();
        {
            let mut m = Manifest::create(&path, &spec).unwrap();
            m.record(&sample(&key)).unwrap();
        }
        // Simulate a crash mid-append: a partial JSON line at the end.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"key\": \"dct/vliw4/aie/superblock\", \"exit").unwrap();
        }
        let (_m, state) = Manifest::resume(&path, &spec).unwrap();
        assert_eq!(state.completed.len(), 1);
        assert!(state.completed.contains_key(&key));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_ignores_keys_outside_the_campaign() {
        let path = tmp("foreignkeys.jsonl");
        let spec = CampaignSpec::by_name("smoke").unwrap();
        {
            let mut m = Manifest::create(&path, &spec).unwrap();
            m.record(&sample("not/a/real/cell")).unwrap();
        }
        let (_m, state) = Manifest::resume(&path, &spec).unwrap();
        assert!(state.completed.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
