//! The campaign execution front end: manifest-backed resumable runs on
//! the planner's in-process worker pool.
//!
//! The actual scheduling engine is [`kahrisma_plan::LocalPlanner`]; this
//! module owns what is campaign-specific — manifest resume/creation and
//! the [`RunOptions`]/[`RunSummary`] surface `kbatch` exposes. Completed
//! cells are appended to the manifest from the planner's result hook the
//! moment they finish, exactly as the pre-planner runner did, so per-cell
//! results stay bit-identical regardless of worker count or scheduling
//! order.

use std::collections::BTreeSet;
use std::path::PathBuf;

use kahrisma_plan::{LocalPlanner, PlanError, PlanSession, Planner};

use crate::manifest::Manifest;
use crate::report::{CellResult, Report};
use crate::spec::CampaignSpec;
use crate::CampaignError;

pub use kahrisma_plan::DEFAULT_SLICE;

/// How a campaign run should execute.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads (cells in flight at once). Clamped to ≥ 1.
    pub workers: usize,
    /// Manifest file for crash-safe progress; `None` disables persistence.
    pub manifest: Option<PathBuf>,
    /// Start over even when the manifest already has completed cells.
    pub fresh: bool,
    /// Execute at most this many cells in this invocation, then stop —
    /// the remaining cells stay queued in the manifest for a later resume.
    pub stop_after: Option<usize>,
    /// Instructions per incremental `run_for` slice.
    pub slice: u64,
    /// Print one progress line per completed cell to stderr.
    pub progress: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            workers: 1,
            manifest: None,
            fresh: false,
            stop_after: None,
            slice: DEFAULT_SLICE,
            progress: false,
        }
    }
}

/// What a campaign run did.
#[derive(Debug)]
pub struct RunSummary {
    /// Aggregated results (resumed + newly executed), sorted by key.
    /// When `interrupted`, contains only the cells completed so far.
    pub report: Report,
    /// Cells executed by this invocation.
    pub executed: usize,
    /// Cells skipped because the manifest already recorded them.
    pub skipped: usize,
    /// `true` when `stop_after` stopped the run before all cells finished.
    pub interrupted: bool,
}

/// Runs a campaign and aggregates its report.
///
/// # Errors
///
/// Fails on manifest I/O or validation problems, on simulation errors, and
/// when any workload fails its self-check — a campaign of broken runs must
/// not produce a report.
///
/// # Panics
///
/// Panics only if a worker thread itself panics (a bug, not a measurement
/// condition).
pub fn run(spec: &CampaignSpec, options: &RunOptions) -> Result<RunSummary, CampaignError> {
    let plan = spec.to_plan();
    let fingerprint = plan.fingerprint();
    let mut completed: Vec<CellResult> = Vec::new();
    let mut manifest = None;
    if let Some(path) = &options.manifest {
        if path.exists() && !options.fresh {
            let (m, state) = Manifest::resume(path, spec)?;
            completed = state.completed.into_values().collect();
            manifest = Some(m);
        } else {
            manifest = Some(Manifest::create(path, spec)?);
        }
    }

    let skip: BTreeSet<String> = completed.iter().map(|c| c.key.clone()).collect();
    let mut record = |result: &CellResult| -> Result<(), PlanError> {
        match &mut manifest {
            Some(m) => m.record(result).map_err(|e| match e {
                CampaignError::Io { path, reason } => PlanError::Io { path, reason },
                other => PlanError::Io { path: "manifest".into(), reason: other.to_string() },
            }),
            None => Ok(()),
        }
    };
    let mut session = PlanSession {
        skip,
        stop_after: options.stop_after,
        progress: options.progress,
        on_result: Some(&mut record),
    };
    let mut planner = LocalPlanner { workers: options.workers, slice: options.slice };
    let run = planner.run_plan(&plan, &mut session)?;
    drop(session);

    let executed = run.executed;
    completed.extend(run.results);
    Ok(RunSummary {
        report: Report::new(&spec.name, &fingerprint, completed),
        executed,
        skipped: run.skipped,
        interrupted: run.interrupted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CellSpec, Engine};
    use kahrisma_core::CycleModelKind;
    use kahrisma_isa::IsaKind;
    use kahrisma_workloads::Workload;

    fn tiny_spec() -> CampaignSpec {
        let mut spec = CampaignSpec {
            name: "tiny".into(),
            cells: vec![
                CellSpec::new(Workload::Dct, IsaKind::Risc, Engine::Iss(None)),
                CellSpec::new(
                    Workload::Dct,
                    IsaKind::Risc,
                    Engine::Iss(Some(CycleModelKind::Ilp)),
                ),
            ],
        };
        for c in &mut spec.cells {
            c.budget = 50_000_000;
        }
        spec
    }

    #[test]
    fn runs_a_tiny_campaign() {
        let spec = tiny_spec();
        let summary = run(&spec, &RunOptions::default()).unwrap();
        assert_eq!(summary.executed, 2);
        assert_eq!(summary.skipped, 0);
        assert!(!summary.interrupted);
        assert_eq!(summary.report.cells.len(), 2);
        let func = summary.report.get("dct/risc/func/superblock").unwrap();
        assert_eq!(func.exit_code, Workload::Dct.expected_exit());
        assert!(func.cycles.is_none());
        let ilp = summary.report.get("dct/risc/ilp/superblock").unwrap();
        assert!(ilp.cycles.unwrap() > 0);
        assert_eq!(ilp.instructions, func.instructions);
    }

    #[test]
    fn stop_after_interrupts() {
        let spec = tiny_spec();
        let options = RunOptions { stop_after: Some(1), ..RunOptions::default() };
        let summary = run(&spec, &options).unwrap();
        assert_eq!(summary.executed, 1);
        assert!(summary.interrupted);
    }

    #[test]
    fn repeats_reuse_one_simulator() {
        let mut spec = tiny_spec();
        spec.cells.truncate(1);
        spec.cells[0].repeats = 3;
        let summary = run(&spec, &RunOptions::default()).unwrap();
        let cell = &summary.report.cells[0];
        assert_eq!(cell.exit_code, Workload::Dct.expected_exit());
        assert!(cell.wall_seconds > 0.0);
    }

    #[test]
    fn metrics_block_is_bit_identical_across_worker_counts() {
        let spec = tiny_spec();
        let one = run(&spec, &RunOptions::default()).unwrap();
        let two =
            run(&spec, &RunOptions { workers: 2, ..RunOptions::default() }).unwrap();
        assert!(one.report.deterministic_eq(&two.report));
        assert_eq!(one.report.metrics().to_json(), two.report.metrics().to_json());
    }

    #[test]
    fn tiny_slices_produce_identical_counters() {
        let mut spec = tiny_spec();
        spec.name = "tiny-sliced".into();
        let coarse = run(&spec, &RunOptions::default()).unwrap();
        let fine =
            run(&spec, &RunOptions { slice: 1_000, ..RunOptions::default() }).unwrap();
        assert!(coarse.report.deterministic_eq(&fine.report));
    }
}
