//! The campaign execution engine: a work-stealing worker pool over the
//! cells of a [`CampaignSpec`].
//!
//! Each worker repeatedly claims the next unclaimed cell from a shared
//! queue, builds (or fetches from a shared cache) the workload executable,
//! runs the cell's simulation single-threadedly, and appends the result to
//! the manifest the moment it completes. Per-cell results are therefore
//! bit-identical regardless of worker count or scheduling order, and the
//! final report — sorted by cell key — is deterministic up to its
//! wall-clock timing fields.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use kahrisma_core::{RunOutcome, Simulator, Throughput};
use kahrisma_elf::Executable;
use kahrisma_isa::IsaKind;
use kahrisma_rtl::RtlConfig;
use kahrisma_workloads::Workload;

use crate::manifest::Manifest;
use crate::report::{CellResult, Report};
use crate::spec::{CampaignSpec, CellSpec, Engine};
use crate::CampaignError;

/// Instructions per [`Simulator::run_for`] slice. Between slices a worker
/// is at a checkpointable boundary; the value trades checkpoint granularity
/// against per-slice overhead.
pub const DEFAULT_SLICE: u64 = 4_000_000;

/// How a campaign run should execute.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads (cells in flight at once). Clamped to ≥ 1.
    pub workers: usize,
    /// Manifest file for crash-safe progress; `None` disables persistence.
    pub manifest: Option<PathBuf>,
    /// Start over even when the manifest already has completed cells.
    pub fresh: bool,
    /// Execute at most this many cells in this invocation, then stop —
    /// the remaining cells stay queued in the manifest for a later resume.
    pub stop_after: Option<usize>,
    /// Instructions per incremental `run_for` slice.
    pub slice: u64,
    /// Print one progress line per completed cell to stderr.
    pub progress: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            workers: 1,
            manifest: None,
            fresh: false,
            stop_after: None,
            slice: DEFAULT_SLICE,
            progress: false,
        }
    }
}

/// What a campaign run did.
#[derive(Debug)]
pub struct RunSummary {
    /// Aggregated results (resumed + newly executed), sorted by key.
    /// When `interrupted`, contains only the cells completed so far.
    pub report: Report,
    /// Cells executed by this invocation.
    pub executed: usize,
    /// Cells skipped because the manifest already recorded them.
    pub skipped: usize,
    /// `true` when `stop_after` stopped the run before all cells finished.
    pub interrupted: bool,
}

/// State shared between workers, guarded by one mutex: the claim queue,
/// the execution permits, the result sink and the manifest appender.
struct Shared {
    queue: VecDeque<CellSpec>,
    permits: Option<usize>,
    interrupted: bool,
    results: Vec<CellResult>,
    manifest: Option<Manifest>,
    error: Option<CampaignError>,
    done: usize,
    total: usize,
}

type BuildCache = Mutex<HashMap<(Workload, IsaKind), Arc<Executable>>>;

/// Runs a campaign and aggregates its report.
///
/// # Errors
///
/// Fails on manifest I/O or validation problems, on simulation errors, and
/// when any workload fails its self-check — a campaign of broken runs must
/// not produce a report.
///
/// # Panics
///
/// Panics only if a worker thread itself panics (a bug, not a measurement
/// condition).
pub fn run(spec: &CampaignSpec, options: &RunOptions) -> Result<RunSummary, CampaignError> {
    let fingerprint = spec.fingerprint();
    let mut completed: Vec<CellResult> = Vec::new();
    let mut manifest = None;
    if let Some(path) = &options.manifest {
        if path.exists() && !options.fresh {
            let (m, state) = Manifest::resume(path, spec)?;
            completed = state.completed.into_values().collect();
            manifest = Some(m);
        } else {
            manifest = Some(Manifest::create(path, spec)?);
        }
    }

    let done_keys: BTreeSet<&str> =
        completed.iter().map(|c| c.key.as_str()).collect();
    let queue: VecDeque<CellSpec> = spec
        .cells
        .iter()
        .filter(|c| !done_keys.contains(c.key().as_str()))
        .cloned()
        .collect();
    let skipped = spec.cells.len() - queue.len();
    let pending = queue.len();

    let shared = Mutex::new(Shared {
        queue,
        permits: options.stop_after,
        interrupted: false,
        results: Vec::new(),
        manifest,
        error: None,
        done: skipped,
        total: spec.cells.len(),
    });
    let builds: BuildCache = Mutex::new(HashMap::new());

    let workers = options.workers.clamp(1, pending.max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| worker(&shared, &builds, options));
        }
    });

    let mut shared = shared.into_inner().expect("no worker panicked");
    if let Some(error) = shared.error {
        return Err(error);
    }
    let executed = shared.results.len();
    completed.append(&mut shared.results);
    Ok(RunSummary {
        report: Report::new(&spec.name, &fingerprint, completed),
        executed,
        skipped,
        interrupted: shared.interrupted,
    })
}

/// One worker: claim, build, simulate, record — until the queue drains,
/// the permits run out, or another worker hit an error.
fn worker(shared: &Mutex<Shared>, builds: &BuildCache, options: &RunOptions) {
    loop {
        let cell = {
            let mut s = shared.lock().expect("no worker panicked");
            if s.error.is_some() {
                return;
            }
            if s.queue.is_empty() {
                return;
            }
            if s.permits == Some(0) {
                s.interrupted = true;
                return;
            }
            if let Some(p) = &mut s.permits {
                *p -= 1;
            }
            s.queue.pop_front().expect("checked non-empty")
        };

        let started = Instant::now();
        let outcome = build_cached(builds, &cell)
            .and_then(|exe| run_cell(&cell, &exe, options.slice));
        let mut s = shared.lock().expect("no worker panicked");
        match outcome {
            Ok(result) => {
                if let Some(m) = &mut s.manifest {
                    if let Err(e) = m.record(&result) {
                        s.error.get_or_insert(e);
                        return;
                    }
                }
                s.done += 1;
                if options.progress {
                    eprintln!(
                        "[{}/{}] {:<40} {:>7.2}s {:>9.3} MIPS",
                        s.done,
                        s.total,
                        result.key,
                        started.elapsed().as_secs_f64(),
                        result.mips,
                    );
                }
                s.results.push(result);
            }
            Err(e) => {
                s.error.get_or_insert(e);
                return;
            }
        }
    }
}

/// Builds (or fetches) the executable for a cell's workload × ISA. Two
/// workers racing on the same pair may both compile; the first insert wins
/// and compilation is deterministic, so the race is only wasted work.
fn build_cached(
    builds: &BuildCache,
    cell: &CellSpec,
) -> Result<Arc<Executable>, CampaignError> {
    let pair = (cell.workload, cell.isa);
    if let Some(exe) = builds.lock().expect("no worker panicked").get(&pair) {
        return Ok(Arc::clone(exe));
    }
    let exe = cell.workload.build(cell.isa).map_err(|e| CampaignError::Cell {
        key: cell.key(),
        reason: format!("toolchain error: {e}"),
    })?;
    let exe = Arc::new(exe);
    Ok(Arc::clone(
        builds
            .lock()
            .expect("no worker panicked")
            .entry(pair)
            .or_insert(exe),
    ))
}

/// Runs one cell to completion and validates the workload's self-check.
fn run_cell(
    cell: &CellSpec,
    exe: &Executable,
    slice: u64,
) -> Result<CellResult, CampaignError> {
    let cell_err = |reason: String| CampaignError::Cell { key: cell.key(), reason };
    let expected = cell.workload.expected_exit();
    match cell.engine {
        Engine::Rtl => {
            let start = Instant::now();
            let rtl = kahrisma_rtl::simulate(exe, &RtlConfig::default(), cell.budget)
                .map_err(|e| cell_err(format!("rtl simulation error: {e}")))?;
            let wall = start.elapsed().as_secs_f64();
            let exit_code = rtl
                .exit_code
                .ok_or_else(|| cell_err("instruction budget exhausted".into()))?;
            if exit_code != expected {
                return Err(cell_err(format!(
                    "self-check failed: exit {exit_code}, expected {expected}"
                )));
            }
            let t = Throughput::new(rtl.instructions, wall);
            Ok(CellResult {
                key: cell.key(),
                exit_code,
                instructions: rtl.instructions,
                operations: rtl.operations,
                cycles: Some(rtl.cycles),
                l1_miss_ratio: None,
                wall_seconds: t.wall_seconds,
                mips: t.mips,
                ns_per_instruction: t.ns_per_instruction,
            })
        }
        Engine::Iss(_) => {
            let config = cell.sim_config();
            let mut sim = Simulator::new(exe, config)
                .map_err(|e| cell_err(format!("load error: {e}")))?;
            let mut best_wall = f64::INFINITY;
            for repeat in 0..cell.repeats.max(1) {
                if repeat > 0 {
                    sim.reset();
                }
                let wall = run_sliced(&mut sim, cell, slice).map_err(&cell_err)?;
                best_wall = best_wall.min(wall);
            }
            if !sim.state().halted {
                return Err(cell_err("program did not halt".into()));
            }
            let exit = sim.state().exit_code;
            if exit != expected {
                return Err(cell_err(format!(
                    "self-check failed: exit {exit}, expected {expected}"
                )));
            }
            let stats = *sim.stats();
            let cycles = sim.cycle_stats();
            let operations = cycles
                .as_ref()
                .map_or(stats.operations, |c| c.operations);
            let l1_miss_ratio = cycles.as_ref().and_then(|c| {
                c.memory.iter().find_map(|l| l.cache).map(|c| c.miss_ratio())
            });
            let t = stats.throughput(best_wall);
            Ok(CellResult {
                key: cell.key(),
                exit_code: exit,
                instructions: stats.instructions,
                operations,
                cycles: cycles.map(|c| c.cycles),
                l1_miss_ratio,
                wall_seconds: t.wall_seconds,
                mips: t.mips,
                ns_per_instruction: t.ns_per_instruction,
            })
        }
    }
}

/// Drives a simulator to halt in `run_for` slices, enforcing the cell's
/// instruction budget. Returns the wall-clock seconds of the run.
fn run_sliced(sim: &mut Simulator, cell: &CellSpec, slice: u64) -> Result<f64, String> {
    let slice = slice.max(1);
    let start = Instant::now();
    loop {
        let executed = sim.stats().instructions;
        if executed >= cell.budget {
            return Err(format!("instruction budget exhausted ({executed})"));
        }
        let step = slice.min(cell.budget - executed);
        match sim.run_for(step).map_err(|e| format!("simulation error: {e}"))? {
            RunOutcome::Halted { .. } => return Ok(start.elapsed().as_secs_f64()),
            RunOutcome::BudgetExhausted => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kahrisma_core::CycleModelKind;

    fn tiny_spec() -> CampaignSpec {
        let mut spec = CampaignSpec {
            name: "tiny".into(),
            cells: vec![
                CellSpec::new(Workload::Dct, IsaKind::Risc, Engine::Iss(None)),
                CellSpec::new(
                    Workload::Dct,
                    IsaKind::Risc,
                    Engine::Iss(Some(CycleModelKind::Ilp)),
                ),
            ],
        };
        for c in &mut spec.cells {
            c.budget = 50_000_000;
        }
        spec
    }

    #[test]
    fn runs_a_tiny_campaign() {
        let spec = tiny_spec();
        let summary = run(&spec, &RunOptions::default()).unwrap();
        assert_eq!(summary.executed, 2);
        assert_eq!(summary.skipped, 0);
        assert!(!summary.interrupted);
        assert_eq!(summary.report.cells.len(), 2);
        let func = summary.report.get("dct/risc/func/superblock").unwrap();
        assert_eq!(func.exit_code, Workload::Dct.expected_exit());
        assert!(func.cycles.is_none());
        let ilp = summary.report.get("dct/risc/ilp/superblock").unwrap();
        assert!(ilp.cycles.unwrap() > 0);
        assert_eq!(ilp.instructions, func.instructions);
    }

    #[test]
    fn stop_after_interrupts() {
        let spec = tiny_spec();
        let options = RunOptions { stop_after: Some(1), ..RunOptions::default() };
        let summary = run(&spec, &options).unwrap();
        assert_eq!(summary.executed, 1);
        assert!(summary.interrupted);
    }

    #[test]
    fn repeats_reuse_one_simulator() {
        let mut spec = tiny_spec();
        spec.cells.truncate(1);
        spec.cells[0].repeats = 3;
        let summary = run(&spec, &RunOptions::default()).unwrap();
        let cell = &summary.report.cells[0];
        assert_eq!(cell.exit_code, Workload::Dct.expected_exit());
        assert!(cell.wall_seconds > 0.0);
    }

    #[test]
    fn metrics_block_is_bit_identical_across_worker_counts() {
        let spec = tiny_spec();
        let one = run(&spec, &RunOptions::default()).unwrap();
        let two =
            run(&spec, &RunOptions { workers: 2, ..RunOptions::default() }).unwrap();
        assert!(one.report.deterministic_eq(&two.report));
        assert_eq!(one.report.metrics().to_json(), two.report.metrics().to_json());
    }

    #[test]
    fn tiny_slices_produce_identical_counters() {
        let mut spec = tiny_spec();
        spec.name = "tiny-sliced".into();
        let coarse = run(&spec, &RunOptions::default()).unwrap();
        let fine =
            run(&spec, &RunOptions { slice: 1_000, ..RunOptions::default() }).unwrap();
        assert!(coarse.report.deterministic_eq(&fine.report));
    }
}
