//! `kbatch` — run a simulation campaign from the command line.
//!
//! ```text
//! kbatch [OPTIONS] [CAMPAIGN]
//! kbatch dse [OPTIONS]
//! ```
//!
//! The predefined campaigns regenerate the paper's evaluation artifacts
//! (`table1`, `table2`, `figure4`) or a quick CI grid (`smoke`). With
//! `--manifest`, progress persists across invocations: an interrupted or
//! killed campaign resumes where it left off, skipping completed cells.
//!
//! `kbatch dse` sweeps a design-space grid — cache geometry × ISA × cycle
//! model × execution tier — on any planner backend (local pool, `ksimd`
//! daemon, simulated fabric) and writes a Pareto-front report.

use std::path::PathBuf;
use std::process::ExitCode;

use kahrisma_campaign::{runner, CampaignError, CampaignSpec, RunOptions};
use kahrisma_core::args::ArgList;

const USAGE: &str = "\
kbatch — parallel, resumable KAHRISMA simulation campaigns

USAGE:
    kbatch [OPTIONS] [CAMPAIGN]
    kbatch dse [OPTIONS]          (design-space sweep; `kbatch dse --help`)

CAMPAIGNS:
    table1     component costs on cjpeg/RISC (paper Table I ladder)
    table2     DOE approximation vs cycle-accurate reference (Table II)
    figure4    ILP bound vs achieved ops/cycle, all workloads (Figure 4)
    smoke      1 workload x 2 ISAs x 3 cycle models (CI default)

OPTIONS:
    --workers N       worker threads (default: available parallelism)
    --daemon ADDR     dispatch cells to a running ksimd at ADDR instead of
                      simulating in-process (ISS cells only)
    --manifest PATH   persist progress; resume from PATH when it exists
    --fresh           ignore an existing manifest and start over
    --max-cells N     execute at most N cells, then stop (resume later)
    --slice N         instructions per checkpoint slice
    --out PATH        write the JSON report to PATH
    --progress        per-cell progress lines with wall time and MIPS (default)
    --quiet           no per-cell progress lines
    --list            list the predefined campaigns and their sizes
    --help            this text

EXIT STATUS:
    0  campaign complete        3  stopped by --max-cells (resumable)
    1  simulation/manifest error  2  usage error
";

#[derive(Debug)]
struct Args {
    campaign: String,
    options: RunOptions,
    daemon: Option<String>,
    out: Option<PathBuf>,
    list: bool,
}

fn parse_args(mut argv: ArgList) -> Result<Args, String> {
    let mut args = Args {
        campaign: "smoke".into(),
        options: RunOptions {
            workers: std::thread::available_parallelism().map_or(1, usize::from),
            progress: true,
            ..RunOptions::default()
        },
        daemon: None,
        out: None,
        list: false,
    };
    let mut positional = Vec::new();
    while let Some(arg) = argv.next_arg() {
        match arg.as_str() {
            "--workers" => {
                args.options.workers = argv.parse_value("--workers")?;
                if args.options.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--daemon" => args.daemon = Some(argv.value("--daemon")?),
            "--manifest" => {
                args.options.manifest = Some(PathBuf::from(argv.value("--manifest")?));
            }
            "--fresh" => args.options.fresh = true,
            "--max-cells" => {
                args.options.stop_after = Some(argv.parse_value("--max-cells")?);
            }
            "--slice" => args.options.slice = argv.parse_value("--slice")?,
            "--out" => args.out = Some(PathBuf::from(argv.value("--out")?)),
            "--progress" => args.options.progress = true,
            "--quiet" => args.options.progress = false,
            "--list" => args.list = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => positional.push(argv.positional(other)?),
        }
    }
    match positional.len() {
        0 => {}
        1 => args.campaign = positional.remove(0),
        _ => return Err("at most one campaign may be named".into()),
    }
    Ok(args)
}

fn list_campaigns() {
    println!("{:<10} {:>6}  description", "campaign", "cells");
    for name in CampaignSpec::PREDEFINED {
        let spec = CampaignSpec::by_name(name).expect("predefined");
        let what = match name {
            "table1" => "component costs (cjpeg/RISC ladder)",
            "table2" => "DOE vs cycle-accurate reference (DCT)",
            "figure4" => "ILP bound vs achieved ops/cycle",
            _ => "CI smoke grid",
        };
        println!("{name:<10} {:>6}  {what}", spec.cells.len());
    }
}

fn main() -> ExitCode {
    let mut argv = ArgList::from_env();
    if argv.peek() == Some("dse") {
        argv.next_arg();
        return dse::main(argv);
    }
    let args = match parse_args(argv) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("kbatch: {e}");
            eprintln!("run `kbatch --help` for usage");
            return ExitCode::from(2);
        }
    };
    if args.list {
        list_campaigns();
        return ExitCode::SUCCESS;
    }
    let Some(spec) = CampaignSpec::by_name(&args.campaign) else {
        eprintln!(
            "kbatch: unknown campaign {:?} (one of: {})",
            args.campaign,
            CampaignSpec::PREDEFINED.join(", ")
        );
        return ExitCode::from(2);
    };

    let outcome = if let Some(addr) = &args.daemon {
        eprintln!(
            "kbatch: campaign {:?}, {} cells, dispatched to ksimd at {addr}",
            spec.name,
            spec.cells.len(),
        );
        kahrisma_campaign::daemon::run(&spec, addr, args.options.progress)
    } else {
        eprintln!(
            "kbatch: campaign {:?}, {} cells, {} workers",
            spec.name,
            spec.cells.len(),
            args.options.workers.clamp(1, spec.cells.len().max(1)),
        );
        runner::run(&spec, &args.options)
    };
    let summary = match outcome {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("kbatch: {e}");
            if matches!(e, CampaignError::Manifest { .. }) {
                eprintln!("kbatch: pass --fresh to discard the manifest and start over");
            }
            return ExitCode::FAILURE;
        }
    };

    print_table(&summary.report);
    if let Some(out) = &args.out {
        if let Err(e) = std::fs::write(out, summary.report.to_json()) {
            eprintln!("kbatch: {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        eprintln!("kbatch: wrote {}", out.display());
    }

    if summary.interrupted {
        eprintln!(
            "kbatch: stopped by --max-cells after {} cells ({} done of {}); \
             re-run with the same --manifest to continue",
            summary.executed,
            summary.report.cells.len(),
            spec.cells.len(),
        );
        return ExitCode::from(3);
    }
    eprintln!(
        "kbatch: complete — {} executed, {} resumed from manifest",
        summary.executed, summary.skipped
    );
    ExitCode::SUCCESS
}

fn print_table(report: &kahrisma_campaign::Report) {
    println!(
        "{:<42} {:>6} {:>14} {:>14} {:>8} {:>9} {:>9}",
        "cell", "exit", "instructions", "cycles", "wall s", "MIPS", "L1 miss"
    );
    for cell in &report.cells {
        let cycles =
            cell.cycles.map_or_else(|| "-".into(), |c| c.to_string());
        let miss = cell
            .l1_miss_ratio
            .map_or_else(|| "-".into(), |m| format!("{:.2}%", m * 100.0));
        println!(
            "{:<42} {:>6} {:>14} {:>14} {:>8.2} {:>9.3} {:>9}",
            cell.key,
            cell.exit_code,
            cell.instructions,
            cycles,
            cell.wall_seconds,
            cell.mips,
            miss
        );
    }
}

/// `kbatch dse` — design-space sweeps over cache geometry × ISA × cycle
/// model × execution tier, dispatched on any planner backend, reported as
/// a Pareto front (throughput vs CPI vs L1 miss ratio).
mod dse {
    use std::path::PathBuf;
    use std::process::ExitCode;

    use kahrisma_core::args::{ArgList, GeometryArgs};
    use kahrisma_core::{CycleModelKind, TierMode};
    use kahrisma_isa::IsaKind;
    use kahrisma_plan::{
        grids, DaemonPlanner, DseReport, Engine, ExecPlan, FabricPlanner, LocalPlanner,
        PlanSession, Planner, DEFAULT_BUDGET, DEFAULT_SLICE,
    };
    use kahrisma_workloads::Workload;

    const USAGE: &str = "\
kbatch dse — design-space exploration with a Pareto-front report

USAGE:
    kbatch dse [OPTIONS]

Sweeps the cross product of the listed axes (workload x ISA x model x tier
x cache geometry), runs every cell on the chosen backend, and writes a
report marking the Pareto front over throughput (MIPS), cycles per
instruction, and L1 miss ratio. Unlisted axes use the paper defaults; the
default sweep is 16 cache geometries of dct/risc/doe.

AXES (comma-separated lists):
    --workload W,...  workloads (default: dct)
    --isa I,...       ISAs: risc, vliw2, vliw4, vliw6, vliw8 (default: risc)
    --model M,...     cycle models: func, ilp, aie, doe (default: doe)
    --tier T,...      execution tiers: interp, ir (default: ir)
    --l1-lines N,...  L1 lines per way (default sweep: 16,32,64,128)
    --line-bytes N,.. cache line bytes (default sweep: 16,32)
    --l2-ports N,...  L2 ports (default sweep: 1,2)
    --mem-delay N,... main-memory delay in cycles (default: 18)

OPTIONS:
    --backend B       local | daemon | fabric (default: local)
    --daemon ADDR     ksimd/kgate address (required with --backend daemon)
    --workers N       local worker / fabric host threads (default: parallelism)
    --budget N        instruction budget per cell
    --repeats N       measured repeats per cell (default: 1)
    --max-cells N     execute at most N cells, then stop
    --out PATH        report path (default: BENCH_dse.json)
    --quiet           no per-cell progress lines
    --help            this text

EXIT STATUS:
    0 sweep complete   3 stopped by --max-cells   1 error   2 usage error
";

    #[derive(Debug)]
    enum Backend {
        Local,
        Daemon,
        Fabric,
    }

    #[derive(Debug)]
    struct Args {
        workloads: Vec<Workload>,
        isas: Vec<IsaKind>,
        engines: Vec<Engine>,
        tiers: Vec<TierMode>,
        geometry: GeometryArgs,
        backend: Backend,
        daemon: Option<String>,
        workers: usize,
        budget: u64,
        repeats: u32,
        max_cells: Option<usize>,
        out: PathBuf,
        progress: bool,
    }

    fn parse_list<T>(flag: &str, argv: &mut ArgList, one: impl Fn(&str) -> Option<T>) -> Result<Vec<T>, String> {
        let raw = argv.value(flag)?;
        raw.split(',')
            .map(|tok| {
                let tok = tok.trim();
                one(tok).ok_or_else(|| format!("invalid value for {flag}: {tok}"))
            })
            .collect()
    }

    fn parse_args(mut argv: ArgList) -> Result<Args, String> {
        let mut args = Args {
            workloads: vec![Workload::Dct],
            isas: vec![IsaKind::Risc],
            engines: vec![Engine::Iss(Some(CycleModelKind::Doe))],
            tiers: vec![TierMode::Ir],
            geometry: GeometryArgs::default(),
            backend: Backend::Local,
            daemon: None,
            workers: std::thread::available_parallelism().map_or(1, usize::from),
            budget: DEFAULT_BUDGET,
            repeats: 1,
            max_cells: None,
            out: PathBuf::from("BENCH_dse.json"),
            progress: true,
        };
        while let Some(arg) = argv.next_arg() {
            if args.geometry.accept(&arg, &mut argv)? {
                continue;
            }
            match arg.as_str() {
                "--workload" => {
                    args.workloads = parse_list("--workload", &mut argv, Workload::from_name)?;
                }
                "--isa" => {
                    args.isas = parse_list("--isa", &mut argv, |tok| {
                        IsaKind::ALL.into_iter().find(|i| i.name() == tok)
                    })?;
                }
                "--model" => {
                    args.engines = parse_list("--model", &mut argv, |tok| match tok {
                        "func" => Some(Engine::Iss(None)),
                        "ilp" => Some(Engine::Iss(Some(CycleModelKind::Ilp))),
                        "aie" => Some(Engine::Iss(Some(CycleModelKind::Aie))),
                        "doe" => Some(Engine::Iss(Some(CycleModelKind::Doe))),
                        _ => None,
                    })?;
                }
                "--tier" => {
                    args.tiers = parse_list("--tier", &mut argv, |tok| match tok {
                        "interp" => Some(TierMode::Interp),
                        "ir" => Some(TierMode::Ir),
                        _ => None,
                    })?;
                }
                "--backend" => {
                    args.backend = match argv.value("--backend")?.as_str() {
                        "local" => Backend::Local,
                        "daemon" => Backend::Daemon,
                        "fabric" => Backend::Fabric,
                        other => {
                            return Err(format!(
                                "unknown backend {other:?} (one of: local, daemon, fabric)"
                            ))
                        }
                    };
                }
                "--daemon" => args.daemon = Some(argv.value("--daemon")?),
                "--workers" => {
                    args.workers = argv.parse_value("--workers")?;
                    if args.workers == 0 {
                        return Err("--workers must be at least 1".into());
                    }
                }
                "--budget" => args.budget = argv.parse_value("--budget")?,
                "--repeats" => args.repeats = argv.parse_value("--repeats")?,
                "--max-cells" => args.max_cells = Some(argv.parse_value("--max-cells")?),
                "--out" => args.out = PathBuf::from(argv.value("--out")?),
                "--progress" => args.progress = true,
                "--quiet" => args.progress = false,
                "--help" | "-h" => {
                    print!("{USAGE}");
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag: {other}")),
            }
        }
        if matches!(args.backend, Backend::Daemon) && args.daemon.is_none() {
            return Err("--backend daemon requires --daemon ADDR".into());
        }
        // The flagship sweep: 16 cache geometries, the paper's default
        // machine in the middle of the grid.
        if !args.geometry.any() {
            args.geometry.l1_lines = Some(vec![16, 32, 64, 128]);
            args.geometry.line_bytes = Some(vec![16, 32]);
            args.geometry.l2_ports = Some(vec![1, 2]);
        }
        Ok(args)
    }

    fn plan_of(args: &Args) -> ExecPlan {
        grids::dse(
            "dse",
            &args.workloads,
            &args.isas,
            &args.engines,
            &args.tiers,
            &args.geometry.grid(),
            args.budget,
            args.repeats,
        )
    }

    pub(super) fn main(argv: ArgList) -> ExitCode {
        let args = match parse_args(argv) {
            Ok(args) => args,
            Err(e) => {
                eprintln!("kbatch dse: {e}");
                eprintln!("run `kbatch dse --help` for usage");
                return ExitCode::from(2);
            }
        };
        let plan = plan_of(&args);
        let backend_name = match args.backend {
            Backend::Local => "local pool",
            Backend::Daemon => "daemon",
            Backend::Fabric => "fabric",
        };
        eprintln!(
            "kbatch dse: {} cells ({} workloads x {} ISAs x {} models x {} tiers x {} geometries), {backend_name}",
            plan.cells.len(),
            args.workloads.len(),
            args.isas.len(),
            args.engines.len(),
            args.tiers.len(),
            args.geometry.grid().len(),
        );

        let mut session = PlanSession {
            stop_after: args.max_cells,
            progress: args.progress,
            ..PlanSession::default()
        };
        let run = match args.backend {
            Backend::Local => LocalPlanner { workers: args.workers, slice: DEFAULT_SLICE }
                .run_plan(&plan, &mut session),
            Backend::Daemon => DaemonPlanner::new(args.daemon.as_deref().unwrap_or_default())
                .run_plan(&plan, &mut session),
            Backend::Fabric => FabricPlanner { host_threads: args.workers, ..FabricPlanner::default() }
                .run_plan(&plan, &mut session),
        };
        let run = match run {
            Ok(run) => run,
            Err(e) => {
                eprintln!("kbatch dse: {e}");
                return ExitCode::FAILURE;
            }
        };
        let interrupted = run.interrupted;
        let executed = run.executed;
        let report = DseReport::new(&plan.name, &plan.fingerprint(), run.results);

        print_table(&report);
        if let Err(e) = std::fs::write(&args.out, report.to_json()) {
            eprintln!("kbatch dse: {}: {e}", args.out.display());
            return ExitCode::FAILURE;
        }
        eprintln!("kbatch dse: wrote {}", args.out.display());
        if interrupted {
            eprintln!(
                "kbatch dse: stopped by --max-cells after {executed} of {} cells",
                plan.cells.len(),
            );
            return ExitCode::from(3);
        }
        eprintln!(
            "kbatch dse: complete — {executed} executed, {} on the Pareto front",
            report.frontier_keys().len(),
        );
        ExitCode::SUCCESS
    }

    fn print_table(report: &DseReport) {
        println!(
            "{:<56} {:>14} {:>8} {:>9} {:>9} {:>8}",
            "cell", "instructions", "CPI", "MIPS", "L1 miss", "front"
        );
        for cell in &report.cells {
            let r = &cell.result;
            let cpi = kahrisma_plan::pareto::cpi(r)
                .map_or_else(|| "-".into(), |c| format!("{c:.3}"));
            let miss = r
                .l1_miss_ratio
                .map_or_else(|| "-".into(), |m| format!("{:.2}%", m * 100.0));
            println!(
                "{:<56} {:>14} {:>8} {:>9.3} {:>9} {:>8}",
                r.key,
                r.instructions,
                cpi,
                r.mips,
                miss,
                if cell.frontier { "*" } else { "" },
            );
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn argv(s: &[&str]) -> ArgList {
            ArgList::new(s.iter().map(ToString::to_string).collect())
        }

        #[test]
        fn default_sweep_is_sixteen_geometries_of_dct_risc_doe() {
            let args = parse_args(argv(&[])).unwrap();
            let plan = plan_of(&args);
            assert_eq!(plan.cells.len(), 16);
            assert!(plan.cells.iter().all(|c| c.workload == Workload::Dct
                && c.isa == IsaKind::Risc
                && c.engine == Engine::Iss(Some(CycleModelKind::Doe))
                && c.tier == TierMode::Ir
                && c.geometry.is_some()));
            assert_eq!(plan.cells[0].key(), "dct/risc/doe/superblock+g16x16p1d18");
        }

        #[test]
        fn axes_multiply_and_geometry_flags_replace_the_default_sweep() {
            let args = parse_args(argv(&[
                "--workload", "dct,fft", "--isa", "risc,vliw4", "--model", "doe,aie",
                "--tier", "ir,interp", "--l1-lines", "32", "--mem-delay", "18,40",
            ]))
            .unwrap();
            let plan = plan_of(&args);
            assert_eq!(plan.cells.len(), 2 * 2 * 2 * 2 * 2);
            let keys: Vec<String> = plan.cells.iter().map(|c| c.key()).collect();
            assert!(keys.contains(&"fft/vliw4/aie/superblock+g32x32p1d40+interp".to_string()));
        }

        #[test]
        fn rejects_bad_axis_values_and_backends() {
            let err = parse_args(argv(&["--isa", "risc,armv8"])).unwrap_err();
            assert_eq!(err, "invalid value for --isa: armv8");
            let err = parse_args(argv(&["--model", "rtl"])).unwrap_err();
            assert_eq!(err, "invalid value for --model: rtl");
            let err = parse_args(argv(&["--backend", "cloud"])).unwrap_err();
            assert!(err.contains("unknown backend"), "{err}");
            let err = parse_args(argv(&["--backend", "daemon"])).unwrap_err();
            assert_eq!(err, "--backend daemon requires --daemon ADDR");
            let err = parse_args(argv(&["--line-bytes", "24"])).unwrap_err();
            assert_eq!(err, "--line-bytes must be a power of two");
        }

        #[test]
        fn budget_repeats_and_out_reach_the_plan() {
            let args = parse_args(argv(&[
                "--budget", "1000", "--repeats", "2", "--out", "x.json", "--quiet",
            ]))
            .unwrap();
            assert_eq!(args.out, PathBuf::from("x.json"));
            assert!(!args.progress);
            let plan = plan_of(&args);
            assert!(plan.cells.iter().all(|c| c.budget == 1000 && c.repeats == 2));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> ArgList {
        ArgList::new(s.iter().map(ToString::to_string).collect())
    }

    #[test]
    fn rejects_zero_workers_with_a_clear_error() {
        let err = parse_args(argv(&["--workers", "0"])).unwrap_err();
        assert_eq!(err, "--workers must be at least 1");
        let err = parse_args(argv(&["--workers", "-3"])).unwrap_err();
        assert!(err.starts_with("invalid value for --workers: -3"), "{err}");
    }

    #[test]
    fn parses_workers_campaign_and_daemon() {
        let args = parse_args(argv(&[
            "--workers", "3", "--daemon", "127.0.0.1:9191", "table1",
        ]))
        .unwrap();
        assert_eq!(args.options.workers, 3);
        assert_eq!(args.daemon.as_deref(), Some("127.0.0.1:9191"));
        assert_eq!(args.campaign, "table1");
        assert!(parse_args(argv(&["a", "b"])).is_err());
        assert!(parse_args(argv(&["--daemon"])).is_err());
    }

    #[test]
    fn flag_errors_use_the_shared_arglist_wording() {
        let err = parse_args(argv(&["--manifest"])).unwrap_err();
        assert_eq!(err, "--manifest expects a value");
        let err = parse_args(argv(&["--frob"])).unwrap_err();
        assert_eq!(err, "unknown flag: --frob");
    }
}
