//! `kbatch` — run a simulation campaign from the command line.
//!
//! ```text
//! kbatch [OPTIONS] [CAMPAIGN]
//! ```
//!
//! The predefined campaigns regenerate the paper's evaluation artifacts
//! (`table1`, `table2`, `figure4`) or a quick CI grid (`smoke`). With
//! `--manifest`, progress persists across invocations: an interrupted or
//! killed campaign resumes where it left off, skipping completed cells.

use std::path::PathBuf;
use std::process::ExitCode;

use kahrisma_campaign::{runner, CampaignError, CampaignSpec, RunOptions};
use kahrisma_core::args::ArgList;

const USAGE: &str = "\
kbatch — parallel, resumable KAHRISMA simulation campaigns

USAGE:
    kbatch [OPTIONS] [CAMPAIGN]

CAMPAIGNS:
    table1     component costs on cjpeg/RISC (paper Table I ladder)
    table2     DOE approximation vs cycle-accurate reference (Table II)
    figure4    ILP bound vs achieved ops/cycle, all workloads (Figure 4)
    smoke      1 workload x 2 ISAs x 3 cycle models (CI default)

OPTIONS:
    --workers N       worker threads (default: available parallelism)
    --daemon ADDR     dispatch cells to a running ksimd at ADDR instead of
                      simulating in-process (ISS cells only)
    --manifest PATH   persist progress; resume from PATH when it exists
    --fresh           ignore an existing manifest and start over
    --max-cells N     execute at most N cells, then stop (resume later)
    --slice N         instructions per checkpoint slice
    --out PATH        write the JSON report to PATH
    --progress        per-cell progress lines with wall time and MIPS (default)
    --quiet           no per-cell progress lines
    --list            list the predefined campaigns and their sizes
    --help            this text

EXIT STATUS:
    0  campaign complete        3  stopped by --max-cells (resumable)
    1  simulation/manifest error  2  usage error
";

#[derive(Debug)]
struct Args {
    campaign: String,
    options: RunOptions,
    daemon: Option<String>,
    out: Option<PathBuf>,
    list: bool,
}

fn parse_args(mut argv: ArgList) -> Result<Args, String> {
    let mut args = Args {
        campaign: "smoke".into(),
        options: RunOptions {
            workers: std::thread::available_parallelism().map_or(1, usize::from),
            progress: true,
            ..RunOptions::default()
        },
        daemon: None,
        out: None,
        list: false,
    };
    let mut positional = Vec::new();
    while let Some(arg) = argv.next_arg() {
        match arg.as_str() {
            "--workers" => {
                args.options.workers = argv.parse_value("--workers")?;
                if args.options.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--daemon" => args.daemon = Some(argv.value("--daemon")?),
            "--manifest" => {
                args.options.manifest = Some(PathBuf::from(argv.value("--manifest")?));
            }
            "--fresh" => args.options.fresh = true,
            "--max-cells" => {
                args.options.stop_after = Some(argv.parse_value("--max-cells")?);
            }
            "--slice" => args.options.slice = argv.parse_value("--slice")?,
            "--out" => args.out = Some(PathBuf::from(argv.value("--out")?)),
            "--progress" => args.options.progress = true,
            "--quiet" => args.options.progress = false,
            "--list" => args.list = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => positional.push(argv.positional(other)?),
        }
    }
    match positional.len() {
        0 => {}
        1 => args.campaign = positional.remove(0),
        _ => return Err("at most one campaign may be named".into()),
    }
    Ok(args)
}

fn list_campaigns() {
    println!("{:<10} {:>6}  description", "campaign", "cells");
    for name in CampaignSpec::PREDEFINED {
        let spec = CampaignSpec::by_name(name).expect("predefined");
        let what = match name {
            "table1" => "component costs (cjpeg/RISC ladder)",
            "table2" => "DOE vs cycle-accurate reference (DCT)",
            "figure4" => "ILP bound vs achieved ops/cycle",
            _ => "CI smoke grid",
        };
        println!("{name:<10} {:>6}  {what}", spec.cells.len());
    }
}

fn main() -> ExitCode {
    let args = match parse_args(ArgList::from_env()) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("kbatch: {e}");
            eprintln!("run `kbatch --help` for usage");
            return ExitCode::from(2);
        }
    };
    if args.list {
        list_campaigns();
        return ExitCode::SUCCESS;
    }
    let Some(spec) = CampaignSpec::by_name(&args.campaign) else {
        eprintln!(
            "kbatch: unknown campaign {:?} (one of: {})",
            args.campaign,
            CampaignSpec::PREDEFINED.join(", ")
        );
        return ExitCode::from(2);
    };

    let outcome = if let Some(addr) = &args.daemon {
        eprintln!(
            "kbatch: campaign {:?}, {} cells, dispatched to ksimd at {addr}",
            spec.name,
            spec.cells.len(),
        );
        kahrisma_campaign::daemon::run(&spec, addr, args.options.progress)
    } else {
        eprintln!(
            "kbatch: campaign {:?}, {} cells, {} workers",
            spec.name,
            spec.cells.len(),
            args.options.workers.clamp(1, spec.cells.len().max(1)),
        );
        runner::run(&spec, &args.options)
    };
    let summary = match outcome {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("kbatch: {e}");
            if matches!(e, CampaignError::Manifest { .. }) {
                eprintln!("kbatch: pass --fresh to discard the manifest and start over");
            }
            return ExitCode::FAILURE;
        }
    };

    print_table(&summary.report);
    if let Some(out) = &args.out {
        if let Err(e) = std::fs::write(out, summary.report.to_json()) {
            eprintln!("kbatch: {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        eprintln!("kbatch: wrote {}", out.display());
    }

    if summary.interrupted {
        eprintln!(
            "kbatch: stopped by --max-cells after {} cells ({} done of {}); \
             re-run with the same --manifest to continue",
            summary.executed,
            summary.report.cells.len(),
            spec.cells.len(),
        );
        return ExitCode::from(3);
    }
    eprintln!(
        "kbatch: complete — {} executed, {} resumed from manifest",
        summary.executed, summary.skipped
    );
    ExitCode::SUCCESS
}

fn print_table(report: &kahrisma_campaign::Report) {
    println!(
        "{:<42} {:>6} {:>14} {:>14} {:>8} {:>9} {:>9}",
        "cell", "exit", "instructions", "cycles", "wall s", "MIPS", "L1 miss"
    );
    for cell in &report.cells {
        let cycles =
            cell.cycles.map_or_else(|| "-".into(), |c| c.to_string());
        let miss = cell
            .l1_miss_ratio
            .map_or_else(|| "-".into(), |m| format!("{:.2}%", m * 100.0));
        println!(
            "{:<42} {:>6} {:>14} {:>14} {:>8.2} {:>9.3} {:>9}",
            cell.key,
            cell.exit_code,
            cell.instructions,
            cycles,
            cell.wall_seconds,
            cell.mips,
            miss
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> ArgList {
        ArgList::new(s.iter().map(ToString::to_string).collect())
    }

    #[test]
    fn rejects_zero_workers_with_a_clear_error() {
        let err = parse_args(argv(&["--workers", "0"])).unwrap_err();
        assert_eq!(err, "--workers must be at least 1");
        let err = parse_args(argv(&["--workers", "-3"])).unwrap_err();
        assert!(err.starts_with("invalid value for --workers: -3"), "{err}");
    }

    #[test]
    fn parses_workers_campaign_and_daemon() {
        let args = parse_args(argv(&[
            "--workers", "3", "--daemon", "127.0.0.1:9191", "table1",
        ]))
        .unwrap();
        assert_eq!(args.options.workers, 3);
        assert_eq!(args.daemon.as_deref(), Some("127.0.0.1:9191"));
        assert_eq!(args.campaign, "table1");
        assert!(parse_args(argv(&["a", "b"])).is_err());
        assert!(parse_args(argv(&["--daemon"])).is_err());
    }

    #[test]
    fn flag_errors_use_the_shared_arglist_wording() {
        let err = parse_args(argv(&["--manifest"])).unwrap_err();
        assert_eq!(err, "--manifest expects a value");
        let err = parse_args(argv(&["--frob"])).unwrap_err();
        assert_eq!(err, "unknown flag: --frob");
    }
}
