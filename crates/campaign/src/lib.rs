//! Parallel, resumable simulation campaigns for the KAHRISMA simulator.
//!
//! The paper's evaluation (§VII) is a grid of simulations: workloads ×
//! ISAs × cycle models × simulator configurations. This crate turns that
//! grid into a first-class object — a [`CampaignSpec`] of [`CellSpec`]s —
//! and executes it on the unified execution-planner API
//! ([`kahrisma_plan`]) with crash-safe progress persistence:
//!
//! * **Parallel** — the planner's work-stealing pool claims cells from a
//!   shared queue; each cell's simulation stays single-threaded, so
//!   per-cell counters are bit-identical regardless of worker count
//!   ([`runner::run`]).
//! * **Resumable** — completed cells are appended to a JSON-lines
//!   [`manifest::Manifest`] the moment they finish; an interrupted
//!   campaign resumes from the manifest, skipping recorded cells, and a
//!   fingerprint check refuses manifests of a different campaign.
//! * **Checkpointed** — cells run in [`kahrisma_core::Simulator::run_for`]
//!   slices, pausing at snapshot-capable boundaries between slices.
//! * **Deterministic reports** — results are sorted by stable cell key;
//!   two runs of the same campaign agree on every counter field
//!   ([`Report::deterministic_eq`]), differing only in wall-clock timing.
//!
//! The predefined campaigns regenerate the paper's artifacts: `table1`
//! (component costs), `table2` (DOE vs RTL accuracy), `figure4` (ILP vs
//! achieved operations/cycle), plus a `smoke` grid for CI — all expanded
//! by [`kahrisma_plan::grids`]. The `kbatch` binary is the command-line
//! front end (including `kbatch dse` design-space sweeps).
//!
//! # Example
//!
//! ```no_run
//! use kahrisma_campaign::{runner, CampaignSpec, RunOptions};
//!
//! let spec = CampaignSpec::by_name("smoke").expect("predefined");
//! let options = RunOptions { workers: 2, ..RunOptions::default() };
//! let summary = runner::run(&spec, &options)?;
//! println!("{}", summary.report.to_json());
//! # Ok::<(), kahrisma_campaign::CampaignError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod manifest;
pub mod runner;
pub mod spec;

pub use kahrisma_plan::{json, report};

pub use kahrisma_plan::{CellResult, Report};
pub use runner::{RunOptions, RunSummary, DEFAULT_SLICE};
pub use spec::{CacheVariant, CampaignSpec, CellSpec, Engine, DEFAULT_BUDGET};

use std::fmt;

use kahrisma_plan::PlanError;

/// An error raised while running a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// A filesystem operation failed.
    Io {
        /// The file involved.
        path: String,
        /// The underlying error.
        reason: String,
    },
    /// A manifest could not be used (missing/malformed header, or its
    /// fingerprint belongs to a different campaign).
    Manifest {
        /// The manifest file.
        path: String,
        /// What was wrong.
        reason: String,
    },
    /// A cell failed to build, simulate, or pass its workload self-check.
    Cell {
        /// The cell's key.
        key: String,
        /// What went wrong.
        reason: String,
    },
}

impl From<PlanError> for CampaignError {
    fn from(e: PlanError) -> CampaignError {
        match e {
            PlanError::Io { path, reason } => CampaignError::Io { path, reason },
            PlanError::Cell { key, reason } => CampaignError::Cell { key, reason },
        }
    }
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Io { path, reason } => write!(f, "{path}: {reason}"),
            CampaignError::Manifest { path, reason } => {
                write!(f, "manifest {path}: {reason}")
            }
            CampaignError::Cell { key, reason } => write!(f, "cell {key}: {reason}"),
        }
    }
}

impl std::error::Error for CampaignError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_context() {
        let e = CampaignError::Cell { key: "dct/risc/doe/superblock".into(), reason: "x".into() };
        assert!(e.to_string().contains("dct/risc/doe/superblock"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CampaignError>();
    }

    #[test]
    fn plan_errors_convert_losslessly() {
        let e: CampaignError =
            PlanError::Cell { key: "k".into(), reason: "r".into() }.into();
        assert_eq!(e, CampaignError::Cell { key: "k".into(), reason: "r".into() });
        let e: CampaignError =
            PlanError::Io { path: "p".into(), reason: "r".into() }.into();
        assert_eq!(e, CampaignError::Io { path: "p".into(), reason: "r".into() });
    }
}
