//! Parallel, resumable simulation campaigns for the KAHRISMA simulator.
//!
//! The paper's evaluation (§VII) is a grid of simulations: workloads ×
//! ISAs × cycle models × simulator configurations. This crate turns that
//! grid into a first-class object — a [`CampaignSpec`] of [`CellSpec`]s —
//! and executes it with a work-stealing worker pool, crash-safe progress
//! persistence and deterministic aggregation:
//!
//! * **Parallel** — `N` worker threads claim cells from a shared queue;
//!   each cell's simulation stays single-threaded, so per-cell counters
//!   are bit-identical regardless of worker count ([`runner::run`]).
//! * **Resumable** — completed cells are appended to a JSON-lines
//!   [`manifest::Manifest`] the moment they finish; an interrupted
//!   campaign resumes from the manifest, skipping recorded cells, and a
//!   fingerprint check refuses manifests of a different campaign.
//! * **Checkpointed** — cells run in [`kahrisma_core::Simulator::run_for`]
//!   slices, pausing at snapshot-capable boundaries between slices.
//! * **Deterministic reports** — results are sorted by stable cell key;
//!   two runs of the same campaign agree on every counter field
//!   ([`Report::deterministic_eq`]), differing only in wall-clock timing.
//!
//! The predefined campaigns regenerate the paper's artifacts: `table1`
//! (component costs), `table2` (DOE vs RTL accuracy), `figure4` (ILP vs
//! achieved operations/cycle), plus a `smoke` grid for CI. The `kbatch`
//! binary is the command-line front end.
//!
//! # Example
//!
//! ```no_run
//! use kahrisma_campaign::{runner, CampaignSpec, RunOptions};
//!
//! let spec = CampaignSpec::smoke();
//! let options = RunOptions { workers: 2, ..RunOptions::default() };
//! let summary = runner::run(&spec, &options)?;
//! println!("{}", summary.report.to_json());
//! # Ok::<(), kahrisma_campaign::CampaignError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod json;
pub mod manifest;
pub mod report;
pub mod runner;
pub mod spec;

pub use report::{CellResult, Report};
pub use runner::{RunOptions, RunSummary, DEFAULT_SLICE};
pub use spec::{CacheVariant, CampaignSpec, CellSpec, Engine, DEFAULT_BUDGET};

use std::fmt;

/// An error raised while running a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// A filesystem operation failed.
    Io {
        /// The file involved.
        path: String,
        /// The underlying error.
        reason: String,
    },
    /// A manifest could not be used (missing/malformed header, or its
    /// fingerprint belongs to a different campaign).
    Manifest {
        /// The manifest file.
        path: String,
        /// What was wrong.
        reason: String,
    },
    /// A cell failed to build, simulate, or pass its workload self-check.
    Cell {
        /// The cell's key.
        key: String,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Io { path, reason } => write!(f, "{path}: {reason}"),
            CampaignError::Manifest { path, reason } => {
                write!(f, "manifest {path}: {reason}")
            }
            CampaignError::Cell { key, reason } => write!(f, "cell {key}: {reason}"),
        }
    }
}

impl std::error::Error for CampaignError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_context() {
        let e = CampaignError::Cell { key: "dct/risc/doe/superblock".into(), reason: "x".into() };
        assert!(e.to_string().contains("dct/risc/doe/superblock"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CampaignError>();
    }
}
