//! Campaign specifications: the grid of simulation cells to run.
//!
//! A *campaign* is a named list of *cells*; each cell pins down one
//! simulation completely — workload, ISA, engine (functional/cycle-model
//! simulator or the cycle-accurate RTL reference), decode-cache variant,
//! memory hierarchy, instruction budget and repeat count. The paper's
//! evaluation artifacts (Table I, Table II, Figure 4, §VII) are shipped as
//! predefined campaigns so a single `kbatch` invocation regenerates them.

use kahrisma_core::{CycleModelKind, MemoryHierarchy, SimConfig};
use kahrisma_isa::IsaKind;
use kahrisma_workloads::Workload;

/// Default instruction budget for campaign cells (matches the bench
/// harnesses' `BUDGET`).
pub const DEFAULT_BUDGET: u64 = 500_000_000;

/// Which simulation engine a cell runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The interpretation-based instruction-set simulator, optionally with
    /// a cycle-approximation model attached (§V/§VI).
    Iss(Option<CycleModelKind>),
    /// The cycle-accurate RTL reference pipeline (Table II's "Hardware").
    Rtl,
}

impl Engine {
    /// Short engine/model tag used in cell keys.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Engine::Iss(None) => "func",
            Engine::Iss(Some(CycleModelKind::Ilp)) => "ilp",
            Engine::Iss(Some(CycleModelKind::Aie)) => "aie",
            Engine::Iss(Some(CycleModelKind::Doe)) => "doe",
            Engine::Iss(Some(_)) => "model",
            Engine::Rtl => "rtl",
        }
    }
}

/// The decode-cache configuration ladder of Table I (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheVariant {
    /// Detect & decode every instruction (the paper's 0.177 MIPS row).
    NoCache,
    /// Decode cache without instruction prediction.
    CacheOnly,
    /// Decode cache + prediction, per-entry hot loop (the paper baseline).
    Prediction,
    /// Full arena + superblock-batched hot loop (this repo's default).
    Superblocks,
}

impl CacheVariant {
    /// Short variant tag used in cell keys.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            CacheVariant::NoCache => "nocache",
            CacheVariant::CacheOnly => "cache",
            CacheVariant::Prediction => "pred",
            CacheVariant::Superblocks => "superblock",
        }
    }
}

/// One fully-specified simulation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellSpec {
    /// The application to simulate.
    pub workload: Workload,
    /// The ISA the workload is compiled for.
    pub isa: IsaKind,
    /// Simulation engine (ISS + optional cycle model, or RTL reference).
    pub engine: Engine,
    /// Decode-cache configuration (ignored by the RTL engine, which drives
    /// the default simulator).
    pub variant: CacheVariant,
    /// Replace the paper's memory hierarchy with ideal (zero-latency)
    /// memory — Table I's `aie/ideal` row.
    pub ideal_memory: bool,
    /// Instruction budget; exceeding it fails the cell.
    pub budget: u64,
    /// Wall-clock repeats; the fastest run is reported (timing fields
    /// only — counters are identical across repeats by construction).
    pub repeats: u32,
}

impl CellSpec {
    /// A cell with the default budget, one repeat, the superblock hot loop
    /// and the paper memory hierarchy.
    #[must_use]
    pub fn new(workload: Workload, isa: IsaKind, engine: Engine) -> Self {
        CellSpec {
            workload,
            isa,
            engine,
            variant: CacheVariant::Superblocks,
            ideal_memory: false,
            budget: DEFAULT_BUDGET,
            repeats: 1,
        }
    }

    /// The cell's unique, stable, sortable key:
    /// `workload/isa/engine/variant[+idealmem]`.
    #[must_use]
    pub fn key(&self) -> String {
        let mut key = format!(
            "{}/{}/{}/{}",
            self.workload.name(),
            self.isa.name(),
            self.engine.tag(),
            self.variant.tag()
        );
        if self.ideal_memory {
            key.push_str("+idealmem");
        }
        key
    }

    /// The simulator configuration this cell prescribes (ISS engine only).
    #[must_use]
    pub fn sim_config(&self) -> SimConfig {
        let model = match self.engine {
            Engine::Iss(model) => model,
            Engine::Rtl => None,
        };
        let mut config = SimConfig {
            cycle_model: model,
            ..SimConfig::default()
        };
        match self.variant {
            CacheVariant::NoCache => {
                config.decode_cache = false;
                config.prediction = false;
                config.superblocks = false;
            }
            CacheVariant::CacheOnly => {
                config.prediction = false;
                config.superblocks = false;
            }
            CacheVariant::Prediction => config.superblocks = false,
            CacheVariant::Superblocks => {}
        }
        if self.ideal_memory {
            config.memory = MemoryHierarchy::new().with_memory(0);
        }
        config
    }
}

/// A named list of cells.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Campaign name (used in reports and manifest headers).
    pub name: String,
    /// The cells, in construction order; the runner may execute them in any
    /// order, reports are always sorted by key.
    pub cells: Vec<CellSpec>,
}

impl CampaignSpec {
    /// Names of the predefined campaigns, for `kbatch --list`.
    pub const PREDEFINED: [&'static str; 4] = ["table1", "table2", "figure4", "smoke"];

    /// Looks up a predefined campaign by name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<CampaignSpec> {
        match name {
            "table1" => Some(CampaignSpec::table1()),
            "table2" => Some(CampaignSpec::table2()),
            "figure4" => Some(CampaignSpec::figure4()),
            "smoke" => Some(CampaignSpec::smoke()),
            _ => None,
        }
    }

    /// A generic grid: the cross product of workloads × ISAs × engines.
    #[must_use]
    pub fn grid(
        name: &str,
        workloads: &[Workload],
        isas: &[IsaKind],
        engines: &[Engine],
    ) -> CampaignSpec {
        let mut cells = Vec::new();
        for &w in workloads {
            for &isa in isas {
                for &engine in engines {
                    cells.push(CellSpec::new(w, isa, engine));
                }
            }
        }
        CampaignSpec { name: name.to_string(), cells }
    }

    /// Table I (§VII-A): the component-cost ladder on cjpeg/RISC — no
    /// cache, cache only, prediction, each cycle model, AIE with ideal
    /// memory, and the superblock hot loop.
    #[must_use]
    pub fn table1() -> CampaignSpec {
        let cell = |variant, engine, ideal_memory| CellSpec {
            variant,
            ideal_memory,
            repeats: 3,
            ..CellSpec::new(Workload::Cjpeg, IsaKind::Risc, engine)
        };
        CampaignSpec {
            name: "table1".into(),
            cells: vec![
                cell(CacheVariant::NoCache, Engine::Iss(None), false),
                cell(CacheVariant::CacheOnly, Engine::Iss(None), false),
                cell(CacheVariant::Prediction, Engine::Iss(None), false),
                cell(CacheVariant::Prediction, Engine::Iss(Some(CycleModelKind::Ilp)), false),
                cell(CacheVariant::Prediction, Engine::Iss(Some(CycleModelKind::Aie)), false),
                cell(CacheVariant::Prediction, Engine::Iss(Some(CycleModelKind::Doe)), false),
                cell(CacheVariant::Prediction, Engine::Iss(Some(CycleModelKind::Aie)), true),
                cell(CacheVariant::Superblocks, Engine::Iss(None), false),
            ],
        }
    }

    /// Table II (§VII-C): DCT on RISC/VLIW2/VLIW4/VLIW8, RTL reference vs
    /// DOE approximation.
    #[must_use]
    pub fn table2() -> CampaignSpec {
        let isas = [IsaKind::Risc, IsaKind::Vliw2, IsaKind::Vliw4, IsaKind::Vliw8];
        let mut cells = Vec::new();
        for isa in isas {
            cells.push(CellSpec::new(Workload::Dct, isa, Engine::Rtl));
            cells.push(CellSpec::new(
                Workload::Dct,
                isa,
                Engine::Iss(Some(CycleModelKind::Doe)),
            ));
        }
        CampaignSpec { name: "table2".into(), cells }
    }

    /// Figure 4 (§VII-B): per workload, the ILP bound on the RISC binary
    /// plus the DOE model on all five processor instances.
    #[must_use]
    pub fn figure4() -> CampaignSpec {
        let mut cells = Vec::new();
        for w in Workload::ALL {
            cells.push(CellSpec::new(w, IsaKind::Risc, Engine::Iss(Some(CycleModelKind::Ilp))));
            for isa in IsaKind::ALL {
                cells.push(CellSpec::new(w, isa, Engine::Iss(Some(CycleModelKind::Doe))));
            }
        }
        CampaignSpec { name: "figure4".into(), cells }
    }

    /// A small CI campaign: one workload × two ISAs × three cycle models.
    #[must_use]
    pub fn smoke() -> CampaignSpec {
        let models = [CycleModelKind::Ilp, CycleModelKind::Aie, CycleModelKind::Doe];
        let mut cells = Vec::new();
        for isa in [IsaKind::Risc, IsaKind::Vliw4] {
            for model in models {
                cells.push(CellSpec::new(Workload::Dct, isa, Engine::Iss(Some(model))));
            }
        }
        CampaignSpec { name: "smoke".into(), cells }
    }

    /// A stable fingerprint over the campaign's name and cell parameters,
    /// used to reject resuming a manifest written for a different campaign.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        // FNV-1a, 64 bit — stable across platforms and runs, unlike the
        // std hasher, whose seeds are randomized.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.name.as_bytes());
        for cell in &self.cells {
            eat(cell.key().as_bytes());
            eat(&cell.budget.to_le_bytes());
            eat(&cell.repeats.to_le_bytes());
        }
        format!("{hash:016x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_unique_within_predefined_campaigns() {
        for name in CampaignSpec::PREDEFINED {
            let spec = CampaignSpec::by_name(name).unwrap();
            let mut keys: Vec<String> = spec.cells.iter().map(CellSpec::key).collect();
            let len = keys.len();
            keys.sort();
            keys.dedup();
            assert_eq!(keys.len(), len, "duplicate keys in {name}");
        }
    }

    #[test]
    fn predefined_sizes_match_paper_artifacts() {
        assert_eq!(CampaignSpec::table1().cells.len(), 8);
        assert_eq!(CampaignSpec::table2().cells.len(), 8);
        assert_eq!(CampaignSpec::figure4().cells.len(), 36);
        assert_eq!(CampaignSpec::smoke().cells.len(), 6);
    }

    #[test]
    fn key_encodes_every_dimension() {
        let mut cell = CellSpec::new(
            Workload::Cjpeg,
            IsaKind::Risc,
            Engine::Iss(Some(CycleModelKind::Aie)),
        );
        cell.variant = CacheVariant::Prediction;
        cell.ideal_memory = true;
        assert_eq!(cell.key(), "cjpeg/risc/aie/pred+idealmem");
    }

    #[test]
    fn sim_config_follows_variant() {
        let mut cell = CellSpec::new(Workload::Dct, IsaKind::Risc, Engine::Iss(None));
        cell.variant = CacheVariant::NoCache;
        let c = cell.sim_config();
        assert!(!c.decode_cache && !c.prediction && !c.superblocks);
        cell.variant = CacheVariant::Superblocks;
        let c = cell.sim_config();
        assert!(c.decode_cache && c.prediction && c.superblocks);
    }

    #[test]
    fn fingerprint_is_stable_and_parameter_sensitive() {
        let a = CampaignSpec::smoke();
        let b = CampaignSpec::smoke();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = CampaignSpec::smoke();
        c.cells[0].budget += 1;
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = CampaignSpec::smoke();
        d.name = "smoke2".into();
        assert_ne!(a.fingerprint(), d.fingerprint());
    }
}
