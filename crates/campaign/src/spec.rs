//! Campaign specifications: the grid of simulation cells to run.
//!
//! Since the execution-planner extraction, a campaign is a thin façade
//! over [`kahrisma_plan`]: [`CellSpec`] *is* the planner's
//! [`CellRun`](kahrisma_plan::CellRun), and the predefined grids live in
//! [`kahrisma_plan::grids`] — the single grid expander shared with the
//! bench harnesses and `kbatch dse`. Cell keys, orderings and fingerprints
//! are unchanged, so manifests written before the extraction still resume.

use kahrisma_plan::{grids, ExecPlan};

pub use kahrisma_plan::{CacheVariant, Engine, DEFAULT_BUDGET};

/// One fully-specified simulation (the planner's cell type).
pub type CellSpec = kahrisma_plan::CellRun;

use kahrisma_isa::IsaKind;
use kahrisma_workloads::Workload;

/// A named list of cells.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Campaign name (used in reports and manifest headers).
    pub name: String,
    /// The cells, in construction order; the runner may execute them in any
    /// order, reports are always sorted by key.
    pub cells: Vec<CellSpec>,
}

impl CampaignSpec {
    /// Names of the predefined campaigns, for `kbatch --list`.
    pub const PREDEFINED: [&'static str; 4] = grids::PREDEFINED;

    /// Looks up a predefined campaign by name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<CampaignSpec> {
        grids::by_name(name).map(CampaignSpec::from)
    }

    /// A generic grid: the cross product of workloads × ISAs × engines.
    #[must_use]
    pub fn grid(
        name: &str,
        workloads: &[Workload],
        isas: &[IsaKind],
        engines: &[Engine],
    ) -> CampaignSpec {
        grids::grid(name, workloads, isas, engines).into()
    }

    /// Table I (§VII-A): the component-cost ladder on cjpeg/RISC.
    #[must_use]
    #[deprecated(note = "use kahrisma_plan::grids::table1()")]
    pub fn table1() -> CampaignSpec {
        grids::table1().into()
    }

    /// Table II (§VII-C): DOE vs the RTL reference on DCT.
    #[must_use]
    #[deprecated(note = "use kahrisma_plan::grids::table2()")]
    pub fn table2() -> CampaignSpec {
        grids::table2().into()
    }

    /// Figure 4 (§VII-B): ILP bound plus DOE on all processor instances.
    #[must_use]
    #[deprecated(note = "use kahrisma_plan::grids::figure4()")]
    pub fn figure4() -> CampaignSpec {
        grids::figure4().into()
    }

    /// A small CI campaign.
    #[must_use]
    #[deprecated(note = "use kahrisma_plan::grids::smoke()")]
    pub fn smoke() -> CampaignSpec {
        grids::smoke().into()
    }

    /// The campaign as an execution plan (the planner-native form).
    #[must_use]
    pub fn to_plan(&self) -> ExecPlan {
        ExecPlan { name: self.name.clone(), cells: self.cells.clone() }
    }

    /// A stable fingerprint over the campaign's name and cell parameters,
    /// used to reject resuming a manifest written for a different campaign
    /// ([`ExecPlan::fingerprint`] — unchanged from the pre-planner
    /// implementation).
    #[must_use]
    pub fn fingerprint(&self) -> String {
        self.to_plan().fingerprint()
    }
}

impl From<ExecPlan> for CampaignSpec {
    fn from(plan: ExecPlan) -> CampaignSpec {
        CampaignSpec { name: plan.name, cells: plan.cells }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kahrisma_core::CycleModelKind;

    #[test]
    fn keys_are_unique_within_predefined_campaigns() {
        for name in CampaignSpec::PREDEFINED {
            let spec = CampaignSpec::by_name(name).unwrap();
            let mut keys: Vec<String> = spec.cells.iter().map(CellSpec::key).collect();
            let len = keys.len();
            keys.sort();
            keys.dedup();
            assert_eq!(keys.len(), len, "duplicate keys in {name}");
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructors_delegate_to_the_planner_grids() {
        assert_eq!(CampaignSpec::table1().fingerprint(), grids::table1().fingerprint());
        assert_eq!(CampaignSpec::table2().fingerprint(), grids::table2().fingerprint());
        assert_eq!(CampaignSpec::figure4().fingerprint(), grids::figure4().fingerprint());
        assert_eq!(CampaignSpec::smoke().fingerprint(), grids::smoke().fingerprint());
    }

    #[test]
    fn predefined_sizes_match_paper_artifacts() {
        let size = |n: &str| CampaignSpec::by_name(n).unwrap().cells.len();
        assert_eq!(size("table1"), 8);
        assert_eq!(size("table2"), 8);
        assert_eq!(size("figure4"), 36);
        assert_eq!(size("smoke"), 6);
    }

    #[test]
    fn key_encodes_every_dimension() {
        let mut cell = CellSpec::new(
            Workload::Cjpeg,
            IsaKind::Risc,
            Engine::Iss(Some(CycleModelKind::Aie)),
        );
        cell.variant = CacheVariant::Prediction;
        cell.ideal_memory = true;
        assert_eq!(cell.key(), "cjpeg/risc/aie/pred+idealmem");
    }

    #[test]
    fn sim_config_follows_variant() {
        let mut cell = CellSpec::new(Workload::Dct, IsaKind::Risc, Engine::Iss(None));
        cell.variant = CacheVariant::NoCache;
        let c = cell.sim_config();
        assert!(!c.decode_cache && !c.prediction && !c.superblocks);
        cell.variant = CacheVariant::Superblocks;
        let c = cell.sim_config();
        assert!(c.decode_cache && c.prediction && c.superblocks);
    }

    #[test]
    fn fingerprint_is_stable_and_parameter_sensitive() {
        let a = CampaignSpec::by_name("smoke").unwrap();
        let b = CampaignSpec::by_name("smoke").unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = CampaignSpec::by_name("smoke").unwrap();
        c.cells[0].budget += 1;
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = CampaignSpec::by_name("smoke").unwrap();
        d.name = "smoke2".into();
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn predefined_fingerprints_are_frozen() {
        // Captured before the planner extraction; a change here would
        // orphan every existing manifest.
        let fp = |n: &str| CampaignSpec::by_name(n).unwrap().fingerprint();
        assert_eq!(fp("table1"), "5d4c1f658946a520");
        assert_eq!(fp("table2"), "f175e0aa44b51159");
        assert_eq!(fp("figure4"), "3ac17e746512cba7");
        assert_eq!(fp("smoke"), "21a05339803ae455");
    }
}
