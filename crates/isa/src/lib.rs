//! The concrete KAHRISMA ISA family.
//!
//! The DATE 2012 paper evaluates KAHRISMA processor instances executing a
//! RISC ISA (one operation per instruction) and n-issue VLIW ISAs (n
//! statically scheduled operations per instruction, one per issue slot /
//! EDPE). The precise bit-level instruction set was never published, so this
//! crate defines a documented, self-consistent KAHRISMA-like family with the
//! properties the paper's evaluation depends on:
//!
//! * 32 × 32-bit general-purpose registers, `r0` hardwired to zero;
//! * 32-bit operation words; an instruction of the `w`-issue ISA is `w`
//!   consecutive operation words (slot *i* executes on EDPE *i*), padded
//!   with `nop`s;
//! * five ISA configurations sharing one operation set:
//!   `risc` (id 0, width 1), `vliw2` (id 1), `vliw4` (id 2), `vliw6` (id 3)
//!   and `vliw8` (id 4) — exactly the instance set of Figure 4;
//! * a `switchtarget` operation that changes the active ISA at runtime
//!   (paper §V-D) and a `simop` operation that invokes the simulator's
//!   C-standard-library emulation (paper §V-E).
//!
//! Operation latencies (ALU 1, MUL 3, DIV 12, branch 1; memory operations
//! take their latency from the configured memory hierarchy, L1 hit = 3
//! cycles) are declared in the architecture description and consumed by all
//! cycle models.
//!
//! # Example
//!
//! ```
//! use kahrisma_isa::{arch, tables, isa_id};
//!
//! let arch = arch();
//! assert_eq!(arch.isas().len(), 5);
//! let tables = tables();
//! let risc = tables.table(isa_id::RISC).unwrap();
//! let (_, add) = risc.op_by_name("add").unwrap();
//! let word = add.encode(2, 4, 5, 0); // add r2, r4, r5
//! assert_eq!(risc.detect(word).unwrap().name(), "add");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abi;
pub mod ops;
pub mod simop;

mod arch;

pub use arch::{arch, isa_for_width, isa_id, tables, widths, IsaKind};

pub use kahrisma_adl as adl;
