//! The architecture description of the KAHRISMA family.

use kahrisma_adl::{ArchDesc, IsaDesc, IsaId, TableSet, TargetGen};

use crate::ops;

/// ISA identifiers of the KAHRISMA family, matching the instance set the
/// paper evaluates (Figure 4 and Table II).
pub mod isa_id {
    use kahrisma_adl::IsaId;

    /// RISC — one operation per instruction (id 0, the default ISA).
    pub const RISC: IsaId = IsaId::new(0);
    /// 2-issue VLIW (id 1).
    pub const VLIW2: IsaId = IsaId::new(1);
    /// 4-issue VLIW (id 2).
    pub const VLIW4: IsaId = IsaId::new(2);
    /// 6-issue VLIW (id 3).
    pub const VLIW6: IsaId = IsaId::new(3);
    /// 8-issue VLIW (id 4).
    pub const VLIW8: IsaId = IsaId::new(4);
}

/// The ISA configurations of the family, by kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum IsaKind {
    /// RISC (1-issue).
    Risc,
    /// 2-issue VLIW.
    Vliw2,
    /// 4-issue VLIW.
    Vliw4,
    /// 6-issue VLIW.
    Vliw6,
    /// 8-issue VLIW.
    Vliw8,
}

impl IsaKind {
    /// All kinds, narrowest first.
    pub const ALL: [IsaKind; 5] =
        [IsaKind::Risc, IsaKind::Vliw2, IsaKind::Vliw4, IsaKind::Vliw6, IsaKind::Vliw8];

    /// The ISA identifier of this kind.
    #[must_use]
    pub fn id(self) -> IsaId {
        match self {
            IsaKind::Risc => isa_id::RISC,
            IsaKind::Vliw2 => isa_id::VLIW2,
            IsaKind::Vliw4 => isa_id::VLIW4,
            IsaKind::Vliw6 => isa_id::VLIW6,
            IsaKind::Vliw8 => isa_id::VLIW8,
        }
    }

    /// Issue width (operations per instruction).
    #[must_use]
    pub fn width(self) -> u8 {
        match self {
            IsaKind::Risc => 1,
            IsaKind::Vliw2 => 2,
            IsaKind::Vliw4 => 4,
            IsaKind::Vliw6 => 6,
            IsaKind::Vliw8 => 8,
        }
    }

    /// ISA name as used in assembly `.isa` directives.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            IsaKind::Risc => "risc",
            IsaKind::Vliw2 => "vliw2",
            IsaKind::Vliw4 => "vliw4",
            IsaKind::Vliw6 => "vliw6",
            IsaKind::Vliw8 => "vliw8",
        }
    }

    /// Looks a kind up by issue width.
    #[must_use]
    pub fn from_width(width: u8) -> Option<IsaKind> {
        IsaKind::ALL.iter().copied().find(|k| k.width() == width)
    }

    /// Looks a kind up by ISA identifier.
    #[must_use]
    pub fn from_id(id: IsaId) -> Option<IsaKind> {
        IsaKind::ALL.iter().copied().find(|k| k.id() == id)
    }
}

/// Issue widths of the family, narrowest first: `[1, 2, 4, 6, 8]`.
#[must_use]
pub fn widths() -> [u8; 5] {
    [1, 2, 4, 6, 8]
}

/// The ISA identifier executing `width` operations per instruction.
///
/// # Panics
///
/// Panics if `width` is not one of the family's widths (1, 2, 4, 6, 8).
#[must_use]
pub fn isa_for_width(width: u8) -> IsaId {
    IsaKind::from_width(width)
        .unwrap_or_else(|| panic!("no ISA with issue width {width} in the KAHRISMA family"))
        .id()
}

/// Builds the complete architecture description of the KAHRISMA family:
/// five ISAs (RISC + VLIW 2/4/6/8) sharing one operation set, 32 registers
/// with hardwired `r0`.
#[must_use]
pub fn arch() -> ArchDesc {
    let isas = IsaKind::ALL
        .iter()
        .map(|k| {
            let mut isa = IsaDesc::new(k.id().value(), k.name(), k.width());
            for op in ops::operation_set() {
                isa.push_op(op);
            }
            isa
        })
        .collect();
    ArchDesc::new("kahrisma", isas).expect("the built-in architecture description is valid")
}

/// Generates the operation tables of the family (one per ISA).
#[must_use]
pub fn tables() -> TableSet {
    TargetGen::new(&arch()).generate().expect("table generation for the built-in family succeeds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_has_five_isas_with_expected_widths() {
        let a = arch();
        assert_eq!(a.isas().len(), 5);
        assert_eq!(a.default_isa(), isa_id::RISC);
        for kind in IsaKind::ALL {
            let isa = a.isa(kind.id()).unwrap();
            assert_eq!(isa.issue_width(), kind.width());
            assert_eq!(isa.name(), kind.name());
        }
    }

    #[test]
    fn kind_lookups_roundtrip() {
        for kind in IsaKind::ALL {
            assert_eq!(IsaKind::from_width(kind.width()), Some(kind));
            assert_eq!(IsaKind::from_id(kind.id()), Some(kind));
        }
        assert_eq!(IsaKind::from_width(3), None);
        assert_eq!(isa_for_width(4), isa_id::VLIW4);
    }

    #[test]
    #[should_panic(expected = "no ISA with issue width")]
    fn bad_width_panics() {
        let _ = isa_for_width(5);
    }

    #[test]
    fn tables_detect_shared_operation_set() {
        let t = tables();
        for kind in IsaKind::ALL {
            let table = t.table(kind.id()).unwrap();
            assert_eq!(table.issue_width(), kind.width());
            assert!(table.op_by_name("add").is_some());
            assert!(table.op_by_name("switchtarget").is_some());
            assert!(table.op_by_name("simop").is_some());
        }
    }

    #[test]
    fn encode_decode_roundtrip_every_operation() {
        let t = tables();
        let risc = t.table(isa_id::RISC).unwrap();
        for op in risc.operations() {
            let word = op.encode(5, 6, 7, 100);
            let decoded = risc.decode(word).unwrap_or_else(|| panic!("decode {}", op.name()));
            assert_eq!(risc.op(decoded.op_index).name(), op.name());
        }
    }
}
