//! Application binary interface of the KAHRISMA family.
//!
//! Shared by the compiler (`kahrisma-kcc`), the assembler's register-alias
//! parser, and the simulator's C-standard-library emulation (which reads
//! arguments "from the registers and stack according to the calling
//! convention", paper §V-E).
//!
//! | registers | alias | role | saved by |
//! |-----------|-------|------|----------|
//! | `r0`      | `zero`| hardwired zero | — |
//! | `r1`      | `at`  | assembler/linker scratch | — |
//! | `r2`      | `rv`  | return value | caller |
//! | `r3`      | `rv2` | second return value / scratch | caller |
//! | `r4`–`r7` | `a0`–`a3` | arguments | caller |
//! | `r8`–`r15`| `t0`–`t7` | temporaries | caller |
//! | `r16`–`r27`| `s0`–`s11`| saved | callee |
//! | `r28`     | `fp`  | frame pointer | callee |
//! | `r29`     | `sp`  | stack pointer | callee |
//! | `r30`     | `gp`  | global pointer (reserved) | — |
//! | `r31`     | `ra`  | return address | caller |
//!
//! Additional arguments beyond `a3` are passed on the stack at `sp+0`,
//! `sp+4`, … of the caller's outgoing-argument area. The stack grows
//! downward and is kept 8-byte aligned.

/// Hardwired-zero register.
pub const ZERO: u8 = 0;
/// Assembler scratch register (used by pseudo-instruction expansion).
pub const AT: u8 = 1;
/// Return-value register.
pub const RV: u8 = 2;
/// Second return-value register.
pub const RV2: u8 = 3;
/// First argument register; arguments occupy `A0..A0+NUM_ARG_REGS`.
pub const A0: u8 = 4;
/// Number of argument registers.
pub const NUM_ARG_REGS: u8 = 4;
/// First caller-saved temporary.
pub const T0: u8 = 8;
/// Number of caller-saved temporaries.
pub const NUM_TEMP_REGS: u8 = 8;
/// First callee-saved register.
pub const S0: u8 = 16;
/// Number of callee-saved registers.
pub const NUM_SAVED_REGS: u8 = 12;
/// Frame pointer.
pub const FP: u8 = 28;
/// Stack pointer.
pub const SP: u8 = 29;
/// Global pointer (reserved, unused by the shipped toolchain).
pub const GP: u8 = 30;
/// Return-address (link) register.
pub const RA: u8 = 31;

/// Required stack alignment in bytes.
pub const STACK_ALIGN: u32 = 8;

/// Initial stack-pointer value installed by the simulator loader.
pub const STACK_TOP: u32 = 0x0100_0000;

/// Base address at which the linker places the text segment.
pub const TEXT_BASE: u32 = 0x0001_0000;

/// Resolves a register alias (`"sp"`, `"a0"`, …) or numeric name (`"r7"`)
/// to its register number.
///
/// # Example
///
/// ```
/// use kahrisma_isa::abi;
/// assert_eq!(abi::parse_reg("sp"), Some(29));
/// assert_eq!(abi::parse_reg("r7"), Some(7));
/// assert_eq!(abi::parse_reg("t3"), Some(11));
/// assert_eq!(abi::parse_reg("bogus"), None);
/// ```
#[must_use]
pub fn parse_reg(name: &str) -> Option<u8> {
    match name {
        "zero" => return Some(ZERO),
        "at" => return Some(AT),
        "rv" => return Some(RV),
        "rv2" => return Some(RV2),
        "fp" => return Some(FP),
        "sp" => return Some(SP),
        "gp" => return Some(GP),
        "ra" => return Some(RA),
        _ => {}
    }
    let (prefix, base, count) = match name.as_bytes().first()? {
        b'r' => ("r", 0u8, 32u8),
        b'a' => ("a", A0, NUM_ARG_REGS),
        b't' => ("t", T0, NUM_TEMP_REGS),
        b's' => ("s", S0, NUM_SAVED_REGS),
        _ => return None,
    };
    let n: u8 = name.strip_prefix(prefix)?.parse().ok()?;
    if n < count {
        Some(base + n)
    } else {
        None
    }
}

/// Canonical display name of a register number (numeric form).
///
/// # Panics
///
/// Panics if `reg >= 32`.
#[must_use]
pub fn reg_name(reg: u8) -> String {
    assert!(reg < 32, "register {reg} out of range");
    format!("r{reg}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliases_resolve() {
        assert_eq!(parse_reg("zero"), Some(0));
        assert_eq!(parse_reg("at"), Some(1));
        assert_eq!(parse_reg("rv"), Some(2));
        assert_eq!(parse_reg("rv2"), Some(3));
        assert_eq!(parse_reg("a0"), Some(4));
        assert_eq!(parse_reg("a3"), Some(7));
        assert_eq!(parse_reg("t0"), Some(8));
        assert_eq!(parse_reg("t7"), Some(15));
        assert_eq!(parse_reg("s0"), Some(16));
        assert_eq!(parse_reg("s11"), Some(27));
        assert_eq!(parse_reg("fp"), Some(28));
        assert_eq!(parse_reg("sp"), Some(29));
        assert_eq!(parse_reg("gp"), Some(30));
        assert_eq!(parse_reg("ra"), Some(31));
    }

    #[test]
    fn numeric_names_resolve() {
        for i in 0..32u8 {
            assert_eq!(parse_reg(&format!("r{i}")), Some(i));
        }
    }

    #[test]
    fn out_of_range_rejected() {
        assert_eq!(parse_reg("r32"), None);
        assert_eq!(parse_reg("a4"), None);
        assert_eq!(parse_reg("t8"), None);
        assert_eq!(parse_reg("s12"), None);
        assert_eq!(parse_reg(""), None);
        assert_eq!(parse_reg("x1"), None);
        assert_eq!(parse_reg("r-1"), None);
    }

    #[test]
    fn reg_name_roundtrip() {
        for i in 0..32u8 {
            assert_eq!(parse_reg(&reg_name(i)), Some(i));
        }
    }

    #[test]
    fn layout_is_consistent() {
        assert_eq!(A0 + NUM_ARG_REGS, T0);
        assert_eq!(T0 + NUM_TEMP_REGS, S0);
        assert_eq!(S0 + NUM_SAVED_REGS, FP);
        assert!(STACK_TOP.is_multiple_of(STACK_ALIGN));
        assert!(TEXT_BASE.is_multiple_of(32)); // aligned for the widest (8-issue) instruction
    }
}
