//! Opcode assignments and the shared operation set.
//!
//! All five ISA configurations of the family share one operation set (their
//! instruction *formats* differ — the number of operation words per
//! instruction). Opcodes occupy bits `[31:24]` of every operation word.

use kahrisma_adl::{AluOp, AtomicOp, Behavior, CondOp, Encoding, MemWidth, OperationDesc, Reg};

use crate::abi;

/// `nop` — the all-zero word, also the VLIW slot filler.
pub const NOP: u8 = 0x00;
/// `add rd, rs1, rs2`.
pub const ADD: u8 = 0x01;
/// `sub rd, rs1, rs2`.
pub const SUB: u8 = 0x02;
/// `and rd, rs1, rs2`.
pub const AND: u8 = 0x03;
/// `or rd, rs1, rs2`.
pub const OR: u8 = 0x04;
/// `xor rd, rs1, rs2`.
pub const XOR: u8 = 0x05;
/// `nor rd, rs1, rs2`.
pub const NOR: u8 = 0x06;
/// `slt rd, rs1, rs2` (signed set-less-than).
pub const SLT: u8 = 0x07;
/// `sltu rd, rs1, rs2` (unsigned set-less-than).
pub const SLTU: u8 = 0x08;
/// `sll rd, rs1, rs2` (shift left logical).
pub const SLL: u8 = 0x09;
/// `srl rd, rs1, rs2` (shift right logical).
pub const SRL: u8 = 0x0A;
/// `sra rd, rs1, rs2` (shift right arithmetic).
pub const SRA: u8 = 0x0B;
/// `mul rd, rs1, rs2` (low 32 bits, 3-cycle).
pub const MUL: u8 = 0x0C;
/// `mulh rd, rs1, rs2` (signed high 32 bits).
pub const MULH: u8 = 0x0D;
/// `mulhu rd, rs1, rs2` (unsigned high 32 bits).
pub const MULHU: u8 = 0x0E;
/// `div rd, rs1, rs2` (signed, 12-cycle).
pub const DIV: u8 = 0x0F;
/// `divu rd, rs1, rs2`.
pub const DIVU: u8 = 0x10;
/// `rem rd, rs1, rs2`.
pub const REM: u8 = 0x11;
/// `remu rd, rs1, rs2`.
pub const REMU: u8 = 0x12;
/// `addi rd, rs1, simm14`.
pub const ADDI: u8 = 0x13;
/// `slti rd, rs1, simm14`.
pub const SLTI: u8 = 0x14;
/// `sltiu rd, rs1, simm14` (immediate sign-extended, comparison unsigned).
pub const SLTIU: u8 = 0x15;
/// `andi rd, rs1, uimm14` (zero-extended immediate).
pub const ANDI: u8 = 0x16;
/// `ori rd, rs1, uimm14` (zero-extended immediate).
pub const ORI: u8 = 0x17;
/// `xori rd, rs1, uimm14` (zero-extended immediate).
pub const XORI: u8 = 0x18;
/// `slli rd, rs1, shamt`.
pub const SLLI: u8 = 0x19;
/// `srli rd, rs1, shamt`.
pub const SRLI: u8 = 0x1A;
/// `srai rd, rs1, shamt`.
pub const SRAI: u8 = 0x1B;
/// `lui rd, uimm19` — `rd = uimm19 << 13`.
pub const LUI: u8 = 0x1C;
/// `lw rd, simm14(rs1)`.
pub const LW: u8 = 0x20;
/// `lh rd, simm14(rs1)` (sign-extending).
pub const LH: u8 = 0x21;
/// `lhu rd, simm14(rs1)` (zero-extending).
pub const LHU: u8 = 0x22;
/// `lb rd, simm14(rs1)` (sign-extending).
pub const LB: u8 = 0x23;
/// `lbu rd, simm14(rs1)` (zero-extending).
pub const LBU: u8 = 0x24;
/// `sw rs2, simm14(rs1)`.
pub const SW: u8 = 0x28;
/// `sh rs2, simm14(rs1)`.
pub const SH: u8 = 0x29;
/// `sb rs2, simm14(rs1)`.
pub const SB: u8 = 0x2A;
/// `beq rs1, rs2, off14` (word offset from the instruction address).
pub const BEQ: u8 = 0x30;
/// `bne rs1, rs2, off14`.
pub const BNE: u8 = 0x31;
/// `blt rs1, rs2, off14` (signed).
pub const BLT: u8 = 0x32;
/// `bge rs1, rs2, off14` (signed).
pub const BGE: u8 = 0x33;
/// `bltu rs1, rs2, off14`.
pub const BLTU: u8 = 0x34;
/// `bgeu rs1, rs2, off14`.
pub const BGEU: u8 = 0x35;
/// `j uimm24` — absolute jump to word address `uimm24`.
pub const J: u8 = 0x38;
/// `jal uimm24` — call; implicitly writes the link register `r31`.
pub const JAL: u8 = 0x39;
/// `jr rs1` — indirect jump (return).
pub const JR: u8 = 0x3A;
/// `jalr rd, rs1` — indirect call; writes `rd` with the return address.
pub const JALR: u8 = 0x3B;
/// `switchtarget uimm24` — switch the active ISA to id `uimm24` (§V-D).
pub const SWITCHTARGET: u8 = 0x40;
/// `simop uimm24` — C-standard-library emulation operation (§V-E).
pub const SIMOP: u8 = 0x41;
/// `halt` — stop simulation; exit code in the return-value register.
pub const HALT: u8 = 0x42;
/// `amoswap rd, rs1, rs2` — atomic `rd = mem[rs1]; mem[rs1] = rs2`.
pub const AMOSWAP: u8 = 0x43;
/// `amoadd rd, rs1, rs2` — atomic `rd = mem[rs1]; mem[rs1] = rd + rs2`.
pub const AMOADD: u8 = 0x44;

/// The encoded `nop` operation word.
pub const NOP_WORD: u32 = 0;

/// Default execution delay of single-cycle operations.
pub const ALU_DELAY: u32 = 1;
/// Execution delay of multiplications.
pub const MUL_DELAY: u32 = 3;
/// Execution delay of divisions and remainders.
pub const DIV_DELAY: u32 = 12;

/// Builds the shared operation set, in detection order.
///
/// The list is identical for every ISA of the family; per the paper each ISA
/// still receives its *own* operation table so that detection only ever
/// consults the active ISA.
#[must_use]
pub fn operation_set() -> Vec<OperationDesc> {
    use Behavior as B;
    let ra = Reg::new(abi::RA);
    let mut ops = vec![
        OperationDesc::new("nop", NOP, Encoding::None, B::Nop, ALU_DELAY),
        OperationDesc::new("add", ADD, Encoding::R, B::IntAlu(AluOp::Add), ALU_DELAY),
        OperationDesc::new("sub", SUB, Encoding::R, B::IntAlu(AluOp::Sub), ALU_DELAY),
        OperationDesc::new("and", AND, Encoding::R, B::IntAlu(AluOp::And), ALU_DELAY),
        OperationDesc::new("or", OR, Encoding::R, B::IntAlu(AluOp::Or), ALU_DELAY),
        OperationDesc::new("xor", XOR, Encoding::R, B::IntAlu(AluOp::Xor), ALU_DELAY),
        OperationDesc::new("nor", NOR, Encoding::R, B::IntAlu(AluOp::Nor), ALU_DELAY),
        OperationDesc::new("slt", SLT, Encoding::R, B::IntAlu(AluOp::Slt), ALU_DELAY),
        OperationDesc::new("sltu", SLTU, Encoding::R, B::IntAlu(AluOp::Sltu), ALU_DELAY),
        OperationDesc::new("sll", SLL, Encoding::R, B::IntAlu(AluOp::Sll), ALU_DELAY),
        OperationDesc::new("srl", SRL, Encoding::R, B::IntAlu(AluOp::Srl), ALU_DELAY),
        OperationDesc::new("sra", SRA, Encoding::R, B::IntAlu(AluOp::Sra), ALU_DELAY),
        OperationDesc::new("mul", MUL, Encoding::R, B::IntAlu(AluOp::Mul), MUL_DELAY),
        OperationDesc::new("mulh", MULH, Encoding::R, B::IntAlu(AluOp::Mulh), MUL_DELAY),
        OperationDesc::new("mulhu", MULHU, Encoding::R, B::IntAlu(AluOp::Mulhu), MUL_DELAY),
        OperationDesc::new("div", DIV, Encoding::R, B::IntAlu(AluOp::Div), DIV_DELAY),
        OperationDesc::new("divu", DIVU, Encoding::R, B::IntAlu(AluOp::Divu), DIV_DELAY),
        OperationDesc::new("rem", REM, Encoding::R, B::IntAlu(AluOp::Rem), DIV_DELAY),
        OperationDesc::new("remu", REMU, Encoding::R, B::IntAlu(AluOp::Remu), DIV_DELAY),
        OperationDesc::new("addi", ADDI, Encoding::I, B::IntAluImm(AluOp::Add), ALU_DELAY),
        OperationDesc::new("slti", SLTI, Encoding::I, B::IntAluImm(AluOp::Slt), ALU_DELAY),
        OperationDesc::new("sltiu", SLTIU, Encoding::I, B::IntAluImm(AluOp::Sltu), ALU_DELAY),
        OperationDesc::new("andi", ANDI, Encoding::Iu, B::IntAluImm(AluOp::And), ALU_DELAY),
        OperationDesc::new("ori", ORI, Encoding::Iu, B::IntAluImm(AluOp::Or), ALU_DELAY),
        OperationDesc::new("xori", XORI, Encoding::Iu, B::IntAluImm(AluOp::Xor), ALU_DELAY),
        OperationDesc::new("slli", SLLI, Encoding::Iu, B::IntAluImm(AluOp::Sll), ALU_DELAY),
        OperationDesc::new("srli", SRLI, Encoding::Iu, B::IntAluImm(AluOp::Srl), ALU_DELAY),
        OperationDesc::new("srai", SRAI, Encoding::Iu, B::IntAluImm(AluOp::Sra), ALU_DELAY),
        OperationDesc::new("lui", LUI, Encoding::U, B::LoadUpperImm, ALU_DELAY),
    ];
    let loads: [(&'static str, u8, MemWidth, bool); 5] = [
        ("lw", LW, MemWidth::Word, false),
        ("lh", LH, MemWidth::Half, true),
        ("lhu", LHU, MemWidth::Half, false),
        ("lb", LB, MemWidth::Byte, true),
        ("lbu", LBU, MemWidth::Byte, false),
    ];
    for (name, opc, width, signed) in loads {
        ops.push(OperationDesc::new(name, opc, Encoding::I, B::Load { width, signed }, ALU_DELAY));
    }
    let stores: [(&'static str, u8, MemWidth); 3] =
        [("sw", SW, MemWidth::Word), ("sh", SH, MemWidth::Half), ("sb", SB, MemWidth::Byte)];
    for (name, opc, width) in stores {
        ops.push(OperationDesc::new(name, opc, Encoding::B, B::Store { width }, ALU_DELAY));
    }
    let branches: [(&'static str, u8, CondOp); 6] = [
        ("beq", BEQ, CondOp::Eq),
        ("bne", BNE, CondOp::Ne),
        ("blt", BLT, CondOp::Lt),
        ("bge", BGE, CondOp::Ge),
        ("bltu", BLTU, CondOp::Ltu),
        ("bgeu", BGEU, CondOp::Geu),
    ];
    for (name, opc, cond) in branches {
        ops.push(OperationDesc::new(name, opc, Encoding::B, B::Branch(cond), ALU_DELAY));
    }
    ops.push(OperationDesc::new("j", J, Encoding::J, B::Jump, ALU_DELAY));
    ops.push(
        OperationDesc::new("jal", JAL, Encoding::J, B::JumpAndLink, ALU_DELAY)
            .with_implicit_write(ra),
    );
    ops.push(OperationDesc::new("jr", JR, Encoding::R1, B::JumpReg, ALU_DELAY));
    ops.push(OperationDesc::new("jalr", JALR, Encoding::Rr, B::JumpAndLinkReg, ALU_DELAY));
    ops.push(OperationDesc::new(
        "switchtarget",
        SWITCHTARGET,
        Encoding::J,
        B::SwitchTarget,
        ALU_DELAY,
    ));
    ops.push(OperationDesc::new("simop", SIMOP, Encoding::J, B::SimOp, ALU_DELAY));
    ops.push(OperationDesc::new("halt", HALT, Encoding::None, B::Halt, ALU_DELAY));
    // Atomics carry the multiply delay: a locked read-modify-write round
    // trip, not a single-cycle ALU op.
    ops.push(OperationDesc::new(
        "amoswap",
        AMOSWAP,
        Encoding::R,
        B::Atomic(AtomicOp::Swap),
        MUL_DELAY,
    ));
    ops.push(OperationDesc::new("amoadd", AMOADD, Encoding::R, B::Atomic(AtomicOp::Add), MUL_DELAY));
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_word_is_all_zero() {
        let ops = operation_set();
        let nop = ops.iter().find(|o| o.name() == "nop").unwrap();
        assert_eq!(nop.encode(0, 0, 0, 0), NOP_WORD);
    }

    #[test]
    fn opcodes_are_unique() {
        let ops = operation_set();
        let mut seen = std::collections::HashSet::new();
        for op in &ops {
            assert!(seen.insert(op.opcode()), "duplicate opcode {:#04x}", op.opcode());
        }
    }

    #[test]
    fn names_are_unique() {
        let ops = operation_set();
        let mut seen = std::collections::HashSet::new();
        for op in &ops {
            assert!(seen.insert(op.name()), "duplicate name {}", op.name());
        }
    }

    #[test]
    fn delays_match_operation_classes() {
        let ops = operation_set();
        let delay = |n: &str| ops.iter().find(|o| o.name() == n).unwrap().delay();
        assert_eq!(delay("add"), ALU_DELAY);
        assert_eq!(delay("mul"), MUL_DELAY);
        assert_eq!(delay("divu"), DIV_DELAY);
        assert_eq!(delay("beq"), ALU_DELAY);
    }

    #[test]
    fn jal_implicitly_writes_link_register() {
        let ops = operation_set();
        let jal = ops.iter().find(|o| o.name() == "jal").unwrap();
        assert_eq!(jal.implicit_writes(), &[Reg::new(abi::RA)]);
    }

    #[test]
    fn set_contains_all_documented_groups() {
        let ops = operation_set();
        for name in [
            "nop", "add", "sub", "mul", "div", "addi", "andi", "slli", "lui", "lw", "lbu", "sw",
            "sb", "beq", "bgeu", "j", "jal", "jr", "jalr", "switchtarget", "simop", "halt",
            "amoswap", "amoadd",
        ] {
            assert!(ops.iter().any(|o| o.name() == name), "missing {name}");
        }
    }
}
