//! Linked executables (`ET_EXEC`).

use crate::consts::*;
use crate::debuginfo::DebugInfo;
use crate::error::ElfError;
use crate::io::{StrTab, Writer};
use crate::object::{RawSection, read_elf};

/// One loadable segment of an executable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Virtual load address.
    pub addr: u32,
    /// Initialized contents (loaded verbatim).
    pub data: Vec<u8>,
    /// Total in-memory size; any excess over `data.len()` is zero-filled
    /// (`.bss`).
    pub mem_size: u32,
    /// `true` for the executable (text) segment.
    pub executable: bool,
}

impl Segment {
    /// Creates a fully initialized segment.
    #[must_use]
    pub fn new(addr: u32, data: Vec<u8>, executable: bool) -> Self {
        let mem_size = data.len() as u32;
        Segment { addr, data, mem_size, executable }
    }
}

/// A linked KAHRISMA executable.
///
/// The simulator loads every segment into simulated memory, initializes the
/// instruction pointer from [`Executable::entry`], and the active ISA from
/// [`Executable::entry_isa`] (paper §V: "The ELF file is loaded into the
/// simulated memory of the processor. The start address is extracted and
/// used to initialize the IP"; §V-D: the initial ISA must match the entry
/// code).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Executable {
    /// Entry-point address.
    pub entry: u32,
    /// ISA id of the entry code (stored in `e_flags`).
    pub entry_isa: u8,
    /// Loadable segments.
    pub segments: Vec<Segment>,
    /// Debug metadata with absolute addresses.
    pub debug: DebugInfo,
}

impl Executable {
    /// Creates an empty executable.
    #[must_use]
    pub fn new() -> Self {
        Executable::default()
    }

    /// Serializes into ELF32 `ET_EXEC` bytes with one `PT_LOAD` program
    /// header per segment plus the KAHRISMA debug sections.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        let phnum = self.segments.len() as u16;

        w.raw(&ELF_MAGIC);
        w.u8(ELFCLASS32);
        w.u8(ELFDATA2LSB);
        w.u8(EV_CURRENT);
        w.raw(&[0; 9]);
        w.u16(ET_EXEC);
        w.u16(EM_KAHRISMA);
        w.u32(1);
        w.u32(self.entry);
        let phoff_at = w.len();
        w.u32(0); // e_phoff (patched)
        let shoff_at = w.len();
        w.u32(0); // e_shoff (patched)
        w.u32(u32::from(self.entry_isa)); // e_flags carries the entry ISA
        w.u16(EHDR_SIZE);
        w.u16(PHDR_SIZE);
        w.u16(phnum);
        w.u16(SHDR_SIZE);
        w.u16(5); // null + 3 debug sections + shstrtab
        w.u16(4); // shstrtab index

        // Program headers.
        w.align(4);
        let phoff = w.len() as u32;
        w.patch_u32(phoff_at, phoff);
        let mut data_off_slots = Vec::new();
        for seg in &self.segments {
            w.u32(PT_LOAD);
            data_off_slots.push(w.len());
            w.u32(0); // p_offset (patched)
            w.u32(seg.addr);
            w.u32(seg.addr);
            w.u32(seg.data.len() as u32);
            w.u32(seg.mem_size.max(seg.data.len() as u32));
            w.u32(if seg.executable { PF_R | PF_X } else { PF_R | PF_W });
            w.u32(4);
        }

        // Segment data.
        for (seg, slot) in self.segments.iter().zip(&data_off_slots) {
            w.align(4);
            let off = w.len() as u32;
            w.patch_u32(*slot, off);
            w.raw(&seg.data);
        }

        // Debug sections.
        let lines = self.debug.encode_lines();
        let funcs = self.debug.encode_funcs();
        let isamap = self.debug.encode_isamap();
        let debug_secs: [(&str, &[u8]); 3] =
            [(SEC_LINES, &lines), (SEC_FUNCS, &funcs), (SEC_ISAMAP, &isamap)];
        let mut sec_offsets = Vec::new();
        for (_, data) in &debug_secs {
            w.align(4);
            sec_offsets.push(w.len() as u32);
            w.raw(data);
        }

        let mut shstr = StrTab::new();
        let name_offs: Vec<u32> = debug_secs.iter().map(|(n, _)| shstr.add(n)).collect();
        let shstrtab_name = shstr.add(SEC_SHSTRTAB);
        let shstr_bytes = shstr.into_bytes();
        w.align(4);
        let shstr_off = w.len() as u32;
        w.raw(&shstr_bytes);

        // Section headers.
        w.align(4);
        let shoff = w.len() as u32;
        w.patch_u32(shoff_at, shoff);
        for _ in 0..10 {
            w.u32(0); // null header
        }
        for (i, (_, data)) in debug_secs.iter().enumerate() {
            w.u32(name_offs[i]);
            w.u32(SHT_KAHRISMA_DEBUG);
            w.u32(0);
            w.u32(0);
            w.u32(sec_offsets[i]);
            w.u32(data.len() as u32);
            w.u32(0);
            w.u32(0);
            w.u32(4);
            w.u32(0);
        }
        w.u32(shstrtab_name);
        w.u32(SHT_STRTAB);
        w.u32(0);
        w.u32(0);
        w.u32(shstr_off);
        w.u32(shstr_bytes.len() as u32);
        w.u32(0);
        w.u32(0);
        w.u32(1);
        w.u32(0);

        w.into_bytes()
    }

    /// Parses ELF32 `ET_EXEC` bytes.
    ///
    /// # Errors
    ///
    /// Returns an error if the bytes are not a well-formed KAHRISMA
    /// executable.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ElfError> {
        let (ehdr, sections) = read_elf(bytes, ET_EXEC)?;

        // Program headers.
        let mut segments = Vec::with_capacity(usize::from(ehdr.phnum));
        for i in 0..ehdr.phnum {
            let base = ehdr.phoff as usize + usize::from(i) * PHDR_SIZE as usize;
            let mut r = crate::io::Reader::at(bytes, base)?;
            let p_type = r.u32("p_type")?;
            let p_offset = r.u32("p_offset")?;
            let p_vaddr = r.u32("p_vaddr")?;
            let _p_paddr = r.u32("p_paddr")?;
            let p_filesz = r.u32("p_filesz")?;
            let p_memsz = r.u32("p_memsz")?;
            let p_flags = r.u32("p_flags")?;
            let _p_align = r.u32("p_align")?;
            if p_type != PT_LOAD {
                continue;
            }
            let data = bytes
                .get(p_offset as usize..(p_offset as usize + p_filesz as usize))
                .ok_or(ElfError::Truncated { what: "segment data", offset: p_offset as usize })?
                .to_vec();
            segments.push(Segment {
                addr: p_vaddr,
                data,
                mem_size: p_memsz,
                executable: p_flags & PF_X != 0,
            });
        }

        // Debug sections.
        let mut debug = DebugInfo::new();
        let find = |name: &str| -> Option<&RawSection> { sections.iter().find(|s| s.name == name) };
        if let Some(s) = find(SEC_LINES) {
            let (files, lines) = DebugInfo::decode_lines(&s.data)?;
            debug.files = files;
            debug.lines = lines;
        }
        if let Some(s) = find(SEC_FUNCS) {
            debug.funcs = DebugInfo::decode_funcs(&s.data)?;
        }
        if let Some(s) = find(SEC_ISAMAP) {
            debug.isa_map = DebugInfo::decode_isamap(&s.data)?;
        }

        if ehdr.flags > 255 {
            return Err(ElfError::Malformed("entry isa out of range"));
        }
        Ok(Executable { entry: ehdr.entry, entry_isa: ehdr.flags as u8, segments, debug })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::debuginfo::{FuncEntry, LineEntry};

    fn sample_exec() -> Executable {
        let mut e = Executable::new();
        e.entry = 0x0001_0000;
        e.entry_isa = 2;
        e.segments = vec![
            Segment::new(0x0001_0000, vec![1, 2, 3, 4, 5, 6, 7, 8], true),
            Segment { addr: 0x0008_0000, data: vec![0xAA; 16], mem_size: 64, executable: false },
        ];
        e.debug.files = vec!["main.s".into()];
        e.debug.lines = vec![LineEntry { addr: 0x0001_0000, file: 0, line: 5 }];
        e.debug.funcs =
            vec![FuncEntry { name: "main".into(), start: 0x0001_0000, end: 0x0001_0008, isa: 2 }];
        e.debug.isa_map = vec![(0x0001_0000, 2)];
        e
    }

    #[test]
    fn roundtrip() {
        let e = sample_exec();
        let back = Executable::from_bytes(&e.to_bytes()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn bss_excess_survives() {
        let e = sample_exec();
        let back = Executable::from_bytes(&e.to_bytes()).unwrap();
        assert_eq!(back.segments[1].mem_size, 64);
        assert_eq!(back.segments[1].data.len(), 16);
        assert!(!back.segments[1].executable);
        assert!(back.segments[0].executable);
    }

    #[test]
    fn entry_isa_carried_in_flags() {
        let e = sample_exec();
        let bytes = e.to_bytes();
        // e_flags at offset 36.
        assert_eq!(u32::from_le_bytes(bytes[36..40].try_into().unwrap()), 2);
        assert_eq!(Executable::from_bytes(&bytes).unwrap().entry_isa, 2);
    }

    #[test]
    fn object_bytes_rejected_as_executable() {
        let obj = crate::Object::new().to_bytes();
        assert!(matches!(Executable::from_bytes(&obj), Err(ElfError::WrongType { .. })));
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = sample_exec().to_bytes();
        for len in 0..bytes.len() {
            let _ = Executable::from_bytes(&bytes[..len]);
        }
    }

    #[test]
    fn empty_executable_roundtrips() {
        let e = Executable::new();
        assert_eq!(Executable::from_bytes(&e.to_bytes()).unwrap(), e);
    }
}
