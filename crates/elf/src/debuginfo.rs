//! KAHRISMA debug metadata stored in custom ELF sections.
//!
//! Paper §V-C: for debugging and statistics the simulator maps an
//! instruction address to the corresponding assembler line, source line, or
//! function name; the assembler stores the line map in a custom ELF data
//! section and the function start/end addresses live in the ELF file. §V-D
//! additionally requires knowing which ISA each address range is encoded in.

use crate::error::ElfError;
use crate::io::{Reader, StrTab, Writer, strtab_get};

/// One address → source-line mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineEntry {
    /// Instruction address.
    pub addr: u32,
    /// Index into [`DebugInfo::files`].
    pub file: u16,
    /// 1-based line number.
    pub line: u32,
}

/// One function's address range, name, and ISA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncEntry {
    /// Function name (the linker-visible symbol).
    pub name: String,
    /// Start address (inclusive).
    pub start: u32,
    /// End address (exclusive).
    pub end: u32,
    /// ISA identifier the function is encoded in.
    pub isa: u8,
}

/// Debug metadata of an object file or executable.
///
/// Addresses in an [`Object`](crate::Object) are section-relative offsets
/// into `.text`; the linker rebases them to absolute addresses in the
/// [`Executable`](crate::Executable).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DebugInfo {
    /// Source-file names referenced by [`LineEntry::file`].
    pub files: Vec<String>,
    /// Address → line map, sorted by address.
    pub lines: Vec<LineEntry>,
    /// Function table.
    pub funcs: Vec<FuncEntry>,
    /// ISA map: `(start_addr, isa_id)` entries sorted by address; each entry
    /// covers addresses up to the next entry's start.
    pub isa_map: Vec<(u32, u8)>,
}

impl DebugInfo {
    /// Creates empty debug info.
    #[must_use]
    pub fn new() -> Self {
        DebugInfo::default()
    }

    /// Returns `(file_name, line)` for the given address, using the closest
    /// preceding line entry, as the paper's simulator does for error reports.
    #[must_use]
    pub fn line_for_addr(&self, addr: u32) -> Option<(&str, u32)> {
        let idx = match self.lines.binary_search_by_key(&addr, |e| e.addr) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let e = &self.lines[idx];
        self.files.get(usize::from(e.file)).map(|f| (f.as_str(), e.line))
    }

    /// Returns the function covering the given address.
    #[must_use]
    pub fn func_for_addr(&self, addr: u32) -> Option<&FuncEntry> {
        self.funcs.iter().find(|f| f.start <= addr && addr < f.end)
    }

    /// Returns the ISA id active at the given address according to the ISA
    /// map, if the address is covered.
    #[must_use]
    pub fn isa_for_addr(&self, addr: u32) -> Option<u8> {
        let idx = match self.isa_map.binary_search_by_key(&addr, |e| e.0) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        Some(self.isa_map[idx].1)
    }

    /// Rebases all addresses by `delta` (used by the linker when placing a
    /// section at its final address).
    pub fn rebase(&mut self, delta: u32) {
        for l in &mut self.lines {
            l.addr = l.addr.wrapping_add(delta);
        }
        for f in &mut self.funcs {
            f.start = f.start.wrapping_add(delta);
            f.end = f.end.wrapping_add(delta);
        }
        for e in &mut self.isa_map {
            e.0 = e.0.wrapping_add(delta);
        }
    }

    /// Merges `other` (already rebased) into `self`, remapping file indices.
    pub fn merge(&mut self, other: &DebugInfo) {
        let mut file_map = Vec::with_capacity(other.files.len());
        for f in &other.files {
            let idx = match self.files.iter().position(|x| x == f) {
                Some(i) => i,
                None => {
                    self.files.push(f.clone());
                    self.files.len() - 1
                }
            };
            file_map.push(idx as u16);
        }
        for l in &other.lines {
            self.lines.push(LineEntry {
                addr: l.addr,
                file: file_map[usize::from(l.file)],
                line: l.line,
            });
        }
        self.funcs.extend(other.funcs.iter().cloned());
        self.isa_map.extend(other.isa_map.iter().copied());
        self.normalize();
    }

    /// Sorts the maps by address (required for the binary searches).
    pub fn normalize(&mut self) {
        self.lines.sort_by_key(|e| e.addr);
        self.funcs.sort_by_key(|f| f.start);
        self.isa_map.sort_by_key(|e| e.0);
        self.isa_map.dedup();
    }

    pub(crate) fn encode_lines(&self) -> Vec<u8> {
        let mut w = Writer::new();
        let mut strtab = StrTab::new();
        let offs: Vec<u32> = self.files.iter().map(|f| strtab.add(f)).collect();
        let strbytes = strtab.into_bytes();
        w.u32(self.files.len() as u32);
        w.u32(self.lines.len() as u32);
        w.u32(strbytes.len() as u32);
        for off in offs {
            w.u32(off);
        }
        for l in &self.lines {
            w.u32(l.addr);
            w.u16(l.file);
            w.u16(0);
            w.u32(l.line);
        }
        w.raw(&strbytes);
        w.into_bytes()
    }

    pub(crate) fn decode_lines(bytes: &[u8]) -> Result<(Vec<String>, Vec<LineEntry>), ElfError> {
        let mut r = Reader::new(bytes);
        let nfiles = r.u32("line file count")? as usize;
        let nlines = r.u32("line count")? as usize;
        let strlen = r.u32("line strtab size")? as usize;
        let mut offs = Vec::with_capacity(nfiles);
        for _ in 0..nfiles {
            offs.push(r.u32("file name offset")?);
        }
        let mut lines = Vec::with_capacity(nlines);
        for _ in 0..nlines {
            let addr = r.u32("line addr")?;
            let file = r.u16("line file")?;
            let _pad = r.u16("line pad")?;
            let line = r.u32("line number")?;
            lines.push(LineEntry { addr, file, line });
        }
        let strbytes = r.take(strlen, "line strtab")?;
        let mut files = Vec::with_capacity(nfiles);
        for off in offs {
            files.push(strtab_get(strbytes, off)?);
        }
        Ok((files, lines))
    }

    pub(crate) fn encode_funcs(&self) -> Vec<u8> {
        let mut w = Writer::new();
        let mut strtab = StrTab::new();
        let offs: Vec<u32> = self.funcs.iter().map(|f| strtab.add(&f.name)).collect();
        let strbytes = strtab.into_bytes();
        w.u32(self.funcs.len() as u32);
        w.u32(strbytes.len() as u32);
        for (f, off) in self.funcs.iter().zip(offs) {
            w.u32(off);
            w.u32(f.start);
            w.u32(f.end);
            w.u32(u32::from(f.isa));
        }
        w.raw(&strbytes);
        w.into_bytes()
    }

    pub(crate) fn decode_funcs(bytes: &[u8]) -> Result<Vec<FuncEntry>, ElfError> {
        let mut r = Reader::new(bytes);
        let n = r.u32("func count")? as usize;
        let strlen = r.u32("func strtab size")? as usize;
        let mut raw = Vec::with_capacity(n);
        for _ in 0..n {
            let name_off = r.u32("func name")?;
            let start = r.u32("func start")?;
            let end = r.u32("func end")?;
            let isa = r.u32("func isa")?;
            if isa > 255 {
                return Err(ElfError::Malformed("function isa id out of range"));
            }
            raw.push((name_off, start, end, isa as u8));
        }
        let strbytes = r.take(strlen, "func strtab")?;
        raw.into_iter()
            .map(|(off, start, end, isa)| {
                Ok(FuncEntry { name: strtab_get(strbytes, off)?, start, end, isa })
            })
            .collect()
    }

    pub(crate) fn encode_isamap(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(self.isa_map.len() as u32);
        for &(addr, isa) in &self.isa_map {
            w.u32(addr);
            w.u32(u32::from(isa));
        }
        w.into_bytes()
    }

    pub(crate) fn decode_isamap(bytes: &[u8]) -> Result<Vec<(u32, u8)>, ElfError> {
        let mut r = Reader::new(bytes);
        let n = r.u32("isa map count")? as usize;
        let mut map = Vec::with_capacity(n);
        for _ in 0..n {
            let addr = r.u32("isa map addr")?;
            let isa = r.u32("isa map id")?;
            if isa > 255 {
                return Err(ElfError::Malformed("isa map id out of range"));
            }
            map.push((addr, isa as u8));
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DebugInfo {
        DebugInfo {
            files: vec!["a.s".into(), "b.s".into()],
            lines: vec![
                LineEntry { addr: 0x100, file: 0, line: 10 },
                LineEntry { addr: 0x104, file: 0, line: 11 },
                LineEntry { addr: 0x200, file: 1, line: 3 },
            ],
            funcs: vec![
                FuncEntry { name: "main".into(), start: 0x100, end: 0x200, isa: 0 },
                FuncEntry { name: "dct".into(), start: 0x200, end: 0x300, isa: 2 },
            ],
            isa_map: vec![(0x100, 0), (0x200, 2)],
        }
    }

    #[test]
    fn line_lookup_uses_preceding_entry() {
        let d = sample();
        assert_eq!(d.line_for_addr(0x100), Some(("a.s", 10)));
        assert_eq!(d.line_for_addr(0x106), Some(("a.s", 11)));
        assert_eq!(d.line_for_addr(0x300), Some(("b.s", 3)));
        assert_eq!(d.line_for_addr(0x50), None);
    }

    #[test]
    fn func_and_isa_lookup() {
        let d = sample();
        assert_eq!(d.func_for_addr(0x150).unwrap().name, "main");
        assert_eq!(d.func_for_addr(0x200).unwrap().name, "dct");
        assert!(d.func_for_addr(0x300).is_none());
        assert_eq!(d.isa_for_addr(0x1FF), Some(0));
        assert_eq!(d.isa_for_addr(0x200), Some(2));
        assert_eq!(d.isa_for_addr(0x0), None);
    }

    #[test]
    fn lines_roundtrip() {
        let d = sample();
        let bytes = d.encode_lines();
        let (files, lines) = DebugInfo::decode_lines(&bytes).unwrap();
        assert_eq!(files, d.files);
        assert_eq!(lines, d.lines);
    }

    #[test]
    fn funcs_roundtrip() {
        let d = sample();
        let bytes = d.encode_funcs();
        assert_eq!(DebugInfo::decode_funcs(&bytes).unwrap(), d.funcs);
    }

    #[test]
    fn isamap_roundtrip() {
        let d = sample();
        let bytes = d.encode_isamap();
        assert_eq!(DebugInfo::decode_isamap(&bytes).unwrap(), d.isa_map);
    }

    #[test]
    fn rebase_shifts_everything() {
        let mut d = sample();
        d.rebase(0x1000);
        assert_eq!(d.lines[0].addr, 0x1100);
        assert_eq!(d.funcs[0].start, 0x1100);
        assert_eq!(d.isa_map[1].0, 0x1200);
    }

    #[test]
    fn merge_remaps_file_indices() {
        let mut a = DebugInfo {
            files: vec!["a.s".into()],
            lines: vec![LineEntry { addr: 0, file: 0, line: 1 }],
            ..DebugInfo::default()
        };
        let b = DebugInfo {
            files: vec!["b.s".into(), "a.s".into()],
            lines: vec![
                LineEntry { addr: 4, file: 0, line: 2 },
                LineEntry { addr: 8, file: 1, line: 3 },
            ],
            ..DebugInfo::default()
        };
        a.merge(&b);
        assert_eq!(a.files, vec!["a.s".to_string(), "b.s".to_string()]);
        assert_eq!(a.line_for_addr(4), Some(("b.s", 2)));
        assert_eq!(a.line_for_addr(8), Some(("a.s", 3)));
    }

    #[test]
    fn decode_rejects_truncation() {
        let d = sample();
        let bytes = d.encode_funcs();
        assert!(DebugInfo::decode_funcs(&bytes[..bytes.len() - 1]).is_err());
        let bytes = d.encode_lines();
        assert!(DebugInfo::decode_lines(&bytes[..8]).is_err());
    }
}
