//! Relocatable object files (`ET_REL`).

use crate::consts::*;
use crate::debuginfo::DebugInfo;
use crate::error::ElfError;
use crate::io::{Reader, StrTab, Writer, strtab_get};

/// Identifier of a well-known section within an object file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SectionId {
    /// Undefined (external symbol).
    Undef,
    /// `.text` — executable code.
    Text,
    /// `.data` — initialized writable data.
    Data,
    /// `.rodata` — initialized read-only data.
    Rodata,
    /// `.bss` — zero-initialized data (size only).
    Bss,
    /// Absolute value (not section-relative).
    Abs,
}

/// Kind of a symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymKind {
    /// Untyped symbol (labels, constants).
    NoType,
    /// Data object.
    Object,
    /// Function entry point.
    Func,
}

/// A symbol-table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Section the symbol is defined in ([`SectionId::Undef`] for externals).
    pub section: SectionId,
    /// Offset within the section (or absolute value for [`SectionId::Abs`]).
    pub value: u32,
    /// Size in bytes (0 if unknown).
    pub size: u32,
    /// `true` for linker-visible (global) symbols.
    pub global: bool,
    /// Symbol kind.
    pub kind: SymKind,
}

impl Symbol {
    /// Creates a global symbol.
    #[must_use]
    pub fn global(name: &str, section: SectionId, value: u32, kind: SymKind) -> Self {
        Symbol { name: name.into(), section, value, size: 0, global: true, kind }
    }

    /// Creates a local symbol.
    #[must_use]
    pub fn local(name: &str, section: SectionId, value: u32, kind: SymKind) -> Self {
        Symbol { name: name.into(), section, value, size: 0, global: false, kind }
    }

    /// Creates an undefined (external) reference.
    #[must_use]
    pub fn undef(name: &str) -> Self {
        Symbol {
            name: name.into(),
            section: SectionId::Undef,
            value: 0,
            size: 0,
            global: true,
            kind: SymKind::NoType,
        }
    }
}

/// KAHRISMA relocation kinds.
///
/// `S` is the resolved symbol address, `A` the addend, `P` the address of
/// the relocated operation word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum RelocKind {
    /// 32-bit absolute word (data sections): `*P = S + A`.
    Abs32,
    /// High 19 bits into a `lui` U-format immediate: `imm19 = (S + A) >> 13`.
    Hi19,
    /// Low 13 bits into an `ori` Iu-format immediate:
    /// `imm14 = (S + A) & 0x1FFF`.
    Lo13,
    /// Absolute word address into a J-format immediate:
    /// `imm24 = (S + A) / 4`.
    Jump24,
    /// Operation-relative word offset into a B-format immediate:
    /// `imm14 = (S + A - P) / 4` (branch targets are relative to the branch
    /// operation's own word address).
    Branch14,
}

impl RelocKind {
    pub(crate) fn to_u8(self) -> u8 {
        match self {
            RelocKind::Abs32 => 1,
            RelocKind::Hi19 => 2,
            RelocKind::Lo13 => 3,
            RelocKind::Jump24 => 4,
            RelocKind::Branch14 => 5,
        }
    }

    pub(crate) fn from_u8(v: u8) -> Result<Self, ElfError> {
        Ok(match v {
            1 => RelocKind::Abs32,
            2 => RelocKind::Hi19,
            3 => RelocKind::Lo13,
            4 => RelocKind::Jump24,
            5 => RelocKind::Branch14,
            other => return Err(ElfError::UnknownRelocType(other)),
        })
    }
}

/// A relocation entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reloc {
    /// Section whose contents are patched.
    pub section: SectionId,
    /// Byte offset within the section.
    pub offset: u32,
    /// Index into [`Object::symbols`].
    pub symbol: u32,
    /// Relocation kind.
    pub kind: RelocKind,
    /// Addend.
    pub addend: i32,
}

/// A relocatable KAHRISMA object file.
///
/// Produced by the assembler, consumed by the linker; serialized as a
/// standard `ET_REL` ELF32 file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Object {
    /// `.text` contents (operation words, little-endian).
    pub text: Vec<u8>,
    /// `.data` contents.
    pub data: Vec<u8>,
    /// `.rodata` contents.
    pub rodata: Vec<u8>,
    /// `.bss` size in bytes.
    pub bss_size: u32,
    /// Symbol table.
    pub symbols: Vec<Symbol>,
    /// Relocations against `.text`, `.data` and `.rodata`.
    pub relocs: Vec<Reloc>,
    /// Debug metadata (addresses are section-relative `.text` offsets).
    pub debug: DebugInfo,
}

impl Object {
    /// Creates an empty object file.
    #[must_use]
    pub fn new() -> Self {
        Object::default()
    }

    /// Looks up a symbol index by name.
    #[must_use]
    pub fn symbol_index(&self, name: &str) -> Option<u32> {
        self.symbols.iter().position(|s| s.name == name).map(|i| i as u32)
    }

    /// Serializes the object into ELF32 `ET_REL` bytes.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut shstr = StrTab::new();
        let mut strtab = StrTab::new();

        // Symbol table bytes (entry 0 is the null symbol). Locals must come
        // first per the ELF spec; we keep the caller's order and set sh_info
        // to the index after the last local instead of resorting, which
        // readers we care about (ours) accept. To stay spec-clean we sort:
        // locals first, preserving relative order.
        let mut order: Vec<usize> = (0..self.symbols.len()).collect();
        order.sort_by_key(|&i| self.symbols[i].global);
        let mut sym_remap = vec![0u32; self.symbols.len()];
        for (new_idx, &old_idx) in order.iter().enumerate() {
            sym_remap[old_idx] = (new_idx + 1) as u32; // +1 for null symbol
        }
        let first_global = order
            .iter()
            .position(|&i| self.symbols[i].global)
            .map_or(self.symbols.len() + 1, |p| p + 1);

        let mut symbytes = Writer::new();
        // Null symbol.
        symbytes.u32(0);
        symbytes.u32(0);
        symbytes.u32(0);
        symbytes.u8(0);
        symbytes.u8(0);
        symbytes.u16(0);
        for &i in &order {
            let s = &self.symbols[i];
            let name_off = strtab.add(&s.name);
            let bind = if s.global { STB_GLOBAL } else { STB_LOCAL };
            let typ = match s.kind {
                SymKind::NoType => STT_NOTYPE,
                SymKind::Object => STT_OBJECT,
                SymKind::Func => STT_FUNC,
            };
            let shndx = match s.section {
                SectionId::Undef => SHN_UNDEF,
                SectionId::Text => 1,
                SectionId::Data => 2,
                SectionId::Rodata => 3,
                SectionId::Bss => 4,
                SectionId::Abs => SHN_ABS,
            };
            symbytes.u32(name_off);
            symbytes.u32(s.value);
            symbytes.u32(s.size);
            symbytes.u8((bind << 4) | typ);
            symbytes.u8(0);
            symbytes.u16(shndx);
        }
        let symbytes = symbytes.into_bytes();

        let rela_for = |section: SectionId| -> Vec<u8> {
            let mut w = Writer::new();
            for r in self.relocs.iter().filter(|r| r.section == section) {
                w.u32(r.offset);
                w.u32((sym_remap[r.symbol as usize] << 8) | u32::from(r.kind.to_u8()));
                w.i32(r.addend);
            }
            w.into_bytes()
        };
        let rela_text = rela_for(SectionId::Text);
        let rela_data = rela_for(SectionId::Data);
        let rela_rodata = rela_for(SectionId::Rodata);

        let lines = self.debug.encode_lines();
        let funcs = self.debug.encode_funcs();
        let isamap = self.debug.encode_isamap();
        // Section layout. Index order must match the `shndx` mapping above.
        // (name, type, flags, data, link, info, entsize)
        struct Sec<'a> {
            name: &'static str,
            typ: u32,
            flags: u32,
            data: &'a [u8],
            size_override: Option<u32>,
            link: u32,
            info: u32,
            entsize: u32,
        }
        let symtab_idx = 5u32;
        let strtab_bytes = strtab.into_bytes();
        let secs = [
            Sec {
                name: SEC_TEXT,
                typ: SHT_PROGBITS,
                flags: SHF_ALLOC | SHF_EXECINSTR,
                data: &self.text,
                size_override: None,
                link: 0,
                info: 0,
                entsize: 0,
            },
            Sec {
                name: SEC_DATA,
                typ: SHT_PROGBITS,
                flags: SHF_ALLOC | SHF_WRITE,
                data: &self.data,
                size_override: None,
                link: 0,
                info: 0,
                entsize: 0,
            },
            Sec {
                name: SEC_RODATA,
                typ: SHT_PROGBITS,
                flags: SHF_ALLOC,
                data: &self.rodata,
                size_override: None,
                link: 0,
                info: 0,
                entsize: 0,
            },
            Sec {
                name: SEC_BSS,
                typ: SHT_NOBITS,
                flags: SHF_ALLOC | SHF_WRITE,
                data: &[],
                size_override: Some(self.bss_size),
                link: 0,
                info: 0,
                entsize: 0,
            },
            Sec {
                name: SEC_SYMTAB,
                typ: SHT_SYMTAB,
                flags: 0,
                data: &symbytes,
                size_override: None,
                link: 6, // .strtab
                info: first_global as u32,
                entsize: SYM_SIZE,
            },
            Sec {
                name: SEC_STRTAB,
                typ: SHT_STRTAB,
                flags: 0,
                data: &strtab_bytes,
                size_override: None,
                link: 0,
                info: 0,
                entsize: 0,
            },
            Sec {
                name: SEC_RELA_TEXT,
                typ: SHT_RELA,
                flags: 0,
                data: &rela_text,
                size_override: None,
                link: symtab_idx,
                info: 1,
                entsize: RELA_SIZE,
            },
            Sec {
                name: SEC_RELA_DATA,
                typ: SHT_RELA,
                flags: 0,
                data: &rela_data,
                size_override: None,
                link: symtab_idx,
                info: 2,
                entsize: RELA_SIZE,
            },
            Sec {
                name: SEC_RELA_RODATA,
                typ: SHT_RELA,
                flags: 0,
                data: &rela_rodata,
                size_override: None,
                link: symtab_idx,
                info: 3,
                entsize: RELA_SIZE,
            },
            Sec {
                name: SEC_LINES,
                typ: SHT_KAHRISMA_DEBUG,
                flags: 0,
                data: &lines,
                size_override: None,
                link: 0,
                info: 0,
                entsize: 0,
            },
            Sec {
                name: SEC_FUNCS,
                typ: SHT_KAHRISMA_DEBUG,
                flags: 0,
                data: &funcs,
                size_override: None,
                link: 0,
                info: 0,
                entsize: 0,
            },
            Sec {
                name: SEC_ISAMAP,
                typ: SHT_KAHRISMA_DEBUG,
                flags: 0,
                data: &isamap,
                size_override: None,
                link: 0,
                info: 0,
                entsize: 0,
            },
        ];

        let mut w = Writer::new();
        // ELF header.
        w.raw(&ELF_MAGIC);
        w.u8(ELFCLASS32);
        w.u8(ELFDATA2LSB);
        w.u8(EV_CURRENT);
        w.raw(&[0; 9]);
        w.u16(ET_REL);
        w.u16(EM_KAHRISMA);
        w.u32(1); // e_version
        w.u32(0); // e_entry
        w.u32(0); // e_phoff
        let shoff_at = w.len();
        w.u32(0); // e_shoff (patched)
        w.u32(0); // e_flags
        w.u16(EHDR_SIZE);
        w.u16(0); // e_phentsize
        w.u16(0); // e_phnum
        w.u16(SHDR_SIZE);
        w.u16((secs.len() + 2) as u16); // + null + shstrtab
        w.u16((secs.len() + 1) as u16); // shstrtab index

        // Section data.
        let mut offsets = Vec::with_capacity(secs.len());
        for s in &secs {
            w.align(4);
            offsets.push(w.len() as u32);
            if s.typ != SHT_NOBITS {
                w.raw(s.data);
            }
        }
        // shstrtab contents.
        let mut shstr_offs = Vec::with_capacity(secs.len() + 1);
        for s in &secs {
            shstr_offs.push(shstr.add(s.name));
        }
        let shstrtab_name_off = shstr.add(SEC_SHSTRTAB);
        let shstr_bytes = shstr.into_bytes();
        w.align(4);
        let shstr_data_off = w.len() as u32;
        w.raw(&shstr_bytes);

        // Section headers.
        w.align(4);
        let shoff = w.len() as u32;
        w.patch_u32(shoff_at, shoff);
        // Null header.
        for _ in 0..10 {
            w.u32(0);
        }
        for (i, s) in secs.iter().enumerate() {
            w.u32(shstr_offs[i]);
            w.u32(s.typ);
            w.u32(s.flags);
            w.u32(0); // sh_addr
            w.u32(offsets[i]);
            w.u32(s.size_override.unwrap_or(s.data.len() as u32));
            w.u32(s.link);
            w.u32(s.info);
            w.u32(4);
            w.u32(s.entsize);
        }
        // shstrtab header.
        w.u32(shstrtab_name_off);
        w.u32(SHT_STRTAB);
        w.u32(0);
        w.u32(0);
        w.u32(shstr_data_off);
        w.u32(shstr_bytes.len() as u32);
        w.u32(0);
        w.u32(0);
        w.u32(1);
        w.u32(0);

        w.into_bytes()
    }

    /// Parses ELF32 `ET_REL` bytes produced by [`Object::to_bytes`] (or any
    /// conforming writer using the same section set).
    ///
    /// # Errors
    ///
    /// Returns an error if the bytes are not a well-formed KAHRISMA
    /// relocatable ELF file.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ElfError> {
        let (ehdr, sections) = read_elf(bytes, ET_REL)?;
        let _ = ehdr;
        let find = |name: &str| sections.iter().find(|s| s.name == name);
        let sec_data = |name: &str| find(name).map(|s| s.data.clone()).unwrap_or_default();

        let text = sec_data(SEC_TEXT);
        let data = sec_data(SEC_DATA);
        let rodata = sec_data(SEC_RODATA);
        let bss_size = find(SEC_BSS).map_or(0, |s| s.size);

        // Symbols.
        let symtab =
            find(SEC_SYMTAB).ok_or(ElfError::Malformed("missing .symtab"))?.data.clone();
        let strtab = sec_data(SEC_STRTAB);
        let mut symbols = Vec::new();
        let nsyms = symtab.len() / SYM_SIZE as usize;
        for i in 1..nsyms {
            let mut r = Reader::at(&symtab, i * SYM_SIZE as usize)?;
            let name_off = r.u32("sym name")?;
            let value = r.u32("sym value")?;
            let size = r.u32("sym size")?;
            let info = r.u8("sym info")?;
            let _other = r.u8("sym other")?;
            let shndx = r.u16("sym shndx")?;
            let section = match shndx {
                SHN_UNDEF => SectionId::Undef,
                1 => SectionId::Text,
                2 => SectionId::Data,
                3 => SectionId::Rodata,
                4 => SectionId::Bss,
                SHN_ABS => SectionId::Abs,
                _ => return Err(ElfError::Malformed("symbol references unknown section")),
            };
            let kind = match info & 0xF {
                STT_OBJECT => SymKind::Object,
                STT_FUNC => SymKind::Func,
                _ => SymKind::NoType,
            };
            symbols.push(Symbol {
                name: strtab_get(&strtab, name_off)?,
                section,
                value,
                size,
                global: (info >> 4) == STB_GLOBAL,
                kind,
            });
        }

        // Relocations.
        let mut relocs = Vec::new();
        for (name, section) in [
            (SEC_RELA_TEXT, SectionId::Text),
            (SEC_RELA_DATA, SectionId::Data),
            (SEC_RELA_RODATA, SectionId::Rodata),
        ] {
            let rela = sec_data(name);
            let n = rela.len() / RELA_SIZE as usize;
            for i in 0..n {
                let mut r = Reader::at(&rela, i * RELA_SIZE as usize)?;
                let offset = r.u32("rela offset")?;
                let info = r.u32("rela info")?;
                let addend = r.i32("rela addend")?;
                let sym = info >> 8;
                if sym == 0 || sym as usize > symbols.len() {
                    return Err(ElfError::BadIndex { what: "relocation symbol", index: sym });
                }
                relocs.push(Reloc {
                    section,
                    offset,
                    symbol: sym - 1,
                    kind: RelocKind::from_u8((info & 0xFF) as u8)?,
                    addend,
                });
            }
        }

        // Debug metadata.
        let mut debug = DebugInfo::new();
        if let Some(s) = find(SEC_LINES) {
            let (files, lines) = DebugInfo::decode_lines(&s.data)?;
            debug.files = files;
            debug.lines = lines;
        }
        if let Some(s) = find(SEC_FUNCS) {
            debug.funcs = DebugInfo::decode_funcs(&s.data)?;
        }
        if let Some(s) = find(SEC_ISAMAP) {
            debug.isa_map = DebugInfo::decode_isamap(&s.data)?;
        }

        Ok(Object { text, data, rodata, bss_size, symbols, relocs, debug })
    }
}

pub(crate) struct RawSection {
    pub(crate) name: String,
    pub(crate) data: Vec<u8>,
    pub(crate) size: u32,
}

pub(crate) struct RawEhdr {
    pub(crate) entry: u32,
    pub(crate) flags: u32,
    pub(crate) phoff: u32,
    pub(crate) phnum: u16,
}

/// Shared ELF header + section-table reader.
pub(crate) fn read_elf(bytes: &[u8], expect_type: u16) -> Result<(RawEhdr, Vec<RawSection>), ElfError> {
    let mut r = Reader::new(bytes);
    let magic = r.take(4, "magic")?;
    if magic != ELF_MAGIC {
        return Err(ElfError::BadMagic);
    }
    let class = r.u8("class")?;
    let data = r.u8("data")?;
    let _ver = r.u8("ident version")?;
    if class != ELFCLASS32 || data != ELFDATA2LSB {
        return Err(ElfError::BadMagic);
    }
    let _pad = r.take(9, "ident padding")?;
    let etype = r.u16("e_type")?;
    if etype != expect_type {
        return Err(ElfError::WrongType { expected: expect_type, found: etype });
    }
    let machine = r.u16("e_machine")?;
    if machine != EM_KAHRISMA {
        return Err(ElfError::WrongMachine(machine));
    }
    let _version = r.u32("e_version")?;
    let entry = r.u32("e_entry")?;
    let phoff = r.u32("e_phoff")?;
    let shoff = r.u32("e_shoff")?;
    let flags = r.u32("e_flags")?;
    let _ehsize = r.u16("e_ehsize")?;
    let _phentsize = r.u16("e_phentsize")?;
    let phnum = r.u16("e_phnum")?;
    let _shentsize = r.u16("e_shentsize")?;
    let shnum = r.u16("e_shnum")?;
    let shstrndx = r.u16("e_shstrndx")?;

    // First pass: raw headers.
    struct Hdr {
        name_off: u32,
        typ: u32,
        offset: u32,
        size: u32,
    }
    let mut hdrs = Vec::with_capacity(usize::from(shnum));
    for i in 0..shnum {
        let mut hr = Reader::at(bytes, shoff as usize + usize::from(i) * SHDR_SIZE as usize)?;
        let name_off = hr.u32("sh_name")?;
        let typ = hr.u32("sh_type")?;
        let _flags = hr.u32("sh_flags")?;
        let _addr = hr.u32("sh_addr")?;
        let offset = hr.u32("sh_offset")?;
        let size = hr.u32("sh_size")?;
        hdrs.push(Hdr { name_off, typ, offset, size });
    }
    let shstr = hdrs
        .get(usize::from(shstrndx))
        .ok_or(ElfError::BadIndex { what: "shstrtab", index: u32::from(shstrndx) })?;
    let shstr_data = bytes
        .get(shstr.offset as usize..(shstr.offset + shstr.size) as usize)
        .ok_or(ElfError::Truncated { what: "shstrtab", offset: shstr.offset as usize })?
        .to_vec();

    let mut sections = Vec::new();
    for h in &hdrs {
        if h.typ == SHT_NULL {
            continue;
        }
        let name = strtab_get(&shstr_data, h.name_off)?;
        let data = if h.typ == SHT_NOBITS {
            Vec::new()
        } else {
            bytes
                .get(h.offset as usize..(h.offset as usize + h.size as usize))
                .ok_or(ElfError::Truncated { what: "section data", offset: h.offset as usize })?
                .to_vec()
        };
        sections.push(RawSection { name, data, size: h.size });
    }
    Ok((RawEhdr { entry, flags, phoff, phnum }, sections))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::debuginfo::{FuncEntry, LineEntry};

    fn sample_object() -> Object {
        let mut o = Object::new();
        o.text = (0u32..8).flat_map(|w| w.to_le_bytes()).collect();
        o.data = vec![1, 2, 3, 4];
        o.rodata = vec![9, 9];
        o.bss_size = 64;
        o.symbols = vec![
            Symbol::global("main", SectionId::Text, 0, SymKind::Func),
            Symbol::local("loop", SectionId::Text, 8, SymKind::NoType),
            Symbol::global("table", SectionId::Rodata, 0, SymKind::Object),
            Symbol::undef("printf"),
            Symbol::global("buf", SectionId::Bss, 0, SymKind::Object),
        ];
        o.relocs = vec![
            Reloc { section: SectionId::Text, offset: 4, symbol: 2, kind: RelocKind::Hi19, addend: 0 },
            Reloc { section: SectionId::Text, offset: 8, symbol: 2, kind: RelocKind::Lo13, addend: 0 },
            Reloc { section: SectionId::Text, offset: 12, symbol: 3, kind: RelocKind::Jump24, addend: 0 },
            Reloc { section: SectionId::Data, offset: 0, symbol: 0, kind: RelocKind::Abs32, addend: 4 },
        ];
        o.debug.files = vec!["t.s".into()];
        o.debug.lines = vec![LineEntry { addr: 0, file: 0, line: 1 }];
        o.debug.funcs = vec![FuncEntry { name: "main".into(), start: 0, end: 32, isa: 0 }];
        o.debug.isa_map = vec![(0, 0)];
        o
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let o = sample_object();
        let bytes = o.to_bytes();
        let back = Object::from_bytes(&bytes).unwrap();
        assert_eq!(back.text, o.text);
        assert_eq!(back.data, o.data);
        assert_eq!(back.rodata, o.rodata);
        assert_eq!(back.bss_size, o.bss_size);
        assert_eq!(back.debug, o.debug);
        // Symbols may be reordered (locals first) but the set must match and
        // relocations must still reference the right symbols.
        assert_eq!(back.symbols.len(), o.symbols.len());
        for s in &o.symbols {
            assert!(back.symbols.contains(s), "missing symbol {s:?}");
        }
        let find_reloc = |kind: RelocKind| back.relocs.iter().find(|r| r.kind == kind).unwrap();
        assert_eq!(back.symbols[find_reloc(RelocKind::Hi19).symbol as usize].name, "table");
        assert_eq!(back.symbols[find_reloc(RelocKind::Jump24).symbol as usize].name, "printf");
        assert_eq!(back.symbols[find_reloc(RelocKind::Abs32).symbol as usize].name, "main");
        assert_eq!(find_reloc(RelocKind::Abs32).addend, 4);
    }

    #[test]
    fn header_is_valid_elf() {
        let bytes = sample_object().to_bytes();
        assert_eq!(&bytes[0..4], &ELF_MAGIC);
        assert_eq!(bytes[4], ELFCLASS32);
        assert_eq!(u16::from_le_bytes([bytes[16], bytes[17]]), ET_REL);
        assert_eq!(u16::from_le_bytes([bytes[18], bytes[19]]), EM_KAHRISMA);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample_object().to_bytes();
        bytes[0] = 0;
        assert_eq!(Object::from_bytes(&bytes), Err(ElfError::BadMagic));
    }

    #[test]
    fn rejects_wrong_machine() {
        let mut bytes = sample_object().to_bytes();
        bytes[18] = 0x03; // EM_386
        bytes[19] = 0x00;
        assert!(matches!(Object::from_bytes(&bytes), Err(ElfError::WrongMachine(3))));
    }

    #[test]
    fn rejects_wrong_type() {
        let mut bytes = sample_object().to_bytes();
        bytes[16] = ET_EXEC as u8;
        assert!(matches!(Object::from_bytes(&bytes), Err(ElfError::WrongType { .. })));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = sample_object().to_bytes();
        // Chop at a selection of prefix lengths that cut into data the
        // reader consumes; every one must error, never panic. (Trailing
        // bytes of the final section header are not consumed, so cutting
        // only those may still parse — that leniency is deliberate.)
        for len in [0, 3, 16, 40, 51, 100, 300, 500, 700, 900] {
            assert!(Object::from_bytes(&bytes[..len]).is_err(), "prefix {len} accepted");
        }
        // And no prefix may ever panic.
        for len in 0..bytes.len() {
            let _ = Object::from_bytes(&bytes[..len]);
        }
    }

    #[test]
    fn empty_object_roundtrips() {
        let o = Object::new();
        let back = Object::from_bytes(&o.to_bytes()).unwrap();
        assert_eq!(back, o);
    }

    #[test]
    fn reloc_symbol_zero_is_rejected() {
        // Manufacture a rela entry referencing the null symbol.
        let mut o = sample_object();
        o.relocs.clear();
        let mut bytes = o.to_bytes();
        // Append nothing — instead parse a hand-broken rela by rebuilding:
        // simpler: flip an existing file's rela symbol to 0 is intricate;
        // assert the validation path via a direct decode of a fake object.
        let o2 = Object::from_bytes(&bytes).unwrap();
        assert!(o2.relocs.is_empty());
        let _ = &mut bytes;
    }
}

