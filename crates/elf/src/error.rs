//! Error type for ELF parsing.

use std::fmt;

/// Error produced while parsing ELF bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ElfError {
    /// The file is shorter than a structure it claims to contain.
    Truncated {
        /// What was being read.
        what: &'static str,
        /// Byte offset at which the read failed.
        offset: usize,
    },
    /// The magic bytes, class, or endianness are not ELF32 little-endian.
    BadMagic,
    /// The `e_machine` value is not the KAHRISMA machine code.
    WrongMachine(u16),
    /// The `e_type` does not match the expected file kind.
    WrongType {
        /// Expected `e_type` value.
        expected: u16,
        /// Found `e_type` value.
        found: u16,
    },
    /// A string-table reference points outside the table or at a
    /// non-terminated string.
    BadString(u32),
    /// A structurally invalid value was encountered.
    Malformed(&'static str),
    /// A relocation references an unknown relocation type.
    UnknownRelocType(u8),
    /// A symbol or relocation references an out-of-range index.
    BadIndex {
        /// What kind of index.
        what: &'static str,
        /// The offending index.
        index: u32,
    },
}

impl fmt::Display for ElfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElfError::Truncated { what, offset } => {
                write!(f, "truncated ELF file while reading {what} at offset {offset}")
            }
            ElfError::BadMagic => write!(f, "not an ELF32 little-endian file"),
            ElfError::WrongMachine(m) => write!(f, "unexpected machine type {m:#06x}"),
            ElfError::WrongType { expected, found } => {
                write!(f, "unexpected ELF type {found} (expected {expected})")
            }
            ElfError::BadString(off) => write!(f, "invalid string table reference {off}"),
            ElfError::Malformed(what) => write!(f, "malformed ELF structure: {what}"),
            ElfError::UnknownRelocType(t) => write!(f, "unknown relocation type {t}"),
            ElfError::BadIndex { what, index } => write!(f, "{what} index {index} out of range"),
        }
    }
}

impl std::error::Error for ElfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ElfError::BadMagic.to_string().contains("ELF32"));
        assert!(ElfError::Truncated { what: "header", offset: 3 }.to_string().contains("header"));
        assert!(ElfError::WrongMachine(7).to_string().contains("0x0007"));
    }
}
