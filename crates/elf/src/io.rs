//! Little-endian byte cursor helpers shared by the ELF reader and writer.

use crate::error::ElfError;

/// A checked little-endian reader over a byte slice.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    pub(crate) fn at(bytes: &'a [u8], offset: usize) -> Result<Self, ElfError> {
        if offset > bytes.len() {
            return Err(ElfError::Truncated { what: "seek target", offset });
        }
        Ok(Reader { bytes, pos: offset })
    }

    pub(crate) fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ElfError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(ElfError::Truncated { what, offset: self.pos })?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self, what: &'static str) -> Result<u8, ElfError> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn u16(&mut self, what: &'static str) -> Result<u16, ElfError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self, what: &'static str) -> Result<u32, ElfError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn i32(&mut self, what: &'static str) -> Result<i32, ElfError> {
        Ok(self.u32(what)? as i32)
    }
}

/// A growable little-endian writer.
#[derive(Debug, Default)]
pub(crate) struct Writer {
    bytes: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Writer::default()
    }

    pub(crate) fn len(&self) -> usize {
        self.bytes.len()
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.bytes.push(v);
    }

    pub(crate) fn u16(&mut self, v: u16) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn i32(&mut self, v: i32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn raw(&mut self, v: &[u8]) {
        self.bytes.extend_from_slice(v);
    }

    pub(crate) fn align(&mut self, to: usize) {
        while !self.bytes.len().is_multiple_of(to) {
            self.bytes.push(0);
        }
    }

    /// Overwrites a previously written 32-bit slot (for back-patching
    /// header offsets).
    pub(crate) fn patch_u32(&mut self, at: usize, v: u32) {
        self.bytes[at..at + 4].copy_from_slice(&v.to_le_bytes());
    }
}

/// Reads a NUL-terminated string from a string table.
pub(crate) fn strtab_get(table: &[u8], offset: u32) -> Result<String, ElfError> {
    let start = offset as usize;
    if start >= table.len() {
        return Err(ElfError::BadString(offset));
    }
    let end = table[start..]
        .iter()
        .position(|&b| b == 0)
        .map(|p| start + p)
        .ok_or(ElfError::BadString(offset))?;
    String::from_utf8(table[start..end].to_vec()).map_err(|_| ElfError::BadString(offset))
}

/// An incrementally built string table (offset 0 is the empty string).
#[derive(Debug)]
pub(crate) struct StrTab {
    bytes: Vec<u8>,
}

impl StrTab {
    pub(crate) fn new() -> Self {
        StrTab { bytes: vec![0] }
    }

    pub(crate) fn add(&mut self, s: &str) -> u32 {
        let off = self.bytes.len() as u32;
        self.bytes.extend_from_slice(s.as_bytes());
        self.bytes.push(0);
        off
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_reads_little_endian() {
        let bytes = [0x01, 0x02, 0x03, 0x04, 0xFF];
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u32("v").unwrap(), 0x0403_0201);
        assert_eq!(r.u8("b").unwrap(), 0xFF);
        assert!(r.u8("end").is_err());
    }

    #[test]
    fn reader_at_rejects_out_of_bounds() {
        assert!(Reader::at(&[0; 4], 5).is_err());
        assert!(Reader::at(&[0; 4], 4).is_ok());
    }

    #[test]
    fn writer_roundtrip_and_patch() {
        let mut w = Writer::new();
        w.u32(0);
        w.u16(0xBEEF);
        w.align(4);
        assert_eq!(w.len(), 8);
        w.patch_u32(0, 0xDEAD_BEEF);
        let b = w.into_bytes();
        assert_eq!(&b[0..4], &0xDEAD_BEEFu32.to_le_bytes());
        assert_eq!(&b[4..6], &0xBEEFu16.to_le_bytes());
    }

    #[test]
    fn strtab_roundtrip() {
        let mut t = StrTab::new();
        let a = t.add("hello");
        let b = t.add("world");
        let bytes = t.into_bytes();
        assert_eq!(strtab_get(&bytes, a).unwrap(), "hello");
        assert_eq!(strtab_get(&bytes, b).unwrap(), "world");
        assert_eq!(strtab_get(&bytes, 0).unwrap(), "");
        assert!(strtab_get(&bytes, bytes.len() as u32).is_err());
    }

    #[test]
    fn strtab_missing_nul_rejected() {
        assert!(strtab_get(b"abc", 0).is_err());
    }
}
