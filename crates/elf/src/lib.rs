//! Minimal ELF32 object/executable codec for the KAHRISMA toolchain.
//!
//! The paper's binary utilities store "both, the object files and application
//! binary … in standard *Executable and Linkable Format* (ELF)" (§IV) and
//! keep the simulator's debug metadata — the assembler-line map and per-
//! function address ranges — in custom ELF sections (§V-C). This crate
//! implements exactly that storage layer:
//!
//! * [`Object`] — a relocatable object file (`ET_REL`) with `.text`,
//!   `.data`, `.rodata`, `.bss`, a symbol table, and KAHRISMA relocations;
//! * [`Executable`] — a linked binary (`ET_EXEC`) with `PT_LOAD` program
//!   headers, the entry point, and the entry ISA (stored in `e_flags`);
//! * [`DebugInfo`] — the custom sections `.kahrisma.lines` (address →
//!   source line), `.kahrisma.funcs` (function name, start, end, ISA) and
//!   `.kahrisma.isamap` (address ranges → ISA id), used by the simulator's
//!   debugging and mixed-ISA support.
//!
//! Both directions (serialize and parse) are implemented so that the
//! assembler, linker and simulator communicate only through genuine ELF
//! bytes, as in the paper's framework.
//!
//! # Example
//!
//! ```
//! use kahrisma_elf::{Object, Symbol, SectionId, SymKind};
//!
//! let mut obj = Object::new();
//! obj.text.extend_from_slice(&42u32.to_le_bytes());
//! obj.symbols.push(Symbol::global("start", SectionId::Text, 0, SymKind::Func));
//! let bytes = obj.to_bytes();
//! let back = Object::from_bytes(&bytes)?;
//! assert_eq!(back.text, obj.text);
//! assert_eq!(back.symbols[0].name, "start");
//! # Ok::<(), kahrisma_elf::ElfError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod consts;
mod debuginfo;
mod error;
mod exec;
mod io;
mod object;

pub use consts::EM_KAHRISMA;
pub use debuginfo::{DebugInfo, FuncEntry, LineEntry};
pub use error::ElfError;
pub use exec::{Executable, Segment};
pub use object::{Object, Reloc, RelocKind, SectionId, SymKind, Symbol};
