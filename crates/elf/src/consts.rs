//! ELF constants used by the KAHRISMA codec.

/// `e_machine` value claimed by KAHRISMA binaries (`"KA"` little-endian).
pub const EM_KAHRISMA: u16 = 0x4B41;

pub(crate) const ELF_MAGIC: [u8; 4] = [0x7F, b'E', b'L', b'F'];
pub(crate) const ELFCLASS32: u8 = 1;
pub(crate) const ELFDATA2LSB: u8 = 1;
pub(crate) const EV_CURRENT: u8 = 1;

pub(crate) const ET_REL: u16 = 1;
pub(crate) const ET_EXEC: u16 = 2;

pub(crate) const EHDR_SIZE: u16 = 52;
pub(crate) const PHDR_SIZE: u16 = 32;
pub(crate) const SHDR_SIZE: u16 = 40;
pub(crate) const SYM_SIZE: u32 = 16;
pub(crate) const RELA_SIZE: u32 = 12;

pub(crate) const SHT_NULL: u32 = 0;
pub(crate) const SHT_PROGBITS: u32 = 1;
pub(crate) const SHT_SYMTAB: u32 = 2;
pub(crate) const SHT_STRTAB: u32 = 3;
pub(crate) const SHT_RELA: u32 = 4;
pub(crate) const SHT_NOBITS: u32 = 8;
/// Custom section type for KAHRISMA debug metadata.
pub(crate) const SHT_KAHRISMA_DEBUG: u32 = 0x7A00_0001;

pub(crate) const SHF_WRITE: u32 = 0x1;
pub(crate) const SHF_ALLOC: u32 = 0x2;
pub(crate) const SHF_EXECINSTR: u32 = 0x4;

pub(crate) const PT_LOAD: u32 = 1;
pub(crate) const PF_X: u32 = 0x1;
pub(crate) const PF_W: u32 = 0x2;
pub(crate) const PF_R: u32 = 0x4;

pub(crate) const STB_LOCAL: u8 = 0;
pub(crate) const STB_GLOBAL: u8 = 1;
pub(crate) const STT_NOTYPE: u8 = 0;
pub(crate) const STT_OBJECT: u8 = 1;
pub(crate) const STT_FUNC: u8 = 2;

pub(crate) const SHN_UNDEF: u16 = 0;
pub(crate) const SHN_ABS: u16 = 0xFFF1;

pub(crate) const SEC_TEXT: &str = ".text";
pub(crate) const SEC_DATA: &str = ".data";
pub(crate) const SEC_RODATA: &str = ".rodata";
pub(crate) const SEC_BSS: &str = ".bss";
pub(crate) const SEC_SYMTAB: &str = ".symtab";
pub(crate) const SEC_STRTAB: &str = ".strtab";
pub(crate) const SEC_SHSTRTAB: &str = ".shstrtab";
pub(crate) const SEC_RELA_TEXT: &str = ".rela.text";
pub(crate) const SEC_RELA_DATA: &str = ".rela.data";
pub(crate) const SEC_RELA_RODATA: &str = ".rela.rodata";
/// Assembler-line map (paper §V-C: "the assembler stores the assembler file
/// mapping into a custom data section within the ELF file").
pub(crate) const SEC_LINES: &str = ".kahrisma.lines";
/// Function table ("Within the ELF file the start address and end address of
/// each function is stored").
pub(crate) const SEC_FUNCS: &str = ".kahrisma.funcs";
/// Address-range → ISA map for mixed-ISA binaries.
pub(crate) const SEC_ISAMAP: &str = ".kahrisma.isamap";
