//! The unit of planning: one fully-specified simulation cell.

use kahrisma_core::{CycleModelKind, MemGeometry, MemoryHierarchy, SimConfig, TierMode};
use kahrisma_isa::IsaKind;
use kahrisma_workloads::Workload;

/// Default instruction budget for plan cells (matches the bench
/// harnesses' `BUDGET`).
pub const DEFAULT_BUDGET: u64 = 500_000_000;

/// Which simulation engine a cell runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The interpretation-based instruction-set simulator, optionally with
    /// a cycle-approximation model attached (§V/§VI).
    Iss(Option<CycleModelKind>),
    /// The cycle-accurate RTL reference pipeline (Table II's "Hardware").
    Rtl,
}

impl Engine {
    /// Short engine/model tag used in cell keys.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Engine::Iss(None) => "func",
            Engine::Iss(Some(CycleModelKind::Ilp)) => "ilp",
            Engine::Iss(Some(CycleModelKind::Aie)) => "aie",
            Engine::Iss(Some(CycleModelKind::Doe)) => "doe",
            Engine::Iss(Some(_)) => "model",
            Engine::Rtl => "rtl",
        }
    }
}

/// The decode-cache configuration ladder of Table I (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheVariant {
    /// Detect & decode every instruction (the paper's 0.177 MIPS row).
    NoCache,
    /// Decode cache without instruction prediction.
    CacheOnly,
    /// Decode cache + prediction, per-entry hot loop (the paper baseline).
    Prediction,
    /// Full arena + superblock-batched hot loop (this repo's default).
    Superblocks,
}

impl CacheVariant {
    /// Short variant tag used in cell keys.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            CacheVariant::NoCache => "nocache",
            CacheVariant::CacheOnly => "cache",
            CacheVariant::Prediction => "pred",
            CacheVariant::Superblocks => "superblock",
        }
    }
}

/// One fully-specified simulation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellRun {
    /// The application to simulate.
    pub workload: Workload,
    /// The ISA the workload is compiled for.
    pub isa: IsaKind,
    /// Simulation engine (ISS + optional cycle model, or RTL reference).
    pub engine: Engine,
    /// Decode-cache configuration (ignored by the RTL engine, which drives
    /// the default simulator).
    pub variant: CacheVariant,
    /// Replace the paper's memory hierarchy with ideal (zero-latency)
    /// memory — Table I's `aie/ideal` row.
    pub ideal_memory: bool,
    /// Explicit cache geometry for the cycle-model memory hierarchy
    /// (design-space-exploration cells); `None` keeps the paper default.
    /// Takes precedence over `ideal_memory` when both are set.
    pub geometry: Option<MemGeometry>,
    /// Execution tier for hot superblocks (the compiled IR tier by
    /// default; `Interp` pins the interpreter for speed comparisons).
    pub tier: TierMode,
    /// Instruction budget; exceeding it fails the cell.
    pub budget: u64,
    /// Wall-clock repeats; the fastest run is reported (timing fields
    /// only — counters are identical across repeats by construction).
    pub repeats: u32,
}

impl CellRun {
    /// A cell with the default budget, one repeat, the superblock hot loop
    /// and the paper memory hierarchy.
    #[must_use]
    pub fn new(workload: Workload, isa: IsaKind, engine: Engine) -> Self {
        CellRun {
            workload,
            isa,
            engine,
            variant: CacheVariant::Superblocks,
            ideal_memory: false,
            geometry: None,
            tier: TierMode::Ir,
            budget: DEFAULT_BUDGET,
            repeats: 1,
        }
    }

    /// The cell's unique, stable, sortable key:
    /// `workload/isa/engine/variant[+idealmem][+gLxBpPdD][+interp]`.
    ///
    /// Default tier and default geometry add no suffix, so keys of
    /// pre-planner campaign cells are unchanged — fingerprints and
    /// manifests written before this API keep resuming cleanly.
    #[must_use]
    pub fn key(&self) -> String {
        let mut key = format!(
            "{}/{}/{}/{}",
            self.workload.name(),
            self.isa.name(),
            self.engine.tag(),
            self.variant.tag()
        );
        if self.ideal_memory {
            key.push_str("+idealmem");
        }
        if let Some(g) = self.geometry {
            key.push('+');
            key.push_str(&g.tag());
        }
        if self.tier == TierMode::Interp {
            key.push_str("+interp");
        }
        key
    }

    /// The simulator configuration this cell prescribes (ISS engine only).
    #[must_use]
    pub fn sim_config(&self) -> SimConfig {
        let model = match self.engine {
            Engine::Iss(model) => model,
            Engine::Rtl => None,
        };
        let mut config = SimConfig {
            cycle_model: model,
            tier: self.tier,
            ..SimConfig::default()
        };
        match self.variant {
            CacheVariant::NoCache => {
                config.decode_cache = false;
                config.prediction = false;
                config.superblocks = false;
            }
            CacheVariant::CacheOnly => {
                config.prediction = false;
                config.superblocks = false;
            }
            CacheVariant::Prediction => config.superblocks = false,
            CacheVariant::Superblocks => {}
        }
        if let Some(geometry) = self.geometry {
            config.memory = geometry.hierarchy();
        } else if self.ideal_memory {
            config.memory = MemoryHierarchy::new().with_memory(0);
        }
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kahrisma_core::CycleModelKind;

    #[test]
    fn key_encodes_every_dimension() {
        let mut cell = CellRun::new(
            Workload::Cjpeg,
            IsaKind::Risc,
            Engine::Iss(Some(CycleModelKind::Aie)),
        );
        cell.variant = CacheVariant::Prediction;
        cell.ideal_memory = true;
        assert_eq!(cell.key(), "cjpeg/risc/aie/pred+idealmem");
        cell.ideal_memory = false;
        cell.tier = TierMode::Interp;
        cell.geometry = Some(MemGeometry { l1_lines: 16, line_bytes: 32, l2_ports: 2, mem_delay: 18 });
        assert_eq!(cell.key(), "cjpeg/risc/aie/pred+g16x32p2d18+interp");
    }

    #[test]
    fn default_tier_and_geometry_leave_legacy_keys_unchanged() {
        let cell = CellRun::new(Workload::Dct, IsaKind::Vliw4, Engine::Iss(Some(CycleModelKind::Doe)));
        assert_eq!(cell.key(), "dct/vliw4/doe/superblock");
    }

    #[test]
    fn sim_config_follows_variant() {
        let mut cell = CellRun::new(Workload::Dct, IsaKind::Risc, Engine::Iss(None));
        cell.variant = CacheVariant::NoCache;
        let c = cell.sim_config();
        assert!(!c.decode_cache && !c.prediction && !c.superblocks);
        cell.variant = CacheVariant::Superblocks;
        let c = cell.sim_config();
        assert!(c.decode_cache && c.prediction && c.superblocks);
        assert_eq!(c.tier, TierMode::Ir);
    }

    #[test]
    fn sim_config_applies_tier_and_geometry() {
        let mut cell = CellRun::new(Workload::Dct, IsaKind::Risc, Engine::Iss(Some(CycleModelKind::Doe)));
        cell.tier = TierMode::Interp;
        let g = MemGeometry { l1_lines: 16, line_bytes: 16, l2_ports: 2, mem_delay: 30 };
        cell.geometry = Some(g);
        cell.ideal_memory = true; // geometry wins
        let c = cell.sim_config();
        assert_eq!(c.tier, TierMode::Interp);
        let names = |m: &kahrisma_core::MemoryHierarchy| {
            m.stats().iter().map(|l| l.name.clone()).collect::<Vec<_>>()
        };
        assert_eq!(names(&c.memory), names(&g.hierarchy()));
    }
}
