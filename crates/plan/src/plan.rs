//! A named, fingerprinted list of cells to execute.

use crate::cell::CellRun;

/// A named set of [`CellRun`]s to execute — the unit every [`Planner`]
/// backend schedules.
///
/// [`Planner`]: crate::Planner
#[derive(Debug, Clone, PartialEq)]
pub struct ExecPlan {
    /// Plan name (used in reports and manifest headers).
    pub name: String,
    /// The cells, in definition order. Planner backends may execute them
    /// in any order; reports sort by key.
    pub cells: Vec<CellRun>,
}

impl ExecPlan {
    /// A plan over an explicit cell list.
    #[must_use]
    pub fn new(name: &str, cells: Vec<CellRun>) -> ExecPlan {
        ExecPlan { name: name.to_string(), cells }
    }

    /// A stable fingerprint over the plan's name and every cell parameter,
    /// used to detect manifest/plan mismatches when resuming.
    ///
    /// FNV-1a over the key string plus the numeric budget and repeat
    /// fields. Since [`CellRun::key`] adds suffixes only for non-default
    /// tier and geometry, plans identical to their pre-planner campaign
    /// counterparts keep their historical fingerprints.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = BASIS;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(PRIME);
            }
        };
        eat(self.name.as_bytes());
        for cell in &self.cells {
            eat(cell.key().as_bytes());
            eat(&cell.budget.to_le_bytes());
            eat(&cell.repeats.to_le_bytes());
        }
        format!("{hash:016x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Engine;
    use kahrisma_core::CycleModelKind;
    use kahrisma_isa::IsaKind;
    use kahrisma_workloads::Workload;

    #[test]
    fn fingerprint_is_stable_and_parameter_sensitive() {
        let cell =
            CellRun::new(Workload::Dct, IsaKind::Risc, Engine::Iss(Some(CycleModelKind::Doe)));
        let plan = ExecPlan::new("p", vec![cell.clone()]);
        let base = plan.fingerprint();
        assert_eq!(base, plan.fingerprint());

        let mut tweaked = plan.clone();
        tweaked.cells[0].budget += 1;
        assert_ne!(base, tweaked.fingerprint());

        let mut renamed = plan.clone();
        renamed.name = "q".into();
        assert_ne!(base, renamed.fingerprint());

        let mut repeated = plan;
        repeated.cells[0].repeats = 2;
        assert_ne!(base, repeated.fingerprint());
    }
}
