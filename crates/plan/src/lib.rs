//! The unified execution-planner API for the KAHRISMA simulator.
//!
//! The paper's evaluation (§VII) and the ROADMAP's design-space
//! exploration are the same problem: *a set of fully-specified simulation
//! cells to execute under a budget*. This crate is the one abstraction for
//! that problem:
//!
//! * a [`CellRun`] pins down one simulation completely — workload, ISA,
//!   engine, decode-cache variant, memory geometry, execution tier,
//!   instruction budget, repeat count;
//! * an [`ExecPlan`] is a named, fingerprinted list of cells, built by
//!   hand or by the grid expanders in [`grids`];
//! * a [`Planner`] executes a plan and returns per-cell [`CellResult`]s.
//!
//! Three planner backends ship with the workspace, all producing
//! bit-identical deterministic counters for the same plan:
//!
//! * [`LocalPlanner`] — the work-stealing in-process worker pool (the
//!   engine behind `kbatch` and `kahrisma-campaign`);
//! * [`DaemonPlanner`] — over-the-wire dispatch to a running `ksimd`
//!   daemon or a `kgate` fleet (`kbatch --daemon`);
//! * [`FabricPlanner`] — the cells co-scheduled as cores of one
//!   `kahrisma-fabric`, advanced at deterministic quantum barriers.
//!
//! On top of the planner, [`pareto`] turns a plan's results into a
//! design-space-exploration report: the Pareto front of simulation speed
//! (MIPS) against modeled fidelity (CPI, L1 miss ratio), with dominated
//! cells marked (`kbatch dse`).
//!
//! # Example
//!
//! ```no_run
//! use kahrisma_plan::{grids, LocalPlanner, Planner, PlanSession};
//!
//! let plan = grids::smoke();
//! let mut planner = LocalPlanner::default();
//! let run = planner.run_plan(&plan, &mut PlanSession::default())?;
//! assert_eq!(run.results.len(), plan.cells.len());
//! # Ok::<(), kahrisma_plan::PlanError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod fabric;
pub mod grids;
pub mod json;
pub mod pareto;
pub mod plan;
pub mod pool;
pub mod remote;
pub mod report;

pub use cell::{CacheVariant, CellRun, Engine, DEFAULT_BUDGET};
pub use fabric::FabricPlanner;
pub use pareto::{DseCell, DseReport};
pub use plan::ExecPlan;
pub use pool::{LocalPlanner, DEFAULT_SLICE};
pub use remote::DaemonPlanner;
pub use report::{CellResult, Report};

use std::collections::BTreeSet;
use std::fmt;

/// An error raised while executing a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A filesystem or network operation failed.
    Io {
        /// The file or address involved.
        path: String,
        /// The underlying error.
        reason: String,
    },
    /// A cell failed to build, simulate, or pass its workload self-check.
    Cell {
        /// The cell's key.
        key: String,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Io { path, reason } => write!(f, "{path}: {reason}"),
            PlanError::Cell { key, reason } => write!(f, "cell {key}: {reason}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Per-invocation execution state threaded through a [`Planner`]: what to
/// skip (resume), when to stop, and where to deliver results the moment
/// they complete (crash-safe persistence hooks).
///
/// The session borrows its result sink so callers — e.g. a campaign
/// manifest appender — keep ownership across planner invocations.
#[derive(Default)]
pub struct PlanSession<'a> {
    /// Cell keys to skip (already completed in a previous invocation).
    pub skip: BTreeSet<String>,
    /// Execute at most this many cells, then stop with
    /// [`PlanRun::interrupted`] set; `None` runs the whole plan.
    pub stop_after: Option<usize>,
    /// Print one progress line per completed cell to stderr.
    pub progress: bool,
    /// Called with each completed cell the moment it finishes (under the
    /// planner's result lock, so invocations never interleave). An error
    /// aborts the run.
    pub on_result: Option<ResultSink<'a>>,
}

/// The borrowed per-result delivery hook of a [`PlanSession`].
pub type ResultSink<'a> =
    &'a mut (dyn FnMut(&CellResult) -> Result<(), PlanError> + Send);

impl fmt::Debug for PlanSession<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlanSession")
            .field("skip", &self.skip.len())
            .field("stop_after", &self.stop_after)
            .field("progress", &self.progress)
            .field("on_result", &self.on_result.is_some())
            .finish()
    }
}

impl PlanSession<'_> {
    /// Delivers one result to the session's sink, if any.
    pub(crate) fn deliver(&mut self, result: &CellResult) -> Result<(), PlanError> {
        match &mut self.on_result {
            Some(sink) => sink(result),
            None => Ok(()),
        }
    }
}

/// What one planner invocation did.
#[derive(Debug)]
pub struct PlanRun {
    /// Results of the newly executed cells, in completion order (callers
    /// sort by key when building a [`Report`]).
    pub results: Vec<CellResult>,
    /// Cells executed by this invocation.
    pub executed: usize,
    /// Cells skipped because the session already recorded them.
    pub skipped: usize,
    /// `true` when [`PlanSession::stop_after`] stopped the run before
    /// every pending cell finished.
    pub interrupted: bool,
}

/// A scheduling backend: executes every non-skipped cell of an
/// [`ExecPlan`].
///
/// Implementations must be *deterministic in counters*: the
/// [`CellResult`] counter fields a backend produces for a cell depend only
/// on the cell, never on scheduling (worker count, quantum interleaving,
/// wire protocol round-trips). The planner determinism suite in
/// `kahrisma-campaign` holds all three shipped backends to this contract.
pub trait Planner {
    /// A short stable backend tag (`"local"`, `"daemon"`, `"fabric"`).
    fn name(&self) -> &'static str;

    /// Executes `plan` under `session`.
    ///
    /// # Errors
    ///
    /// Fails when any cell fails to build, simulate, or pass its workload
    /// self-check, and on I/O errors from the session's result sink — a
    /// plan of broken runs must not produce a report.
    fn run_plan(
        &mut self,
        plan: &ExecPlan,
        session: &mut PlanSession<'_>,
    ) -> Result<PlanRun, PlanError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_context() {
        let e = PlanError::Cell { key: "dct/risc/doe/superblock".into(), reason: "x".into() };
        assert!(e.to_string().contains("dct/risc/doe/superblock"));
        let e = PlanError::Io { path: "out.json".into(), reason: "denied".into() };
        assert_eq!(e.to_string(), "out.json: denied");
    }

    #[test]
    fn error_and_session_are_send() {
        fn check<T: Send>() {}
        check::<PlanError>();
        check::<PlanSession<'static>>();
    }
}
