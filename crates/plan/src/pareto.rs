//! Pareto-front design-space-exploration reports (`kbatch dse`).
//!
//! A DSE sweep trades *simulation speed* against *modeled fidelity*: the
//! interesting cells are those where no other cell is simultaneously
//! faster to simulate (MIPS ↑), closer to the hardware (modeled CPI ↓) and
//! gentler on the modeled L1 (miss ratio ↓). This module marks that
//! Pareto front over a plan's results.

use std::fmt::Write as _;

use kahrisma_core::STATS_SCHEMA_VERSION;

use crate::json;
use crate::report::CellResult;

/// Modeled cycles per instruction, when the cell ran a cycle model.
#[must_use]
pub fn cpi(result: &CellResult) -> Option<f64> {
    match result.cycles {
        Some(c) if result.instructions > 0 => Some(c as f64 / result.instructions as f64),
        _ => None,
    }
}

/// Whether a cell participates in dominance comparisons: it needs all
/// three objectives (MIPS is always measured; CPI and L1 miss ratio need
/// a cycle model with a cached hierarchy).
#[must_use]
pub fn comparable(result: &CellResult) -> bool {
    cpi(result).is_some() && result.l1_miss_ratio.is_some()
}

/// `true` when `a` dominates `b`: at least as good on every objective
/// (maximize MIPS, minimize CPI, minimize L1 miss ratio) and strictly
/// better on at least one. Only defined over [`comparable`] cells.
#[must_use]
pub fn dominates(a: &CellResult, b: &CellResult) -> bool {
    let (Some(cpi_a), Some(cpi_b)) = (cpi(a), cpi(b)) else {
        return false;
    };
    let (Some(miss_a), Some(miss_b)) = (a.l1_miss_ratio, b.l1_miss_ratio) else {
        return false;
    };
    let geq = a.mips >= b.mips && cpi_a <= cpi_b && miss_a <= miss_b;
    let strict = a.mips > b.mips || cpi_a < cpi_b || miss_a < miss_b;
    geq && strict
}

/// One cell of a DSE report: the result plus its frontier mark.
#[derive(Debug, Clone)]
pub struct DseCell {
    /// The cell's result.
    pub result: CellResult,
    /// `true` when no other comparable cell dominates this one.
    /// Non-[`comparable`] cells are never on the frontier.
    pub frontier: bool,
}

/// A design-space-exploration report: all cells sorted by key, the Pareto
/// front marked.
///
/// The frontier marks depend on the MIPS objective — a host timing — so
/// they may differ between machines; [`DseReport::deterministic_eq`]
/// therefore compares counters only, like the plain [`Report`].
///
/// [`Report`]: crate::report::Report
#[derive(Debug, Clone)]
pub struct DseReport {
    /// Plan name.
    pub plan: String,
    /// Plan fingerprint ([`crate::ExecPlan::fingerprint`]).
    pub fingerprint: String,
    /// Cell results with frontier marks, sorted by key.
    pub cells: Vec<DseCell>,
}

impl DseReport {
    /// Builds a report from unordered results, marking the Pareto front.
    #[must_use]
    pub fn new(plan: &str, fingerprint: &str, mut results: Vec<CellResult>) -> DseReport {
        results.sort_by(|a, b| a.key.cmp(&b.key));
        let cells = results
            .iter()
            .map(|r| DseCell {
                frontier: comparable(r)
                    && !results.iter().any(|other| dominates(other, r)),
                result: r.clone(),
            })
            .collect();
        DseReport {
            plan: plan.to_string(),
            fingerprint: fingerprint.to_string(),
            cells,
        }
    }

    /// Keys of the frontier cells, in key order.
    #[must_use]
    pub fn frontier_keys(&self) -> Vec<&str> {
        self.cells
            .iter()
            .filter(|c| c.frontier)
            .map(|c| c.result.key.as_str())
            .collect()
    }

    /// Renders the report as a JSON document: `schema_version` first, the
    /// cells (each with its `frontier` mark), and the frontier key list.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + 224 * self.cells.len());
        let _ = write!(
            s,
            "{{\n  \"schema_version\": {STATS_SCHEMA_VERSION},\n  \"plan\": \"{}\",\n  \
             \"fingerprint\": \"{}\",\n  \"cells\": [\n",
            json::escape(&self.plan),
            json::escape(&self.fingerprint),
        );
        for (i, cell) in self.cells.iter().enumerate() {
            let mut report = cell.result.report();
            report.push_bool("frontier", cell.frontier);
            s.push_str("    ");
            s.push_str(&report.to_json());
            s.push_str(if i + 1 < self.cells.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n  \"frontier\": [");
        for (i, key) in self.frontier_keys().iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{}\"", json::escape(key));
        }
        s.push_str("]\n}\n");
        s
    }

    /// Compares two reports on deterministic counters only. Frontier
    /// marks are excluded: the MIPS objective is a host timing, so the
    /// front itself legitimately varies between machines and backends.
    #[must_use]
    pub fn deterministic_eq(&self, other: &DseReport) -> bool {
        self.plan == other.plan
            && self.cells.len() == other.cells.len()
            && self
                .cells
                .iter()
                .zip(&other.cells)
                .all(|(a, b)| a.result.deterministic_eq(&b.result))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(key: &str, mips: f64, cycles: u64, miss: f64) -> CellResult {
        CellResult {
            key: key.into(),
            exit_code: 55,
            instructions: 1_000,
            operations: 900,
            cycles: Some(cycles),
            l1_miss_ratio: Some(miss),
            wall_seconds: 0.5,
            mips,
            ns_per_instruction: 100.0,
        }
    }

    #[test]
    fn dominance_requires_all_objectives() {
        let fast = cell("a", 10.0, 2_000, 0.01);
        let slow = cell("b", 5.0, 3_000, 0.02);
        assert!(dominates(&fast, &slow));
        assert!(!dominates(&slow, &fast));
        // Better MIPS but worse CPI: neither dominates.
        let tradeoff = cell("c", 20.0, 4_000, 0.02);
        assert!(!dominates(&fast, &tradeoff));
        assert!(!dominates(&tradeoff, &fast));
        // Identical objectives: no strict edge, no dominance.
        assert!(!dominates(&fast, &fast));
        // Cells without a cycle model never dominate or get dominated.
        let mut func = cell("d", 100.0, 1, 0.0);
        func.cycles = None;
        assert!(!dominates(&func, &slow));
        assert!(!dominates(&slow, &func));
        assert!(!comparable(&func));
    }

    #[test]
    fn frontier_marks_non_dominated_cells_only() {
        let report = DseReport::new(
            "dse",
            "f",
            vec![
                cell("tradeoff", 20.0, 4_000, 0.02),
                cell("best", 10.0, 2_000, 0.01),
                cell("dominated", 5.0, 3_000, 0.02),
            ],
        );
        assert_eq!(report.frontier_keys(), ["best", "tradeoff"]);
        let dominated = report.cells.iter().find(|c| c.result.key == "dominated").unwrap();
        assert!(!dominated.frontier);
    }

    #[test]
    fn json_is_schema_versioned_and_lints() {
        let report = DseReport::new(
            "dse",
            "f",
            vec![cell("a", 10.0, 2_000, 0.01), cell("b", 5.0, 3_000, 0.02)],
        );
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"schema_version\": 1,"), "{json}");
        assert!(json.contains("\"frontier\":true"), "{json}");
        assert!(json.contains("\"frontier\": [\"a\"]"), "{json}");
        kahrisma_observe::json_lint::validate(&json).expect("DSE JSON parses");
    }

    #[test]
    fn deterministic_eq_ignores_frontier_and_timing() {
        let a = DseReport::new("dse", "f", vec![cell("a", 10.0, 2_000, 0.01)]);
        let b = DseReport::new("dse", "f", vec![cell("a", 99.0, 2_000, 0.01)]);
        assert!(a.deterministic_eq(&b));
        let c = DseReport::new("dse", "f", vec![cell("a", 10.0, 2_001, 0.01)]);
        assert!(!a.deterministic_eq(&c));
    }
}
