//! Minimal hand-rolled JSON support for plan reports and manifests.
//!
//! The build container has no registry access, so the planner subsystem
//! serializes its own flat records instead of pulling in serde. Only the
//! subset the manifest format needs is implemented: one-level objects whose
//! values are strings, numbers, booleans or `null`. Numbers keep their raw
//! token so `u64` counters round-trip without the `f64` precision loss a
//! generic value type would introduce.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed flat JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token (`"42"`, `"0.125"`, `"-3e2"`).
    Num(String),
    /// A string, unescaped.
    Str(String),
}

impl Json {
    /// The value as an unsigned integer, when it is an integral number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse::<u64>().ok(),
            _ => None,
        }
    }

    /// The value as a float, when it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse::<f64>().ok(),
            _ => None,
        }
    }

    /// The value as a string slice, when it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Escapes a string for embedding in a JSON document.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses one flat JSON object (`{"k": v, ...}`) into a key → value map.
///
/// # Errors
///
/// Returns a description of the first syntax problem. Nested objects and
/// arrays are rejected — manifest records are flat by design.
pub fn parse_object(input: &str) -> Result<BTreeMap<String, Json>, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let mut map = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            map.insert(key, value);
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes after object at offset {}", p.pos));
    }
    Ok(map)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", want as char)),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = self
                            .bytes
                            .get(self.pos..self.pos + 4)
                            .ok_or("truncated \\u escape")?;
                        let s = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code =
                            u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape")?;
                        self.pos += 4;
                        out.push(char::from_u32(code).ok_or("non-scalar \\u escape")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at the previous
                    // byte; manifest strings are ASCII in practice.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk =
                        self.bytes.get(start..start + len).ok_or("truncated UTF-8")?;
                    let s = std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'n') => {
                self.literal("null")?;
                Ok(Json::Null)
            }
            Some(b't') => {
                self.literal("true")?;
                Ok(Json::Bool(true))
            }
            Some(b'f') => {
                self.literal("false")?;
                Ok(Json::Bool(false))
            }
            Some(b'-' | b'0'..=b'9') => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
                ) {
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("ASCII number token");
                raw.parse::<f64>().map_err(|_| format!("bad number {raw:?}"))?;
                Ok(Json::Num(raw.to_string()))
            }
            other => Err(format!("unexpected value start {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_objects() {
        let m = parse_object(
            r#"{"key": "dct/risc", "n": 42, "ratio": 0.125, "none": null, "ok": true}"#,
        )
        .unwrap();
        assert_eq!(m["key"].as_str(), Some("dct/risc"));
        assert_eq!(m["n"].as_u64(), Some(42));
        assert_eq!(m["ratio"].as_f64(), Some(0.125));
        assert_eq!(m["none"], Json::Null);
        assert_eq!(m["ok"], Json::Bool(true));
    }

    #[test]
    fn large_u64_round_trips_exactly() {
        let big = u64::MAX - 1;
        let m = parse_object(&format!("{{\"n\": {big}}}")).unwrap();
        assert_eq!(m["n"].as_u64(), Some(big));
    }

    #[test]
    fn escape_round_trips() {
        let s = "a\"b\\c\nd\te\u{1}";
        let m = parse_object(&format!("{{\"s\": \"{}\"}}", escape(s))).unwrap();
        assert_eq!(m["s"].as_str(), Some(s));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_object("{").is_err());
        assert!(parse_object(r#"{"a": }"#).is_err());
        assert!(parse_object(r#"{"a": 1} trailing"#).is_err());
        assert!(parse_object(r#"{"a": [1]}"#).is_err());
    }

    #[test]
    fn empty_object_parses() {
        assert!(parse_object("{}").unwrap().is_empty());
    }
}
