//! The wire backend: plan dispatch to a running `ksimd` daemon (or a
//! `kgate` fleet — the gateway is wire-transparent).
//!
//! `kbatch --daemon ADDR` sends each cell of a plan to a simulation server
//! instead of simulating in-process: one session per cell, a
//! budget-bounded `run` loop (resuming across per-request deadlines), and
//! a `stats` read folded into the same [`CellResult`] the local pool
//! produces. Counter fields are bit-identical to a local run of the same
//! plan; timing fields additionally include protocol and scheduling
//! overhead, which is precisely what serving measurements are for.
//!
//! The RTL reference engine is not servable (the daemon hosts ISS
//! sessions only), so plans with `Engine::Rtl` cells are rejected up
//! front — run those locally.

use std::time::{Duration, Instant};

use kahrisma_core::TierMode;
use kahrisma_serve::json::Value;
use kahrisma_serve::{Client, ClientError};

use crate::cell::{CacheVariant, CellRun, Engine};
use crate::plan::ExecPlan;
use crate::report::CellResult;
use crate::{PlanError, PlanRun, PlanSession, Planner};

/// Retry ceiling for `overloaded` rejections per request.
const MAX_OVERLOAD_RETRIES: u32 = 1000;

/// The over-the-wire backend: every cell dispatched to the daemon at
/// `addr`, sequentially (the daemon owns admission control and may be
/// shared with other clients).
#[derive(Debug, Clone)]
pub struct DaemonPlanner {
    /// The daemon (or gateway) address, `host:port`.
    pub addr: String,
}

impl DaemonPlanner {
    /// A planner dispatching to `addr`.
    #[must_use]
    pub fn new(addr: &str) -> DaemonPlanner {
        DaemonPlanner { addr: addr.to_string() }
    }
}

impl Planner for DaemonPlanner {
    fn name(&self) -> &'static str {
        "daemon"
    }

    fn run_plan(
        &mut self,
        plan: &ExecPlan,
        session: &mut PlanSession<'_>,
    ) -> Result<PlanRun, PlanError> {
        if let Some(cell) = plan.cells.iter().find(|c| c.engine == Engine::Rtl) {
            return Err(PlanError::Cell {
                key: cell.key(),
                reason: "the RTL reference engine cannot run on a daemon; \
                         run this campaign locally"
                    .into(),
            });
        }
        let mut client = Client::connect(&self.addr).map_err(|e| PlanError::Io {
            path: self.addr.clone(),
            reason: format!("cannot connect to daemon: {e}"),
        })?;
        let pending: Vec<&CellRun> = plan
            .cells
            .iter()
            .filter(|c| !session.skip.contains(c.key().as_str()))
            .collect();
        let skipped = plan.cells.len() - pending.len();
        let mut results = Vec::with_capacity(pending.len());
        let mut interrupted = false;
        for cell in pending {
            if session.stop_after.is_some_and(|n| results.len() >= n) {
                interrupted = true;
                break;
            }
            let started = Instant::now();
            let result = run_cell(&mut client, cell)?;
            if session.progress {
                eprintln!(
                    "kbatch: [daemon] {:<42} {:>8.2}s {:>9.3} MIPS",
                    result.key,
                    started.elapsed().as_secs_f64(),
                    result.mips,
                );
            }
            session.deliver(&result)?;
            results.push(result);
        }
        Ok(PlanRun { executed: results.len(), results, skipped, interrupted })
    }
}

/// The `create` parameters a cell maps to (mirrors
/// [`CellRun::sim_config`] field for field).
///
/// Default tier and geometry emit no fields, so the wire form a
/// pre-planner `kbatch` sent — and an older daemon accepts — is unchanged
/// for pre-planner campaigns.
fn create_fields(cell: &CellRun) -> Result<Vec<(String, Value)>, String> {
    let mut fields = Vec::new();
    match cell.engine {
        Engine::Rtl => return Err("RTL cells are not servable".into()),
        Engine::Iss(None) => {}
        Engine::Iss(Some(model)) => {
            fields.push(("model".to_string(), Engine::Iss(Some(model)).tag().into()));
        }
    }
    let (cache, prediction, superblocks) = match cell.variant {
        CacheVariant::NoCache => (false, false, false),
        CacheVariant::CacheOnly => (true, false, false),
        CacheVariant::Prediction => (true, true, false),
        CacheVariant::Superblocks => (true, true, true),
    };
    fields.push(("decode_cache".to_string(), cache.into()));
    fields.push(("prediction".to_string(), prediction.into()));
    fields.push(("superblocks".to_string(), superblocks.into()));
    fields.push(("ideal_memory".to_string(), cell.ideal_memory.into()));
    if cell.tier == TierMode::Interp {
        fields.push(("tier".to_string(), "interp".into()));
    }
    if let Some(g) = cell.geometry {
        fields.push(("l1_lines".to_string(), g.l1_lines.into()));
        fields.push(("line_bytes".to_string(), g.line_bytes.into()));
        fields.push(("l2_ports".to_string(), g.l2_ports.into()));
        fields.push(("mem_delay".to_string(), g.mem_delay.into()));
    }
    Ok(fields)
}

/// A stable, collision-free session name for a cell (cell keys contain
/// `/` and can exceed the 64-byte name limit, so hash instead).
fn session_name(cell: &CellRun) -> String {
    let key = cell.key();
    let mut hash = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
    for b in key.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("kbatch-{hash:016x}")
}

fn run_cell(client: &mut Client, cell: &CellRun) -> Result<CellResult, PlanError> {
    let cell_err = |reason: String| PlanError::Cell { key: cell.key(), reason };
    let fields = create_fields(cell).map_err(&cell_err)?;
    let name = session_name(cell);
    // A stale session from an interrupted dispatch must not leak its
    // state into this cell; recreate from scratch.
    let _ = client.session_verb("delete", &name);
    retry_overloaded(|| {
        client.create(&name, cell.workload.name(), cell.isa.name(), fields.clone())
    })
    .map_err(|e| cell_err(format!("create: {e}")))?;

    let mut best_wall = f64::INFINITY;
    let mut exit_code = None;
    for repeat in 0..cell.repeats.max(1) {
        let started = Instant::now();
        exit_code = Some(run_to_halt(client, &name, cell, repeat > 0).map_err(&cell_err)?);
        best_wall = best_wall.min(started.elapsed().as_secs_f64());
    }
    let exit_code = exit_code.unwrap_or_default();
    let expected = cell.workload.expected_exit();
    if exit_code != expected {
        let _ = client.session_verb("delete", &name);
        return Err(cell_err(format!(
            "self-check failed: exit {exit_code}, expected {expected}"
        )));
    }

    let stats = client
        .session_verb("stats", &name)
        .map_err(|e| cell_err(format!("stats: {e}")))?;
    let _ = client.session_verb("delete", &name);
    let counter = |key: &str| stats.get(key).and_then(Value::as_u64).unwrap_or(0);
    let instructions = counter("instructions");
    let operations = stats
        .get("model_operations")
        .and_then(Value::as_u64)
        .unwrap_or_else(|| counter("operations"));
    let wall_seconds = if best_wall.is_finite() { best_wall } else { 0.0 };
    let (mips, ns_per_instruction) = if wall_seconds > 0.0 && instructions > 0 {
        (
            instructions as f64 / wall_seconds / 1e6,
            wall_seconds * 1e9 / instructions as f64,
        )
    } else {
        (0.0, 0.0)
    };
    Ok(CellResult {
        key: cell.key(),
        exit_code,
        instructions,
        operations,
        cycles: stats.get("cycles").and_then(Value::as_u64),
        l1_miss_ratio: stats.get("l1_miss_ratio").and_then(Value::as_f64),
        wall_seconds,
        mips,
        ns_per_instruction,
    })
}

/// Drives one session to halt within the cell's instruction budget,
/// resuming across per-request deadlines (`deadline` outcomes) until the
/// daemon reports `halted`. Returns the exit code.
fn run_to_halt(
    client: &mut Client,
    name: &str,
    cell: &CellRun,
    reset_first: bool,
) -> Result<u32, String> {
    let mut reset = reset_first;
    let mut total = 0u64;
    loop {
        let remaining = cell.budget.saturating_sub(total);
        if remaining == 0 {
            return Err("instruction budget exhausted".into());
        }
        let resp = retry_overloaded(|| client.run(name, Some(remaining), reset, false))
            .map_err(|e| format!("run: {e}"))?;
        reset = false;
        total += resp.get("instructions").and_then(Value::as_u64).unwrap_or(0);
        match resp.get("outcome").and_then(Value::as_str) {
            Some("halted") => {
                return resp
                    .get("exit_code")
                    .and_then(Value::as_u64)
                    .map(|c| c as u32)
                    .ok_or_else(|| "halted without an exit code".into());
            }
            // A per-request deadline is not a cell failure: resume.
            Some("deadline") => {}
            Some("budget") => return Err("instruction budget exhausted".into()),
            Some(other) => return Err(format!("run ended with outcome `{other}`")),
            None => return Err("run response missing `outcome`".into()),
        }
    }
}

/// Retries `overloaded` rejections with the server-suggested backoff.
fn retry_overloaded(
    mut request: impl FnMut() -> Result<Value, ClientError>,
) -> Result<Value, ClientError> {
    let mut attempts = 0u32;
    loop {
        match request() {
            Err(ClientError::Server { ref code, retry_after_ms, .. })
                if code == "overloaded" && attempts < MAX_OVERLOAD_RETRIES =>
            {
                attempts += 1;
                std::thread::sleep(Duration::from_millis(retry_after_ms.unwrap_or(100)));
            }
            other => return other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grids;
    use kahrisma_core::{CycleModelKind, MemGeometry};
    use kahrisma_isa::IsaKind;
    use kahrisma_workloads::Workload;

    #[test]
    fn create_fields_mirror_sim_config() {
        let mut cell = CellRun::new(
            Workload::Dct,
            IsaKind::Risc,
            Engine::Iss(Some(CycleModelKind::Doe)),
        );
        cell.variant = CacheVariant::CacheOnly;
        cell.ideal_memory = true;
        let fields = create_fields(&cell).unwrap();
        let get = |k: &str| fields.iter().find(|(f, _)| f == k).map(|(_, v)| v.clone());
        assert_eq!(get("model"), Some(Value::from("doe")));
        assert_eq!(get("decode_cache"), Some(Value::from(true)));
        assert_eq!(get("prediction"), Some(Value::from(false)));
        assert_eq!(get("superblocks"), Some(Value::from(false)));
        assert_eq!(get("ideal_memory"), Some(Value::from(true)));
        assert_eq!(get("tier"), None, "default tier stays off the wire");
        assert_eq!(get("l1_lines"), None, "default geometry stays off the wire");
        assert!(create_fields(&CellRun::new(
            Workload::Dct,
            IsaKind::Risc,
            Engine::Rtl
        ))
        .is_err());
    }

    #[test]
    fn create_fields_carry_tier_and_geometry() {
        let mut cell = CellRun::new(
            Workload::Dct,
            IsaKind::Risc,
            Engine::Iss(Some(CycleModelKind::Doe)),
        );
        cell.tier = TierMode::Interp;
        cell.geometry =
            Some(MemGeometry { l1_lines: 16, line_bytes: 64, l2_ports: 2, mem_delay: 30 });
        let fields = create_fields(&cell).unwrap();
        let get = |k: &str| fields.iter().find(|(f, _)| f == k).map(|(_, v)| v.clone());
        assert_eq!(get("tier"), Some(Value::from("interp")));
        assert_eq!(get("l1_lines"), Some(Value::from(16u32)));
        assert_eq!(get("line_bytes"), Some(Value::from(64u32)));
        assert_eq!(get("l2_ports"), Some(Value::from(2u32)));
        assert_eq!(get("mem_delay"), Some(Value::from(30u64)));
    }

    #[test]
    fn session_names_are_short_and_distinct() {
        let a = CellRun::new(Workload::Dct, IsaKind::Risc, Engine::Iss(None));
        let b = CellRun::new(Workload::Fft, IsaKind::Risc, Engine::Iss(None));
        assert_ne!(session_name(&a), session_name(&b));
        assert_eq!(session_name(&a), session_name(&a));
        assert!(session_name(&a).len() <= 64);
    }

    #[test]
    fn rtl_plans_are_rejected_up_front() {
        let mut plan = grids::smoke();
        plan.cells.push(CellRun::new(Workload::Dct, IsaKind::Risc, Engine::Rtl));
        let err = DaemonPlanner::new("127.0.0.1:1")
            .run_plan(&plan, &mut PlanSession::default())
            .unwrap_err();
        assert!(matches!(err, PlanError::Cell { .. }));
        assert!(err.to_string().contains("RTL"));
    }
}
