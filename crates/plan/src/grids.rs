//! Grid expanders: predefined paper-artifact plans and DSE grids.
//!
//! This module is the single grid expander of the workspace — the campaign
//! subsystem's predefined tables, the `figure4` bench harness and `kbatch
//! dse` all build their cell lists here, so cell ordering (and therefore
//! plan fingerprints and manifest compatibility) has exactly one source of
//! truth.

use kahrisma_core::{CycleModelKind, MemGeometry, TierMode};
use kahrisma_isa::IsaKind;
use kahrisma_workloads::Workload;

use crate::cell::{CacheVariant, CellRun, Engine};
use crate::plan::ExecPlan;

/// Names of the predefined plans, for `kbatch --list`.
pub const PREDEFINED: [&str; 4] = ["table1", "table2", "figure4", "smoke"];

/// Looks up a predefined plan by name.
#[must_use]
pub fn by_name(name: &str) -> Option<ExecPlan> {
    match name {
        "table1" => Some(table1()),
        "table2" => Some(table2()),
        "figure4" => Some(figure4()),
        "smoke" => Some(smoke()),
        _ => None,
    }
}

/// The ordered cross product of workloads × ISAs × engines, as bare cells
/// (default variant, budget, tier and memory).
#[must_use]
pub fn cross(workloads: &[Workload], isas: &[IsaKind], engines: &[Engine]) -> Vec<CellRun> {
    let mut cells = Vec::with_capacity(workloads.len() * isas.len() * engines.len());
    for &w in workloads {
        for &isa in isas {
            for &engine in engines {
                cells.push(CellRun::new(w, isa, engine));
            }
        }
    }
    cells
}

/// A generic grid plan: the cross product of workloads × ISAs × engines.
#[must_use]
pub fn grid(name: &str, workloads: &[Workload], isas: &[IsaKind], engines: &[Engine]) -> ExecPlan {
    ExecPlan::new(name, cross(workloads, isas, engines))
}

/// Table I (§VII-A): the component-cost ladder on cjpeg/RISC — no cache,
/// cache only, prediction, each cycle model, AIE with ideal memory, and
/// the superblock hot loop.
#[must_use]
pub fn table1() -> ExecPlan {
    let cell = |variant, engine, ideal_memory| CellRun {
        variant,
        ideal_memory,
        repeats: 3,
        ..CellRun::new(Workload::Cjpeg, IsaKind::Risc, engine)
    };
    ExecPlan::new(
        "table1",
        vec![
            cell(CacheVariant::NoCache, Engine::Iss(None), false),
            cell(CacheVariant::CacheOnly, Engine::Iss(None), false),
            cell(CacheVariant::Prediction, Engine::Iss(None), false),
            cell(CacheVariant::Prediction, Engine::Iss(Some(CycleModelKind::Ilp)), false),
            cell(CacheVariant::Prediction, Engine::Iss(Some(CycleModelKind::Aie)), false),
            cell(CacheVariant::Prediction, Engine::Iss(Some(CycleModelKind::Doe)), false),
            cell(CacheVariant::Prediction, Engine::Iss(Some(CycleModelKind::Aie)), true),
            cell(CacheVariant::Superblocks, Engine::Iss(None), false),
        ],
    )
}

/// Table II (§VII-C): DCT on RISC/VLIW2/VLIW4/VLIW8, RTL reference vs DOE
/// approximation, interleaved RTL-first per ISA.
#[must_use]
pub fn table2() -> ExecPlan {
    let isas = [IsaKind::Risc, IsaKind::Vliw2, IsaKind::Vliw4, IsaKind::Vliw8];
    let mut cells = Vec::new();
    for isa in isas {
        cells.extend(cross(
            &[Workload::Dct],
            &[isa],
            &[Engine::Rtl, Engine::Iss(Some(CycleModelKind::Doe))],
        ));
    }
    ExecPlan::new("table2", cells)
}

/// Figure 4 (§VII-B): per workload, the ILP bound on the RISC binary plus
/// the DOE model on all five processor instances (interleaved per
/// workload — the order the paper's figure reads in).
#[must_use]
pub fn figure4() -> ExecPlan {
    let mut cells = Vec::new();
    for w in Workload::ALL {
        cells.extend(cross(&[w], &[IsaKind::Risc], &[Engine::Iss(Some(CycleModelKind::Ilp))]));
        cells.extend(cross(&[w], &IsaKind::ALL, &[Engine::Iss(Some(CycleModelKind::Doe))]));
    }
    ExecPlan::new("figure4", cells)
}

/// A small CI plan: one workload × two ISAs × three cycle models.
#[must_use]
pub fn smoke() -> ExecPlan {
    grid(
        "smoke",
        &[Workload::Dct],
        &[IsaKind::Risc, IsaKind::Vliw4],
        &[
            Engine::Iss(Some(CycleModelKind::Ilp)),
            Engine::Iss(Some(CycleModelKind::Aie)),
            Engine::Iss(Some(CycleModelKind::Doe)),
        ],
    )
}

/// A design-space-exploration grid: the ordered cross product of
/// workloads × ISAs × engines × tiers × memory geometries, every cell on
/// the superblock hot loop with an explicit geometry.
///
/// Order (outermost to innermost): workload, ISA, engine, tier, geometry —
/// so sweeping geometry varies fastest and cells of one configuration stay
/// adjacent in progress output.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn dse(
    name: &str,
    workloads: &[Workload],
    isas: &[IsaKind],
    engines: &[Engine],
    tiers: &[TierMode],
    geometries: &[MemGeometry],
    budget: u64,
    repeats: u32,
) -> ExecPlan {
    let mut cells = Vec::with_capacity(
        workloads.len() * isas.len() * engines.len() * tiers.len() * geometries.len(),
    );
    for &w in workloads {
        for &isa in isas {
            for &engine in engines {
                for &tier in tiers {
                    for &geometry in geometries {
                        let mut cell = CellRun::new(w, isa, engine);
                        cell.tier = tier;
                        cell.geometry = Some(geometry);
                        cell.budget = budget;
                        cell.repeats = repeats;
                        cells.push(cell);
                    }
                }
            }
        }
    }
    ExecPlan::new(name, cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_unique_within_predefined_plans() {
        for name in PREDEFINED {
            let plan = by_name(name).unwrap();
            let mut keys: Vec<String> = plan.cells.iter().map(CellRun::key).collect();
            let len = keys.len();
            keys.sort();
            keys.dedup();
            assert_eq!(keys.len(), len, "duplicate keys in {name}");
        }
    }

    #[test]
    fn predefined_sizes_match_paper_artifacts() {
        assert_eq!(table1().cells.len(), 8);
        assert_eq!(table2().cells.len(), 8);
        assert_eq!(figure4().cells.len(), 36);
        assert_eq!(smoke().cells.len(), 6);
    }

    #[test]
    fn predefined_fingerprints_match_the_campaign_era() {
        // Captured from the pre-planner kahrisma-campaign implementation.
        // Changing any of these breaks resume of existing manifests — the
        // planner extraction must be invisible to persisted state.
        assert_eq!(table1().fingerprint(), "5d4c1f658946a520");
        assert_eq!(table2().fingerprint(), "f175e0aa44b51159");
        assert_eq!(figure4().fingerprint(), "3ac17e746512cba7");
        assert_eq!(smoke().fingerprint(), "21a05339803ae455");
    }

    #[test]
    fn dse_grid_is_the_ordered_cross_product() {
        let geometries = [
            MemGeometry { l1_lines: 16, ..MemGeometry::default() },
            MemGeometry { l1_lines: 32, ..MemGeometry::default() },
        ];
        let plan = dse(
            "dse",
            &[Workload::Dct],
            &[IsaKind::Risc, IsaKind::Vliw4],
            &[Engine::Iss(Some(CycleModelKind::Doe))],
            &[TierMode::Ir, TierMode::Interp],
            &geometries,
            50_000_000,
            1,
        );
        assert_eq!(plan.cells.len(), 8);
        let keys: Vec<String> = plan.cells.iter().map(CellRun::key).collect();
        assert_eq!(keys[0], "dct/risc/doe/superblock+g16x32p1d18");
        assert_eq!(keys[1], "dct/risc/doe/superblock+g32x32p1d18");
        assert_eq!(keys[2], "dct/risc/doe/superblock+g16x32p1d18+interp");
        assert_eq!(keys[4], "dct/vliw4/doe/superblock+g16x32p1d18");
        assert!(plan.cells.iter().all(|c| c.budget == 50_000_000));
    }
}
