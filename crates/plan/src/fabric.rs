//! The co-scheduled backend: a plan's cells as cores of one
//! `kahrisma-fabric`, advanced at deterministic quantum barriers.
//!
//! Every pending cell becomes one fabric core named by its cell key; the
//! whole fabric is then driven until every core halts. Cells don't share
//! memory traffic (the shipped workloads ignore the shared window unless
//! built for it), so functional and cycle-model counters are bit-identical
//! to the local pool's — which the planner determinism suite asserts.
//!
//! Timing caveat: the cores are co-scheduled, so `wall_seconds` is the
//! *fabric's* wall time, identical for every cell of the run — use the
//! local or daemon backend when per-cell timing matters. `repeats` is
//! likewise a timing-only knob and is ignored here.

use std::collections::HashMap;

use kahrisma_elf::Executable;
use kahrisma_fabric::{CoreReport, CoreSpec, Fabric, FabricConfig, DEFAULT_QUANTUM};
use kahrisma_isa::IsaKind;
use kahrisma_workloads::Workload;

use crate::cell::{CellRun, Engine};
use crate::plan::ExecPlan;
use crate::report::CellResult;
use crate::{PlanError, PlanRun, PlanSession, Planner};

/// The fabric backend: cells co-scheduled as cores of one fabric.
#[derive(Debug, Clone)]
pub struct FabricPlanner {
    /// Instructions each core executes between barriers.
    pub quantum: u64,
    /// Host worker threads executing core slices (a performance knob;
    /// never changes results).
    pub host_threads: usize,
}

impl Default for FabricPlanner {
    fn default() -> Self {
        FabricPlanner { quantum: DEFAULT_QUANTUM, host_threads: 1 }
    }
}

impl Planner for FabricPlanner {
    fn name(&self) -> &'static str {
        "fabric"
    }

    fn run_plan(
        &mut self,
        plan: &ExecPlan,
        session: &mut PlanSession<'_>,
    ) -> Result<PlanRun, PlanError> {
        let mut pending: Vec<&CellRun> = plan
            .cells
            .iter()
            .filter(|c| !session.skip.contains(c.key().as_str()))
            .collect();
        let skipped = plan.cells.len() - pending.len();
        let mut interrupted = false;
        if let Some(limit) = session.stop_after {
            if pending.len() > limit {
                pending.truncate(limit);
                interrupted = true;
            }
        }
        if let Some(cell) = pending.iter().find(|c| c.engine == Engine::Rtl) {
            return Err(PlanError::Cell {
                key: cell.key(),
                reason: "the RTL reference engine cannot run on a fabric; \
                         run this campaign locally"
                    .into(),
            });
        }
        if pending.is_empty() {
            return Ok(PlanRun { results: Vec::new(), executed: 0, skipped, interrupted });
        }

        let mut builds: HashMap<(Workload, IsaKind), Executable> = HashMap::new();
        let mut specs = Vec::with_capacity(pending.len());
        for cell in &pending {
            let pair = (cell.workload, cell.isa);
            if let std::collections::hash_map::Entry::Vacant(slot) = builds.entry(pair) {
                let exe = cell.workload.build(cell.isa).map_err(|e| PlanError::Cell {
                    key: cell.key(),
                    reason: format!("toolchain error: {e}"),
                })?;
                slot.insert(exe);
            }
            let exe = builds[&pair].clone();
            specs.push(CoreSpec::new(cell.key(), exe, cell.sim_config()));
        }

        let config = FabricConfig {
            quantum: self.quantum.max(1),
            host_threads: self.host_threads.max(1),
            ..FabricConfig::default()
        };
        let mut fabric = Fabric::new(specs, config)
            .map_err(|e| PlanError::Io { path: "fabric".into(), reason: e })?;
        let budget = pending.iter().map(|c| c.budget).max().unwrap_or(0);
        fabric.run_for(budget).map_err(|e| PlanError::Cell {
            key: e.name.clone(),
            reason: format!("simulation error: {}", e.error),
        })?;

        let stats = fabric.stats();
        let wall = stats.wall.as_secs_f64();
        let mut results = Vec::with_capacity(pending.len());
        for (cell, core) in pending.iter().zip(&stats.cores) {
            let result = core_result(cell, core, wall)?;
            if session.progress {
                eprintln!(
                    "kbatch: [fabric] {:<42} {:>8.2}s {:>9.3} MIPS",
                    result.key, wall, result.mips,
                );
            }
            session.deliver(&result)?;
            results.push(result);
        }
        Ok(PlanRun { executed: results.len(), results, skipped, interrupted })
    }
}

/// Folds one core's report into the cell's result, enforcing the cell's
/// own budget and self-check.
fn core_result(cell: &CellRun, core: &CoreReport, wall: f64) -> Result<CellResult, PlanError> {
    let cell_err = |reason: String| PlanError::Cell { key: cell.key(), reason };
    if !core.halted {
        return Err(cell_err("instruction budget exhausted".into()));
    }
    let instructions = core.stats.instructions;
    if instructions > cell.budget {
        return Err(cell_err(format!("instruction budget exhausted ({instructions})")));
    }
    let exit_code = core
        .exit_code
        .ok_or_else(|| cell_err("halted without an exit code".into()))?;
    let expected = cell.workload.expected_exit();
    if exit_code != expected {
        return Err(cell_err(format!(
            "self-check failed: exit {exit_code}, expected {expected}"
        )));
    }
    let operations = core.cycles.as_ref().map_or(core.stats.operations, |c| c.operations);
    let l1_miss_ratio = core
        .cycles
        .as_ref()
        .and_then(|c| c.memory.iter().find_map(|l| l.cache).map(|c| c.miss_ratio()));
    let t = core.stats.throughput(wall);
    Ok(CellResult {
        key: cell.key(),
        exit_code,
        instructions,
        operations,
        cycles: core.cycles.as_ref().map(|c| c.cycles),
        l1_miss_ratio,
        wall_seconds: t.wall_seconds,
        mips: t.mips,
        ns_per_instruction: t.ns_per_instruction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::LocalPlanner;
    use crate::report::Report;
    use kahrisma_core::CycleModelKind;

    fn tiny_plan() -> ExecPlan {
        let mut plan = ExecPlan::new(
            "tiny",
            vec![
                CellRun::new(Workload::Dct, IsaKind::Risc, Engine::Iss(None)),
                CellRun::new(
                    Workload::Dct,
                    IsaKind::Risc,
                    Engine::Iss(Some(CycleModelKind::Doe)),
                ),
            ],
        );
        for c in &mut plan.cells {
            c.budget = 50_000_000;
        }
        plan
    }

    fn report_of(plan: &ExecPlan, run: PlanRun) -> Report {
        Report::new(&plan.name, &plan.fingerprint(), run.results)
    }

    #[test]
    fn fabric_counters_match_the_local_pool() {
        let plan = tiny_plan();
        let fabric = FabricPlanner::default()
            .run_plan(&plan, &mut PlanSession::default())
            .unwrap();
        let local = LocalPlanner::default()
            .run_plan(&plan, &mut PlanSession::default())
            .unwrap();
        assert!(report_of(&plan, fabric).deterministic_eq(&report_of(&plan, local)));
    }

    #[test]
    fn quantum_never_changes_counters() {
        let plan = tiny_plan();
        let coarse = FabricPlanner::default()
            .run_plan(&plan, &mut PlanSession::default())
            .unwrap();
        let fine = FabricPlanner { quantum: 10_000, host_threads: 2 }
            .run_plan(&plan, &mut PlanSession::default())
            .unwrap();
        assert!(report_of(&plan, coarse).deterministic_eq(&report_of(&plan, fine)));
    }

    #[test]
    fn rtl_and_stop_after_are_handled() {
        let mut plan = tiny_plan();
        plan.cells.push(CellRun::new(Workload::Dct, IsaKind::Risc, Engine::Rtl));
        let err = FabricPlanner::default()
            .run_plan(&plan, &mut PlanSession::default())
            .unwrap_err();
        assert!(err.to_string().contains("RTL"));

        // stop_after truncates before the RTL cell is reached.
        let mut session = PlanSession { stop_after: Some(1), ..PlanSession::default() };
        let run = FabricPlanner::default().run_plan(&plan, &mut session).unwrap();
        assert_eq!(run.executed, 1);
        assert!(run.interrupted);
    }
}
