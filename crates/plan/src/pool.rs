//! The in-process backend: a work-stealing worker pool over a plan's
//! cells.
//!
//! Each worker repeatedly claims the next unclaimed cell from a shared
//! queue, builds (or fetches from a shared cache) the workload executable,
//! runs the cell's simulation single-threadedly, and delivers the result
//! to the session sink the moment it completes. Per-cell results are
//! therefore bit-identical regardless of worker count or scheduling order,
//! and the final report — sorted by cell key — is deterministic up to its
//! wall-clock timing fields.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use kahrisma_core::{RunOutcome, Simulator, Throughput};
use kahrisma_elf::Executable;
use kahrisma_isa::IsaKind;
use kahrisma_rtl::RtlConfig;
use kahrisma_workloads::Workload;

use crate::cell::{CellRun, Engine};
use crate::plan::ExecPlan;
use crate::report::CellResult;
use crate::{PlanError, PlanRun, PlanSession, Planner};

/// Instructions per [`Simulator::run_for`] slice. Between slices a worker
/// is at a checkpointable boundary; the value trades checkpoint granularity
/// against per-slice overhead.
pub const DEFAULT_SLICE: u64 = 4_000_000;

/// The work-stealing in-process worker pool (the engine behind `kbatch`
/// and the campaign runner).
#[derive(Debug, Clone)]
pub struct LocalPlanner {
    /// Worker threads (cells in flight at once). Clamped to ≥ 1.
    pub workers: usize,
    /// Instructions per incremental `run_for` slice.
    pub slice: u64,
}

impl Default for LocalPlanner {
    fn default() -> Self {
        LocalPlanner { workers: 1, slice: DEFAULT_SLICE }
    }
}

type Sink<'a> = &'a mut (dyn FnMut(&CellResult) -> Result<(), PlanError> + Send);

/// State shared between workers, guarded by one mutex: the claim queue,
/// the execution permits, the result buffer and the session sink.
struct Shared<'a> {
    queue: VecDeque<CellRun>,
    permits: Option<usize>,
    interrupted: bool,
    results: Vec<CellResult>,
    sink: Option<Sink<'a>>,
    error: Option<PlanError>,
    done: usize,
    total: usize,
}

type BuildCache = Mutex<HashMap<(Workload, IsaKind), Arc<Executable>>>;

impl Planner for LocalPlanner {
    fn name(&self) -> &'static str {
        "local"
    }

    fn run_plan(
        &mut self,
        plan: &ExecPlan,
        session: &mut PlanSession<'_>,
    ) -> Result<PlanRun, PlanError> {
        let skip: BTreeSet<&str> = session.skip.iter().map(String::as_str).collect();
        let queue: VecDeque<CellRun> = plan
            .cells
            .iter()
            .filter(|c| !skip.contains(c.key().as_str()))
            .cloned()
            .collect();
        let skipped = plan.cells.len() - queue.len();
        let pending = queue.len();

        let shared = Mutex::new(Shared {
            queue,
            permits: session.stop_after,
            interrupted: false,
            results: Vec::new(),
            sink: session.on_result.take(),
            error: None,
            done: skipped,
            total: plan.cells.len(),
        });
        let builds: BuildCache = Mutex::new(HashMap::new());

        let workers = self.workers.clamp(1, pending.max(1));
        let progress = session.progress;
        let slice = self.slice;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| worker(&shared, &builds, slice, progress));
            }
        });

        let mut shared = shared.into_inner().expect("no worker panicked");
        session.on_result = shared.sink.take();
        if let Some(error) = shared.error {
            return Err(error);
        }
        Ok(PlanRun {
            executed: shared.results.len(),
            results: shared.results,
            skipped,
            interrupted: shared.interrupted,
        })
    }
}

/// One worker: claim, build, simulate, deliver — until the queue drains,
/// the permits run out, or another worker hit an error.
fn worker(shared: &Mutex<Shared<'_>>, builds: &BuildCache, slice: u64, progress: bool) {
    loop {
        let cell = {
            let mut s = shared.lock().expect("no worker panicked");
            if s.error.is_some() {
                return;
            }
            if s.queue.is_empty() {
                return;
            }
            if s.permits == Some(0) {
                s.interrupted = true;
                return;
            }
            if let Some(p) = &mut s.permits {
                *p -= 1;
            }
            s.queue.pop_front().expect("checked non-empty")
        };

        let started = Instant::now();
        let outcome =
            build_cached(builds, &cell).and_then(|exe| run_cell(&cell, &exe, slice));
        let mut s = shared.lock().expect("no worker panicked");
        match outcome {
            Ok(result) => {
                if let Some(sink) = &mut s.sink {
                    if let Err(e) = sink(&result) {
                        s.error.get_or_insert(e);
                        return;
                    }
                }
                s.done += 1;
                if progress {
                    eprintln!(
                        "[{}/{}] {:<40} {:>7.2}s {:>9.3} MIPS",
                        s.done,
                        s.total,
                        result.key,
                        started.elapsed().as_secs_f64(),
                        result.mips,
                    );
                }
                s.results.push(result);
            }
            Err(e) => {
                s.error.get_or_insert(e);
                return;
            }
        }
    }
}

/// Builds (or fetches) the executable for a cell's workload × ISA. Two
/// workers racing on the same pair may both compile; the first insert wins
/// and compilation is deterministic, so the race is only wasted work.
fn build_cached(builds: &BuildCache, cell: &CellRun) -> Result<Arc<Executable>, PlanError> {
    let pair = (cell.workload, cell.isa);
    if let Some(exe) = builds.lock().expect("no worker panicked").get(&pair) {
        return Ok(Arc::clone(exe));
    }
    let exe = cell.workload.build(cell.isa).map_err(|e| PlanError::Cell {
        key: cell.key(),
        reason: format!("toolchain error: {e}"),
    })?;
    let exe = Arc::new(exe);
    Ok(Arc::clone(
        builds
            .lock()
            .expect("no worker panicked")
            .entry(pair)
            .or_insert(exe),
    ))
}

/// Runs one cell to completion and validates the workload's self-check.
pub(crate) fn run_cell(
    cell: &CellRun,
    exe: &Executable,
    slice: u64,
) -> Result<CellResult, PlanError> {
    let cell_err = |reason: String| PlanError::Cell { key: cell.key(), reason };
    let expected = cell.workload.expected_exit();
    match cell.engine {
        Engine::Rtl => {
            let start = Instant::now();
            let rtl = kahrisma_rtl::simulate(exe, &RtlConfig::default(), cell.budget)
                .map_err(|e| cell_err(format!("rtl simulation error: {e}")))?;
            let wall = start.elapsed().as_secs_f64();
            let exit_code = rtl
                .exit_code
                .ok_or_else(|| cell_err("instruction budget exhausted".into()))?;
            if exit_code != expected {
                return Err(cell_err(format!(
                    "self-check failed: exit {exit_code}, expected {expected}"
                )));
            }
            let t = Throughput::new(rtl.instructions, wall);
            Ok(CellResult {
                key: cell.key(),
                exit_code,
                instructions: rtl.instructions,
                operations: rtl.operations,
                cycles: Some(rtl.cycles),
                l1_miss_ratio: None,
                wall_seconds: t.wall_seconds,
                mips: t.mips,
                ns_per_instruction: t.ns_per_instruction,
            })
        }
        Engine::Iss(_) => {
            let config = cell.sim_config();
            let mut sim = Simulator::new(exe, config)
                .map_err(|e| cell_err(format!("load error: {e}")))?;
            let mut best_wall = f64::INFINITY;
            for repeat in 0..cell.repeats.max(1) {
                if repeat > 0 {
                    sim.reset();
                }
                let wall = run_sliced(&mut sim, cell, slice).map_err(&cell_err)?;
                best_wall = best_wall.min(wall);
            }
            if !sim.state().halted {
                return Err(cell_err("program did not halt".into()));
            }
            let exit = sim.state().exit_code;
            if exit != expected {
                return Err(cell_err(format!(
                    "self-check failed: exit {exit}, expected {expected}"
                )));
            }
            let stats = *sim.stats();
            let cycles = sim.cycle_stats();
            let operations = cycles
                .as_ref()
                .map_or(stats.operations, |c| c.operations);
            let l1_miss_ratio = cycles.as_ref().and_then(|c| {
                c.memory.iter().find_map(|l| l.cache).map(|c| c.miss_ratio())
            });
            let t = stats.throughput(best_wall);
            Ok(CellResult {
                key: cell.key(),
                exit_code: exit,
                instructions: stats.instructions,
                operations,
                cycles: cycles.map(|c| c.cycles),
                l1_miss_ratio,
                wall_seconds: t.wall_seconds,
                mips: t.mips,
                ns_per_instruction: t.ns_per_instruction,
            })
        }
    }
}

/// Drives a simulator to halt in `run_for` slices, enforcing the cell's
/// instruction budget. Returns the wall-clock seconds of the run.
fn run_sliced(sim: &mut Simulator, cell: &CellRun, slice: u64) -> Result<f64, String> {
    let slice = slice.max(1);
    let start = Instant::now();
    loop {
        let executed = sim.stats().instructions;
        if executed >= cell.budget {
            return Err(format!("instruction budget exhausted ({executed})"));
        }
        let step = slice.min(cell.budget - executed);
        match sim.run_for(step).map_err(|e| format!("simulation error: {e}"))? {
            RunOutcome::Halted { .. } => return Ok(start.elapsed().as_secs_f64()),
            RunOutcome::BudgetExhausted => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Report;
    use kahrisma_core::CycleModelKind;

    fn tiny_plan() -> ExecPlan {
        let mut plan = ExecPlan::new(
            "tiny",
            vec![
                CellRun::new(Workload::Dct, IsaKind::Risc, Engine::Iss(None)),
                CellRun::new(
                    Workload::Dct,
                    IsaKind::Risc,
                    Engine::Iss(Some(CycleModelKind::Ilp)),
                ),
            ],
        );
        for c in &mut plan.cells {
            c.budget = 50_000_000;
        }
        plan
    }

    fn report_of(plan: &ExecPlan, run: PlanRun) -> Report {
        Report::new(&plan.name, &plan.fingerprint(), run.results)
    }

    #[test]
    fn runs_a_tiny_plan() {
        let plan = tiny_plan();
        let run = LocalPlanner::default()
            .run_plan(&plan, &mut PlanSession::default())
            .unwrap();
        assert_eq!(run.executed, 2);
        assert_eq!(run.skipped, 0);
        assert!(!run.interrupted);
        let report = report_of(&plan, run);
        let func = report.get("dct/risc/func/superblock").unwrap();
        assert_eq!(func.exit_code, Workload::Dct.expected_exit());
        assert!(func.cycles.is_none());
        let ilp = report.get("dct/risc/ilp/superblock").unwrap();
        assert!(ilp.cycles.unwrap() > 0);
        assert_eq!(ilp.instructions, func.instructions);
    }

    #[test]
    fn stop_after_interrupts_and_skip_resumes() {
        let plan = tiny_plan();
        let mut session = PlanSession { stop_after: Some(1), ..PlanSession::default() };
        let run = LocalPlanner::default().run_plan(&plan, &mut session).unwrap();
        assert_eq!(run.executed, 1);
        assert!(run.interrupted);

        let mut session = PlanSession::default();
        session.skip.insert(run.results[0].key.clone());
        let rest = LocalPlanner::default().run_plan(&plan, &mut session).unwrap();
        assert_eq!(rest.executed, 1);
        assert_eq!(rest.skipped, 1);
        assert!(!rest.interrupted);
        assert_ne!(rest.results[0].key, run.results[0].key);
    }

    #[test]
    fn repeats_reuse_one_simulator() {
        let mut plan = tiny_plan();
        plan.cells.truncate(1);
        plan.cells[0].repeats = 3;
        let run = LocalPlanner::default()
            .run_plan(&plan, &mut PlanSession::default())
            .unwrap();
        let cell = &run.results[0];
        assert_eq!(cell.exit_code, Workload::Dct.expected_exit());
        assert!(cell.wall_seconds > 0.0);
    }

    #[test]
    fn counters_are_bit_identical_across_worker_counts() {
        let plan = tiny_plan();
        let one = LocalPlanner::default()
            .run_plan(&plan, &mut PlanSession::default())
            .unwrap();
        let four = LocalPlanner { workers: 4, ..LocalPlanner::default() }
            .run_plan(&plan, &mut PlanSession::default())
            .unwrap();
        let one = report_of(&plan, one);
        let four = report_of(&plan, four);
        assert!(one.deterministic_eq(&four));
        assert_eq!(one.metrics().to_json(), four.metrics().to_json());
    }

    #[test]
    fn tiny_slices_produce_identical_counters() {
        let plan = tiny_plan();
        let coarse = LocalPlanner::default()
            .run_plan(&plan, &mut PlanSession::default())
            .unwrap();
        let fine = LocalPlanner { slice: 1_000, ..LocalPlanner::default() }
            .run_plan(&plan, &mut PlanSession::default())
            .unwrap();
        assert!(report_of(&plan, coarse).deterministic_eq(&report_of(&plan, fine)));
    }

    #[test]
    fn session_sink_sees_every_result_and_survives_the_run() {
        let plan = tiny_plan();
        let mut seen: Vec<String> = Vec::new();
        let mut sink = |r: &CellResult| {
            seen.push(r.key.clone());
            Ok(())
        };
        let mut session = PlanSession { on_result: Some(&mut sink), ..PlanSession::default() };
        let run = LocalPlanner::default().run_plan(&plan, &mut session).unwrap();
        assert!(session.on_result.is_some(), "sink restored after the run");
        drop(session);
        assert_eq!(seen.len(), run.executed);
    }

    #[test]
    fn sink_errors_abort_the_run() {
        let plan = tiny_plan();
        let mut sink = |r: &CellResult| {
            Err(PlanError::Io { path: "manifest".into(), reason: format!("refused {}", r.key) })
        };
        let mut session = PlanSession { on_result: Some(&mut sink), ..PlanSession::default() };
        let err = LocalPlanner::default().run_plan(&plan, &mut session).unwrap_err();
        assert!(matches!(err, PlanError::Io { .. }), "{err}");
    }
}
