//! Plan results and their deterministic aggregation.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use kahrisma_core::{StatsReport, STATS_SCHEMA_VERSION};
use kahrisma_observe::MetricsRegistry;

use crate::json::{self, Json};

/// The result of one plan cell.
///
/// Counter fields (`exit_code`, `instructions`, `operations`, `cycles`,
/// `l1_miss_ratio`) are deterministic — identical across runs, backends,
/// worker counts and resume boundaries. Timing fields (`wall_seconds`,
/// `mips`, `ns_per_instruction`) are host measurements and excluded from
/// [`CellResult::deterministic_eq`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The cell's key ([`crate::CellRun::key`]).
    pub key: String,
    /// Program exit code (every workload is self-checking).
    pub exit_code: u32,
    /// Executed instructions (bundles).
    pub instructions: u64,
    /// Executed non-`nop` operations (from the cycle model when one ran,
    /// the functional counter otherwise).
    pub operations: u64,
    /// Approximated (or, for the RTL engine, exact) cycles.
    pub cycles: Option<u64>,
    /// L1 miss ratio, when the cell's memory hierarchy has a cache level.
    pub l1_miss_ratio: Option<f64>,
    /// Wall-clock seconds of the fastest repeat.
    pub wall_seconds: f64,
    /// Millions of simulated instructions per wall-clock second.
    pub mips: f64,
    /// Wall-clock nanoseconds per simulated instruction.
    pub ns_per_instruction: f64,
}

impl CellResult {
    /// Compares the deterministic fields only (timing fields are
    /// host-dependent and excluded).
    #[must_use]
    pub fn deterministic_eq(&self, other: &CellResult) -> bool {
        self.key == other.key
            && self.exit_code == other.exit_code
            && self.instructions == other.instructions
            && self.operations == other.operations
            && self.cycles == other.cycles
            && self.l1_miss_ratio == other.l1_miss_ratio
    }

    /// Operations per cycle, when a cycle count exists.
    #[must_use]
    pub fn ops_per_cycle(&self) -> Option<f64> {
        match self.cycles {
            Some(c) if c > 0 => Some(self.operations as f64 / c as f64),
            _ => None,
        }
    }

    /// The result as a [`StatsReport`] (the workspace-wide
    /// `schema_version`-first serializer), for callers that append fields
    /// of their own — e.g. the Pareto frontier mark — before rendering.
    #[must_use]
    pub fn report(&self) -> StatsReport {
        let mut report = StatsReport::new();
        report.push_str("key", &self.key);
        report.push_u64("exit_code", u64::from(self.exit_code));
        report.push_u64("instructions", self.instructions);
        report.push_u64("operations", self.operations);
        if let Some(c) = self.cycles {
            report.push_u64("cycles", c);
        }
        if let Some(r) = self.l1_miss_ratio {
            report.push_f64("l1_miss_ratio", r);
        }
        report.push_f64("wall_seconds", self.wall_seconds);
        report.push_f64("mips", self.mips);
        report.push_f64("ns_per_instruction", self.ns_per_instruction);
        report
    }

    /// Serializes the result as one flat JSON object (one manifest line)
    /// through [`CellResult::report`], so manifest lines carry the same
    /// `schema_version`-first shape as every other JSON artifact. Optional
    /// quantities are omitted rather than `null`; floats print as their
    /// shortest exact round-trip, so the deterministic comparison survives
    /// a manifest write/read cycle.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.report().to_json()
    }

    /// Parses a result from a flat JSON object line.
    ///
    /// Tolerant by design: unknown fields (including `schema_version`) are
    /// ignored and optional fields may be absent or `null`, so manifests
    /// written before the unified schema still resume cleanly.
    ///
    /// # Errors
    ///
    /// Describes the first missing or ill-typed field.
    pub fn from_json(line: &str) -> Result<CellResult, String> {
        let map = json::parse_object(line)?;
        let str_field = |name: &str| -> Result<String, String> {
            map.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {name:?}"))
        };
        let u64_field = |name: &str| -> Result<u64, String> {
            map.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing integer field {name:?}"))
        };
        let f64_field = |name: &str| -> Result<f64, String> {
            map.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing number field {name:?}"))
        };
        let opt = |name: &str| map.get(name).filter(|v| **v != Json::Null);
        Ok(CellResult {
            key: str_field("key")?,
            exit_code: u32::try_from(u64_field("exit_code")?)
                .map_err(|_| "exit_code out of range".to_string())?,
            instructions: u64_field("instructions")?,
            operations: u64_field("operations")?,
            cycles: match opt("cycles") {
                Some(v) => Some(v.as_u64().ok_or("cycles must be an integer")?),
                None => None,
            },
            l1_miss_ratio: match opt("l1_miss_ratio") {
                Some(v) => Some(v.as_f64().ok_or("l1_miss_ratio must be a number")?),
                None => None,
            },
            wall_seconds: f64_field("wall_seconds")?,
            mips: f64_field("mips")?,
            ns_per_instruction: f64_field("ns_per_instruction")?,
        })
    }
}

/// The aggregated, deterministically-ordered results of a plan.
///
/// The JSON field is named `campaign` for continuity with the report files
/// the campaign subsystem wrote before the planner API existed — existing
/// snapshot consumers keep parsing.
#[derive(Debug, Clone)]
pub struct Report {
    /// Plan (campaign) name.
    pub campaign: String,
    /// Plan fingerprint ([`crate::ExecPlan::fingerprint`]).
    pub fingerprint: String,
    /// Cell results, sorted by key.
    pub cells: Vec<CellResult>,
}

impl Report {
    /// Builds a report from unordered results; cells are sorted by key so
    /// the report is independent of backend scheduling.
    #[must_use]
    pub fn new(campaign: &str, fingerprint: &str, mut cells: Vec<CellResult>) -> Report {
        cells.sort_by(|a, b| a.key.cmp(&b.key));
        Report { campaign: campaign.to_string(), fingerprint: fingerprint.to_string(), cells }
    }

    /// Looks a cell up by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&CellResult> {
        self.cells.iter().find(|c| c.key == key)
    }

    /// The cells as a key → result map.
    #[must_use]
    pub fn by_key(&self) -> BTreeMap<&str, &CellResult> {
        self.cells.iter().map(|c| (c.key.as_str(), c)).collect()
    }

    /// Plan-level metrics, folded purely from the sorted deterministic
    /// cell counters: totals as counters plus log2-bucketed histograms of
    /// the per-cell sizes. Timing fields are host measurements and are
    /// deliberately excluded, so the registry — and its JSON rendering —
    /// is bit-identical across backends and resume boundaries.
    #[must_use]
    pub fn metrics(&self) -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        r.set_counter("cells", self.cells.len() as u64);
        for cell in &self.cells {
            r.count("instructions.total", cell.instructions);
            r.count("operations.total", cell.operations);
            r.record("cell.instructions", cell.instructions);
            r.record("cell.operations", cell.operations);
            if let Some(cycles) = cell.cycles {
                r.count("cycles.total", cycles);
                r.record("cell.cycles", cycles);
            }
        }
        r
    }

    /// Renders the full report as a JSON document (stable field order,
    /// cells sorted by key, deterministic [`Report::metrics`] block).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + 192 * self.cells.len());
        let _ = write!(
            s,
            "{{\n  \"schema_version\": {STATS_SCHEMA_VERSION},\n  \"campaign\": \"{}\",\n  \
             \"fingerprint\": \"{}\",\n  \"cells\": [\n",
            json::escape(&self.campaign),
            json::escape(&self.fingerprint),
        );
        for (i, cell) in self.cells.iter().enumerate() {
            s.push_str("    ");
            s.push_str(&cell.to_json());
            s.push_str(if i + 1 < self.cells.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n  \"metrics\": ");
        self.metrics().write_json(&mut s);
        s.push_str("\n}\n");
        s
    }

    /// Compares two reports on deterministic fields only.
    #[must_use]
    pub fn deterministic_eq(&self, other: &Report) -> bool {
        self.campaign == other.campaign
            && self.cells.len() == other.cells.len()
            && self
                .cells
                .iter()
                .zip(&other.cells)
                .all(|(a, b)| a.deterministic_eq(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(key: &str) -> CellResult {
        CellResult {
            key: key.into(),
            exit_code: 42,
            instructions: 1_000,
            operations: 900,
            cycles: Some(1_234),
            l1_miss_ratio: Some(0.015625),
            wall_seconds: 0.25,
            mips: 0.004,
            ns_per_instruction: 250_000.0,
        }
    }

    #[test]
    fn cell_json_round_trips() {
        let c = sample("dct/risc/doe/superblock");
        let parsed = CellResult::from_json(&c.to_json()).unwrap();
        assert!(c.deterministic_eq(&parsed));
        assert_eq!(parsed.wall_seconds, 0.25);
    }

    #[test]
    fn manifest_lines_are_versioned_and_legacy_lines_still_parse() {
        let c = sample("dct/risc/doe/superblock");
        let json = c.to_json();
        assert!(json.starts_with("{\"schema_version\":1,"), "{json}");
        // A pre-versioning manifest line: explicit nulls, no version field.
        let legacy = "{\"key\": \"k\", \"exit_code\": 1, \"instructions\": 5, \
                      \"operations\": 4, \"cycles\": null, \"l1_miss_ratio\": null, \
                      \"wall_seconds\": 0.5, \"mips\": 1.0, \"ns_per_instruction\": 2.0}";
        let parsed = CellResult::from_json(legacy).unwrap();
        assert_eq!(parsed.instructions, 5);
        assert_eq!(parsed.cycles, None);
        assert_eq!(parsed.l1_miss_ratio, None);
    }

    #[test]
    fn null_optionals_round_trip() {
        let mut c = sample("dct/risc/func/superblock");
        c.cycles = None;
        c.l1_miss_ratio = None;
        let parsed = CellResult::from_json(&c.to_json()).unwrap();
        assert_eq!(parsed.cycles, None);
        assert_eq!(parsed.l1_miss_ratio, None);
    }

    #[test]
    fn report_sorts_by_key() {
        let r = Report::new("t", "f", vec![sample("b"), sample("a"), sample("c")]);
        let keys: Vec<&str> = r.cells.iter().map(|c| c.key.as_str()).collect();
        assert_eq!(keys, ["a", "b", "c"]);
        assert!(r.get("b").is_some());
        assert!(r.get("z").is_none());
    }

    #[test]
    fn metrics_block_aggregates_deterministic_fields_only() {
        let mut cells = vec![sample("a"), sample("b")];
        cells[1].cycles = None;
        cells[1].wall_seconds = 123.0; // timing must not leak into metrics
        let r = Report::new("t", "f", cells);
        let m = r.metrics();
        assert_eq!(m.counter("cells"), 2);
        assert_eq!(m.counter("instructions.total"), 2_000);
        assert_eq!(m.counter("operations.total"), 1_800);
        assert_eq!(m.counter("cycles.total"), 1_234);
        assert_eq!(m.histogram("cell.instructions").unwrap().count(), 2);
        assert_eq!(m.histogram("cell.cycles").unwrap().count(), 1);
        assert!(m.gauge("wall_seconds").is_none());
        let json = r.to_json();
        assert!(json.starts_with("{\n  \"schema_version\": 1,"), "{json}");
        assert!(json.contains("\"metrics\": {\"schema_version\":"), "{json}");
        assert!(json.contains("\"counters\":"), "{json}");
        kahrisma_observe::json_lint::validate(&json).expect("report JSON parses");
    }

    #[test]
    fn metrics_are_order_insensitive_at_input() {
        // Report::new sorts, so shuffled inputs produce identical metrics.
        let fwd = Report::new("t", "f", vec![sample("a"), sample("b")]);
        let rev = Report::new("t", "f", vec![sample("b"), sample("a")]);
        assert_eq!(fwd.metrics().to_json(), rev.metrics().to_json());
    }

    #[test]
    fn deterministic_eq_ignores_timing() {
        let a = Report::new("t", "f", vec![sample("a")]);
        let mut cells = vec![sample("a")];
        cells[0].wall_seconds = 99.0;
        cells[0].mips = 0.0001;
        let b = Report::new("t", "f", cells);
        assert!(a.deterministic_eq(&b));
        let mut cells = vec![sample("a")];
        cells[0].instructions += 1;
        let c = Report::new("t", "f", cells);
        assert!(!a.deterministic_eq(&c));
    }
}
