//! The fabric's central contract: results are bit-identical regardless of
//! host thread count, and cores really communicate through the shared
//! window at quantum barriers.

use kahrisma_asm::build;
use kahrisma_core::{SimConfig, SimStats, TierMode};
use kahrisma_fabric::{CoreSpec, Fabric, FabricConfig, FabricOutcome, FabricStats};

fn mixed_fabric(host_threads: usize) -> Fabric {
    // Two workloads across RISC and VLIW ISAs, one core with a cycle model,
    // so the determinism check covers the full counter surface.
    let cores = vec![
        CoreSpec::parse("dct:risc").expect("dct:risc"),
        CoreSpec::parse("fft:vliw4").expect("fft:vliw4"),
        CoreSpec::parse("dct:vliw2:aie").expect("dct:vliw2:aie"),
        CoreSpec::parse("fft:risc").expect("fft:risc"),
    ];
    let config = FabricConfig { host_threads, quantum: 7_500, ..FabricConfig::default() };
    Fabric::new(cores, config).expect("fabric")
}

type CorePrint = (String, SimStats, bool, Option<u32>, Option<u64>);

fn fingerprint(stats: &FabricStats) -> (SimStats, Vec<CorePrint>, u64, Option<u64>) {
    (
        stats.aggregate,
        stats
            .cores
            .iter()
            .map(|c| (c.name.clone(), c.stats, c.halted, c.exit_code, c.total_cycles))
            .collect(),
        stats.quanta,
        stats.makespan_cycles,
    )
}

#[test]
fn host_thread_count_never_changes_results() {
    let budget = 2_000_000;
    let mut outcomes = Vec::new();
    let mut prints = Vec::new();
    for threads in [1, 4] {
        let mut fabric = mixed_fabric(threads);
        let outcome = fabric.run_for(budget).expect("run");
        outcomes.push(outcome);
        prints.push(fingerprint(&fabric.stats()));
    }
    assert_eq!(outcomes[0], outcomes[1], "outcome differs by host thread count");
    assert_eq!(prints[0], prints[1], "stats differ by host thread count");
    // Sanity: the run did real mixed-ISA work.
    let (aggregate, cores, quanta, _) = &prints[0];
    assert!(aggregate.instructions > 100_000, "{}", aggregate.instructions);
    assert!(*quanta > 1);
    assert!(cores.iter().any(|(name, ..)| name.contains("vliw")));
    assert!(cores[2].4.is_some(), "aie core must report cycles");
}

#[test]
fn resumed_runs_stay_deterministic_across_thread_counts() {
    // Split one budget into two run_for calls on a 4-thread fabric; the
    // result must match a single-shot single-threaded run.
    let mut split = mixed_fabric(4);
    split.run_for(300_000).expect("leg 1");
    split.run_for(300_000).expect("leg 2");
    let mut single = mixed_fabric(1);
    single.run_for(600_000).expect("single shot");
    assert_eq!(fingerprint(&split.stats()), fingerprint(&single.stats()));
}

/// A mixed fabric with every core pinned to one execution tier and a low
/// promotion threshold, so the compiled tier engages well inside the test
/// budget.
fn tiered_fabric(host_threads: usize, tier: TierMode) -> Fabric {
    let mut cores = vec![
        CoreSpec::parse("dct:risc").expect("dct:risc"),
        CoreSpec::parse("fft:vliw4").expect("fft:vliw4"),
        CoreSpec::parse("quicksort:risc").expect("quicksort:risc"),
    ];
    for core in &mut cores {
        core.config.tier = tier;
        core.config.tier_threshold = 4;
    }
    let config = FabricConfig { host_threads, quantum: 7_500, ..FabricConfig::default() };
    Fabric::new(cores, config).expect("fabric")
}

#[test]
fn ir_tier_fabric_is_deterministic_across_thread_counts() {
    let budget = 2_000_000;
    let mut prints = Vec::new();
    for threads in [1, 4] {
        let mut fabric = tiered_fabric(threads, TierMode::Ir);
        fabric.run_for(budget).expect("run");
        prints.push(fingerprint(&fabric.stats()));
    }
    assert_eq!(prints[0], prints[1], "IR-tier stats differ by host thread count");
    // The compiled tier really engaged inside the fabric.
    let (aggregate, ..) = &prints[0];
    assert!(aggregate.tier_promotions > 0, "tier never promoted");
    assert!(aggregate.ir_instructions > 0, "tier never executed");
}

#[test]
fn ir_tier_fabric_matches_interp_architecturally() {
    // Tier counters (promotions, IR instructions) differ across tiers by
    // design, so this compares the architectural surface per core rather
    // than the full fingerprint.
    let budget = 2_000_000;
    let mut ir = tiered_fabric(2, TierMode::Ir);
    let ir_outcome = ir.run_for(budget).expect("run ir");
    let mut interp = tiered_fabric(2, TierMode::Interp);
    let interp_outcome = interp.run_for(budget).expect("run interp");
    assert_eq!(ir_outcome, interp_outcome, "outcome differs by tier");
    let a = ir.stats();
    let b = interp.stats();
    assert_eq!(a.quanta, b.quanta, "quantum schedule differs by tier");
    assert_eq!(a.cores.len(), b.cores.len());
    for (ca, cb) in a.cores.iter().zip(&b.cores) {
        let name = &ca.name;
        assert_eq!(*name, cb.name);
        assert_eq!(ca.halted, cb.halted, "{name}");
        assert_eq!(ca.exit_code, cb.exit_code, "{name}");
        assert_eq!(ca.stats.instructions, cb.stats.instructions, "{name}");
        assert_eq!(ca.stats.operations, cb.stats.operations, "{name}");
        assert_eq!(ca.stats.nops, cb.stats.nops, "{name}");
        assert_eq!(ca.stats.mem_reads, cb.stats.mem_reads, "{name}");
        assert_eq!(ca.stats.mem_writes, cb.stats.mem_writes, "{name}");
        assert_eq!(ca.stats.taken_branches, cb.stats.taken_branches, "{name}");
        assert_eq!(ca.stats.isa_switches, cb.stats.isa_switches, "{name}");
    }
    assert!(a.aggregate.ir_instructions > 0, "IR fabric never used the tier");
    assert_eq!(b.aggregate.ir_instructions, 0, "interp fabric used the tier");
}

// The shared window lives at an address expressible as one `li`:
// 0xE000_0000 as a signed 32-bit immediate.
const SHARED_BASE: &str = "-536870912";

fn producer_src() -> String {
    format!(
        "
    .isa risc
    .text
    .global main
    .func main
    main:
        li t0, {SHARED_BASE}
        li t1, 1234
        sw t1, 0(t0)
    wait:
        lw t2, 4(t0)
        beq t2, zero, wait
        mv rv, t2
        jr ra
    .endfunc
"
    )
}

fn consumer_src() -> String {
    format!(
        "
    .isa risc
    .text
    .global main
    .func main
    main:
        li t0, {SHARED_BASE}
    poll:
        lw t1, 0(t0)
        beq t1, zero, poll
        li t2, 777
        sw t2, 4(t0)
        mv rv, t1
        jr ra
    .endfunc
"
    )
}

fn comm_fabric(host_threads: usize) -> Fabric {
    let producer = build(&[("producer.s", &producer_src())]).expect("assemble producer");
    let consumer = build(&[("consumer.s", &consumer_src())]).expect("assemble consumer");
    let cores = vec![
        CoreSpec::new("producer", producer, SimConfig::default()),
        CoreSpec::new("consumer", consumer, SimConfig::default()),
    ];
    let config = FabricConfig { host_threads, quantum: 1_000, ..FabricConfig::default() };
    Fabric::new(cores, config).expect("fabric")
}

#[test]
fn cores_communicate_through_the_shared_window() {
    for threads in [1, 2] {
        let mut fabric = comm_fabric(threads);
        let outcome = fabric.run_for(1_000_000).expect("run");
        assert_eq!(outcome, FabricOutcome::AllHalted, "handshake deadlocked");
        let stats = fabric.stats();
        assert_eq!(stats.cores[0].exit_code, Some(777), "producer saw the ack");
        assert_eq!(stats.cores[1].exit_code, Some(1234), "consumer saw the value");
        let base = fabric.config().shared_base;
        assert_eq!(fabric.shared().read_committed_word(base), 1234);
        assert_eq!(fabric.shared().read_committed_word(base + 4), 777);
        // The handshake needs at least two barrier crossings.
        assert!(stats.quanta >= 3, "quanta: {}", stats.quanta);
    }
}

#[test]
fn communication_schedule_is_thread_count_independent() {
    let mut one = comm_fabric(1);
    one.run_for(1_000_000).expect("run");
    let mut two = comm_fabric(2);
    two.run_for(1_000_000).expect("run");
    assert_eq!(fingerprint(&one.stats()), fingerprint(&two.stats()));
}
