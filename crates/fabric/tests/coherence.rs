//! Fabric tests for the modeled coherent memory system and the real
//! multi-threaded workloads: results must stay bit-identical at any host
//! thread count, the MESI-approximate model must attribute real traffic,
//! and the spawn/park/join/barrier simops must synchronize cores.

use kahrisma_asm::build;
use kahrisma_core::{SimConfig, SimError, SimStats};
use kahrisma_fabric::{
    CoherenceSample, CoherentConfig, CoreSpec, Fabric, FabricConfig, FabricOutcome, FabricStats,
    MemModel,
};

/// An SPMD fabric: `cores` copies of one `workload:isa` spec.
fn spmd(spec: &str, cores: usize, host_threads: usize, mem_model: MemModel) -> Fabric {
    let specs: Vec<CoreSpec> =
        (0..cores).map(|_| CoreSpec::parse(spec).expect("core spec")).collect();
    let config = FabricConfig { host_threads, quantum: 2_000, mem_model, ..FabricConfig::default() };
    Fabric::new(specs, config).expect("fabric")
}

type CorePrint = (String, SimStats, bool, Option<u32>);

fn fingerprint(stats: &FabricStats) -> (SimStats, Vec<CorePrint>, u64) {
    (
        stats.aggregate,
        stats
            .cores
            .iter()
            .map(|c| (c.name.clone(), c.stats, c.halted, c.exit_code))
            .collect(),
        stats.quanta,
    )
}

#[test]
fn producer_consumer_verifies_on_four_cores() {
    let mut fabric = spmd("producer_consumer:risc", 4, 1, MemModel::Ideal);
    let outcome = fabric.run_for(50_000_000).expect("run");
    assert_eq!(outcome, FabricOutcome::AllHalted);
    let stats = fabric.stats();
    assert_eq!(stats.cores[0].exit_code, Some(42), "core 0 self-check failed");
    for core in &stats.cores[1..] {
        assert_eq!(core.exit_code, Some(0), "consumer {} failed", core.name);
    }
    assert!(stats.coherence.is_none(), "ideal mode must not report coherence");
}

#[test]
fn parallel_dct_verifies_and_is_thread_count_independent() {
    let mut prints = Vec::new();
    let mut reports = Vec::new();
    for threads in [1, 3] {
        let mut fabric =
            spmd("parallel_dct:risc", 3, threads, MemModel::Coherent(CoherentConfig::default()));
        let outcome = fabric.run_for(50_000_000).expect("run");
        assert_eq!(outcome, FabricOutcome::AllHalted);
        let stats = fabric.stats();
        assert_eq!(stats.cores[0].exit_code, Some(42), "parallel result != sequential");
        prints.push(fingerprint(&stats));
        reports.push(stats.coherence.expect("coherent mode reports"));
    }
    assert_eq!(prints[0], prints[1], "functional results differ by host threads");
    assert_eq!(reports[0], reports[1], "coherence model differs by host threads");
    let total = &reports[0].total;
    assert!(total.accesses > 500, "shared traffic reached the model: {total:?}");
    assert!(total.misses > 0);
    assert!(reports[0].makespan > 0);
}

#[test]
fn contended_queue_generates_coherence_traffic_identically_across_threads() {
    let mut reports = Vec::new();
    let mut prints = Vec::new();
    let mut timelines = Vec::new();
    for threads in [1, 4] {
        let mut fabric = spmd(
            "producer_consumer:risc",
            4,
            threads,
            MemModel::Coherent(CoherentConfig::default()),
        );
        let outcome = fabric.run_for(50_000_000).expect("run");
        assert_eq!(outcome, FabricOutcome::AllHalted);
        let stats = fabric.stats();
        assert_eq!(stats.cores[0].exit_code, Some(42));
        prints.push(fingerprint(&stats));
        reports.push(stats.coherence.expect("coherent mode reports"));
        let timeline: Vec<Vec<CoherenceSample>> =
            (0..4).map(|i| fabric.coherence_timeline(i).to_vec()).collect();
        assert!(timeline.iter().all(|t| !t.is_empty()), "every core saw traffic");
        timelines.push(timeline);
    }
    assert_eq!(prints[0], prints[1], "functional results differ by host threads");
    assert_eq!(reports[0], reports[1], "coherence model differs by host threads");
    assert_eq!(timelines[0], timelines[1], "counter timelines differ by host threads");
    let total = &reports[0].total;
    // The head/tail/sum words ping-pong between all four cores.
    assert!(total.invalidations_sent > 0, "contention produced no invalidations: {total:?}");
    assert_eq!(total.invalidations_sent, total.invalidations_received);
    assert!(total.mem_cycles > 0);
    // The modeled makespan exceeds the pure instruction count of the
    // slowest core: memory stalls are really accounted.
    let slowest = reports[0]
        .cycles
        .iter()
        .copied()
        .max()
        .expect("cores");
    assert_eq!(reports[0].makespan, slowest);
}

#[test]
fn narrower_interconnect_stalls_more() {
    let run = |ports: u32| {
        let cfg = CoherentConfig { l2_ports: ports, ..CoherentConfig::default() };
        let mut fabric = spmd("producer_consumer:risc", 4, 1, MemModel::Coherent(cfg));
        fabric.run_for(50_000_000).expect("run");
        fabric.stats().coherence.expect("report")
    };
    let narrow = run(1);
    let wide = run(4);
    assert!(
        narrow.total.contention_stalls >= wide.total.contention_stalls,
        "narrow {} < wide {}",
        narrow.total.contention_stalls,
        wide.total.contention_stalls
    );
    assert_eq!(
        narrow.total.accesses, wide.total.accesses,
        "port count must not change the functional access stream"
    );
}

// The shared window base as a signed `li` immediate (0xE000_0000).
const SHARED_BASE: &str = "-536870912";

/// One SPMD program: core 0 spawns `worker` on core 1 with argument 21,
/// joins it, and returns the doubled value the worker stored in shared
/// memory; every other core parks (and halts cleanly at fabric shutdown).
fn spawn_join_src() -> String {
    format!(
        "
    .isa risc
    .text
    .global main
    .func main
    main:
        addi sp, sp, -8
        sw ra, 0(sp)
        jal core_id
        bne rv, zero, follower
        li a0, 1
        la a1, worker
        li a2, 21
        jal spawn
        li a0, 1
        jal join
        li t0, {SHARED_BASE}
        lw rv, 0(t0)
        beq zero, zero, done
    follower:
        jal park
        li rv, 0
    done:
        lw ra, 0(sp)
        addi sp, sp, 8
        jr ra
    .endfunc
    .global worker
    .func worker
    worker:
        li t0, {SHARED_BASE}
        add t1, a0, a0
        sw t1, 0(t0)
        jr ra
    .endfunc
"
    )
}

fn spawn_fabric(cores: usize, host_threads: usize) -> Fabric {
    let exe = build(&[("spmd.s", &spawn_join_src())]).expect("assemble");
    let specs: Vec<CoreSpec> = (0..cores)
        .map(|i| CoreSpec::new(format!("core{i}"), exe.clone(), SimConfig::default()))
        .collect();
    let config =
        FabricConfig { host_threads, quantum: 1_000, ..FabricConfig::default() };
    Fabric::new(specs, config).expect("fabric")
}

#[test]
fn spawn_park_join_roundtrip() {
    for threads in [1, 2] {
        let mut fabric = spawn_fabric(3, threads);
        let outcome = fabric.run_for(1_000_000).expect("run");
        assert_eq!(outcome, FabricOutcome::AllHalted, "fabric never quiesced");
        let stats = fabric.stats();
        assert_eq!(stats.cores[0].exit_code, Some(42), "join returned before the worker ran");
        // The spawned core and the never-spawned core both shut down
        // cleanly when only parked cores remained.
        assert_eq!(stats.cores[1].exit_code, Some(0));
        assert_eq!(stats.cores[2].exit_code, Some(0));
        let base = fabric.config().shared_base;
        assert_eq!(fabric.shared().read_committed_word(base), 42);
    }
}

/// Two cores joining each other can never resolve: the fabric must report
/// a deadlock instead of spinning forever.
fn mutual_join_src() -> String {
    "
    .isa risc
    .text
    .global main
    .func main
    main:
        addi sp, sp, -8
        sw ra, 0(sp)
        jal core_id
        li a0, 1
        sub a0, a0, rv
        jal join
        li rv, 0
        lw ra, 0(sp)
        addi sp, sp, 8
        jr ra
    .endfunc
"
    .to_string()
}

#[test]
fn mutual_join_is_reported_as_deadlock() {
    let exe = build(&[("deadlock.s", &mutual_join_src())]).expect("assemble");
    let specs: Vec<CoreSpec> = (0..2)
        .map(|i| CoreSpec::new(format!("core{i}"), exe.clone(), SimConfig::default()))
        .collect();
    let config = FabricConfig { quantum: 1_000, ..FabricConfig::default() };
    let mut fabric = Fabric::new(specs, config).expect("fabric");
    let err = fabric.run_for(1_000_000).expect_err("mutual join must deadlock");
    assert!(
        matches!(err.error, SimError::FabricDeadlock { .. }),
        "unexpected error: {err}"
    );
    let msg = err.to_string();
    assert!(msg.contains("deadlock"), "{msg}");
    assert!(msg.contains("Join"), "detail names the blocking op: {msg}");
}

#[test]
fn fabric_workloads_parse_via_core_specs() {
    assert!(CoreSpec::parse("producer_consumer:risc").is_ok());
    assert!(CoreSpec::parse("parallel_dct:vliw2").is_ok());
}
