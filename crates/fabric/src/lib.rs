//! Multi-core KAHRISMA fabric simulation.
//!
//! KAHRISMA is a hypermorphic *array* of encapsulated datapath elements;
//! the paper's simulator models one instruction stream. This crate scales
//! that model out, MGSim-style: a [`Fabric`] instantiates N independent
//! [`Simulator`] cores — each with its own ISA configuration, decode cache,
//! and private memory — over one barrier-synchronized
//! [`SharedMem`] window.
//!
//! # Execution model
//!
//! Time advances in fixed *quanta* of instructions. Within a quantum every
//! live core executes `run_for(quantum)` independently — optionally in
//! parallel on host threads — seeing the shared window **as of the quantum
//! start** plus its own writes. At the quantum barrier all write logs are
//! committed to the window in core-index order and the new image is
//! republished. Because nothing a core computes during a quantum depends on
//! *when* another core's slice physically ran, aggregate results are
//! **bit-identical for any `host_threads` value** — the scheduling quantum,
//! not the host, defines the interleaving.
//!
//! # Quick start
//!
//! ```
//! use kahrisma_fabric::{CoreSpec, Fabric, FabricConfig, FabricOutcome};
//!
//! let cores = vec![CoreSpec::parse("dct:risc")?, CoreSpec::parse("dct:vliw4")?];
//! let mut fabric = Fabric::new(cores, FabricConfig::default())?;
//! let outcome = fabric.run_for(10_000_000)?;
//! assert_eq!(outcome, FabricOutcome::AllHalted);
//! let stats = fabric.stats();
//! assert_eq!(stats.cores.len(), 2);
//! assert!(stats.aggregate.instructions > 0);
//! # Ok::<(), Box<dyn std::error::Error + Send + Sync>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

use kahrisma_coherent::{CoherenceReport, CoherentModel};
use kahrisma_core::{
    CycleModelKind, CycleStats, FabricOp, RunOutcome, SharedMem, SharedPort, SimConfig, SimError,
    SimStats, Simulator, StatsReport,
};
use kahrisma_elf::{DebugInfo, Executable};
use kahrisma_isa::adl::IsaId;
use kahrisma_isa::{IsaKind, abi};
use kahrisma_observe::MetricsRegistry;
use kahrisma_workloads::Workload;

pub use kahrisma_coherent::{CoherentConfig, CoreCoherence};

/// One cumulative coherence counter sample, captured at a quantum barrier.
///
/// The fabric records a per-core timeline of these under
/// [`MemModel::Coherent`] (deduplicated: a quantum without shared traffic
/// adds no sample), so observers can render counter tracks without
/// re-running the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoherenceSample {
    /// The core's modeled cycle count when the sample was taken.
    pub cycle: u64,
    /// Cumulative counters up to the sample.
    pub counters: CoreCoherence,
}

/// Default scheduling quantum: instructions per core per barrier interval.
pub const DEFAULT_QUANTUM: u64 = 50_000;

/// One core of the fabric: a program plus its simulator configuration.
#[derive(Debug, Clone)]
pub struct CoreSpec {
    /// Label used in reports, traces, and metrics (need not be unique; the
    /// core index disambiguates).
    pub name: String,
    /// The program this core executes.
    pub exe: Executable,
    /// Per-core simulator configuration (ISA family, decode cache, cycle
    /// model, …).
    pub config: SimConfig,
}

impl CoreSpec {
    /// Wraps a prebuilt executable.
    #[must_use]
    pub fn new(name: impl Into<String>, exe: Executable, config: SimConfig) -> CoreSpec {
        CoreSpec { name: name.into(), exe, config }
    }

    /// Builds a core from a `workload:isa[:model]` spec string, e.g.
    /// `dct:risc`, `aes:vliw4:doe`. The workload is compiled for the given
    /// ISA; the optional third field attaches a cycle model
    /// (`ilp`/`aie`/`doe`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown workloads, ISAs, or
    /// models, and propagates workload compilation failures.
    pub fn parse(spec: &str) -> Result<CoreSpec, String> {
        let (workload, isa, model) = Self::parse_fields(spec)?;
        let exe = workload
            .build(isa)
            .map_err(|e| format!("cannot build workload {}: {e}", workload.name()))?;
        let config = SimConfig { cycle_model: model, ..SimConfig::default() };
        Ok(CoreSpec { name: spec.to_string(), exe, config })
    }

    /// Checks a spec string for well-formedness without compiling the
    /// workload — cheap enough for argument parsing, so malformed specs are
    /// rejected with a clear message before any build work starts.
    ///
    /// # Errors
    ///
    /// The same messages as [`CoreSpec::parse`] for unknown workloads,
    /// ISAs, models, and malformed shapes.
    pub fn validate(spec: &str) -> Result<(), String> {
        Self::parse_fields(spec).map(|_| ())
    }

    /// Splits `workload:isa[:model]` into its validated fields.
    fn parse_fields(spec: &str) -> Result<(Workload, IsaKind, Option<CycleModelKind>), String> {
        let mut parts = spec.split(':');
        let workload_name = parts.next().unwrap_or_default();
        let workload = Workload::from_name(workload_name)
            .ok_or_else(|| format!("unknown workload `{workload_name}` in core spec `{spec}`"))?;
        let isa_name = parts.next().ok_or_else(|| {
            format!("core spec `{spec}` must be workload:isa[:model], e.g. dct:risc")
        })?;
        let isa = IsaKind::ALL
            .into_iter()
            .find(|k| k.name() == isa_name)
            .ok_or_else(|| format!("unknown isa `{isa_name}` in core spec `{spec}`"))?;
        let model = match parts.next() {
            None => None,
            Some("ilp") => Some(CycleModelKind::Ilp),
            Some("aie") => Some(CycleModelKind::Aie),
            Some("doe") => Some(CycleModelKind::Doe),
            Some(other) => return Err(format!("unknown model `{other}` in core spec `{spec}`")),
        };
        if let Some(extra) = parts.next() {
            return Err(format!("trailing `{extra}` in core spec `{spec}`"));
        }
        Ok((workload, isa, model))
    }
}

/// Which memory system the fabric models.
///
/// The *functional* path is identical in both modes: values always flow
/// through the barrier-committed [`SharedMem`] window, so switching the
/// model never changes program results — only the timing figures and
/// coherence counters the fabric reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemModel {
    /// No modeled interconnect: shared accesses are free.
    #[default]
    Ideal,
    /// Per-core MESI-approximate L1s over a port-arbitrated shared L2
    /// (see [`kahrisma_coherent`]).
    Coherent(CoherentConfig),
}

/// Fabric-wide configuration.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Instructions each core executes between barriers. Changing the
    /// quantum changes the communication interleaving (and therefore,
    /// legitimately, results of communicating programs); changing
    /// `host_threads` never does.
    pub quantum: u64,
    /// Host worker threads executing core slices; purely a performance
    /// knob.
    pub host_threads: usize,
    /// Base address of the shared window every core sees.
    pub shared_base: u32,
    /// Length of the shared window in bytes.
    pub shared_len: u32,
    /// Restart a core from its load-time state when it halts (throughput
    /// benchmarking); off, a halted core simply leaves the schedule.
    pub restart_halted: bool,
    /// The memory system modeled for shared-window traffic.
    pub mem_model: MemModel,
}

impl Default for FabricConfig {
    fn default() -> FabricConfig {
        FabricConfig {
            quantum: DEFAULT_QUANTUM,
            host_threads: 1,
            shared_base: kahrisma_core::DEFAULT_SHARED_BASE,
            shared_len: kahrisma_core::DEFAULT_SHARED_LEN,
            restart_halted: false,
            mem_model: MemModel::Ideal,
        }
    }
}

/// Why [`Fabric::run_for`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricOutcome {
    /// Every core halted (impossible under `restart_halted`).
    AllHalted,
    /// At least one core still had work when the per-core budget ran out.
    BudgetExhausted,
}

/// A simulation fault, attributed to the core that raised it.
#[derive(Debug)]
pub struct FabricError {
    /// Index of the faulting core.
    pub core: usize,
    /// Label of the faulting core.
    pub name: String,
    /// The underlying simulator error.
    pub error: SimError,
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core {} ({}): {}", self.core, self.name, self.error)
    }
}

impl std::error::Error for FabricError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Final state and statistics of one core, as reported by
/// [`Fabric::stats`]. Counters cover **all** runs of the core, including
/// completed runs folded in by `restart_halted`.
#[derive(Debug, Clone)]
pub struct CoreReport {
    /// The core's label from its [`CoreSpec`].
    pub name: String,
    /// Accumulated functional counters (current run plus completed runs).
    pub stats: SimStats,
    /// `true` when the core is currently halted.
    pub halted: bool,
    /// Exit code of the most recent completed run, if any.
    pub exit_code: Option<u32>,
    /// Completed runs this core was restarted after.
    pub restarts: u64,
    /// Cycle-model results of the current run, when a model is attached.
    pub cycles: Option<CycleStats>,
    /// Model cycles accumulated across all runs (current plus completed).
    pub total_cycles: Option<u64>,
}

/// Aggregate statistics of a fabric run.
#[derive(Debug, Clone)]
pub struct FabricStats {
    /// Functional counters summed over all cores.
    pub aggregate: SimStats,
    /// Per-core breakdown, in core-index order.
    pub cores: Vec<CoreReport>,
    /// Barrier intervals executed so far.
    pub quanta: u64,
    /// Fabric makespan in model cycles — the slowest core's accumulated
    /// cycle count — when every core has a cycle model attached.
    pub makespan_cycles: Option<u64>,
    /// Parallel critical path: per quantum, the slowest core slice's
    /// measured host time, summed over quanta. This is the fabric's wall
    /// time on a host with at least as many idle CPUs as cores; measure
    /// with `host_threads = 1` for accurate per-slice timing.
    pub critical_path: Duration,
    /// Actual host wall time spent inside [`Fabric::run_for`].
    pub wall: Duration,
    /// Coherence counters and modeled cycles, when the fabric runs with
    /// [`MemModel::Coherent`].
    pub coherence: Option<CoherenceReport>,
}

impl FabricStats {
    /// Fills a [`StatsReport`] with the fabric-level summary fields
    /// (`cores`, `quanta`, aggregate counters, makespan).
    pub fn report_into(&self, report: &mut StatsReport) {
        report.push_str("kind", "fabric");
        report.push_u64("cores", self.cores.len() as u64);
        report.push_u64("quanta", self.quanta);
        report.counters(&self.aggregate);
        report.ratios(&self.aggregate);
        if let Some(makespan) = self.makespan_cycles {
            report.push_u64("makespan_cycles", makespan);
        }
        let restarts: u64 = self.cores.iter().map(|c| c.restarts).sum();
        if restarts > 0 {
            report.push_u64("restarts", restarts);
        }
        if let Some(coherence) = &self.coherence {
            report.push_u64("coherent_makespan_cycles", coherence.makespan);
            report.push_u64("coherent_accesses", coherence.total.accesses);
            report.push_u64("coherent_misses", coherence.total.misses);
            report.push_u64("coherent_invalidations", coherence.total.invalidations_sent);
            report.push_u64("coherent_upgrades", coherence.total.upgrades);
            report.push_u64("coherent_writebacks", coherence.total.writebacks);
            report.push_u64("coherent_contention_stalls", coherence.total.contention_stalls);
            report.push_u64("coherent_mem_cycles", coherence.total.mem_cycles);
        }
    }
}

struct Core {
    name: String,
    sim: Simulator,
    /// Counters of completed (restarted-past) runs.
    completed: SimStats,
    completed_cycles: u64,
    restarts: u64,
    exit_code: Option<u32>,
    /// The program's debug info, kept for `spawn` resolution: the entry
    /// address decides the ISA the target core resumes in.
    debug: DebugInfo,
    /// Address of the linked `park` stub, if present; a spawned core gets
    /// it as return address so returning from the entry function re-parks.
    park_addr: Option<u32>,
}

impl Core {
    fn total_instructions(&self) -> u64 {
        self.completed.instructions + self.sim.stats().instructions
    }

    fn report(&self) -> CoreReport {
        let mut stats = self.completed;
        stats.accumulate(self.sim.stats());
        let cycles = self.sim.cycle_stats();
        let total_cycles = cycles.as_ref().map(|c| self.completed_cycles + c.cycles);
        CoreReport {
            name: self.name.clone(),
            stats,
            halted: self.sim.halted(),
            exit_code: self.exit_code,
            restarts: self.restarts,
            cycles,
            total_cycles,
        }
    }
}

/// An N-core fabric: independent simulators over one shared window,
/// advanced in deterministic quanta.
pub struct Fabric {
    cores: Vec<Core>,
    shared: SharedMem,
    config: FabricConfig,
    /// The coherence model, when [`FabricConfig::mem_model`] asks for one;
    /// fed each core's access log at barriers, in core-index order.
    model: Option<CoherentModel>,
    /// Per-core cumulative counter samples, one per traffic-bearing
    /// quantum; stays empty under [`MemModel::Ideal`].
    coh_timeline: Vec<Vec<CoherenceSample>>,
    quanta: u64,
    critical_path: Duration,
    wall: Duration,
}

impl Fabric {
    /// Builds the fabric: loads one simulator per spec and attaches each to
    /// a fresh port of the shared window.
    ///
    /// # Errors
    ///
    /// `"fabric needs at least one core"` for an empty spec list;
    /// otherwise propagates simulator load errors, attributed to the core.
    pub fn new(specs: Vec<CoreSpec>, config: FabricConfig) -> Result<Fabric, String> {
        if specs.is_empty() {
            return Err("fabric needs at least one core".to_string());
        }
        let shared = SharedMem::new(config.shared_base, config.shared_len);
        let n = specs.len();
        let coherent = matches!(config.mem_model, MemModel::Coherent(_));
        let mut cores = Vec::with_capacity(n);
        for (index, spec) in specs.into_iter().enumerate() {
            let mut sim = Simulator::new(&spec.exe, spec.config)
                .map_err(|e| format!("core {index} ({}): {e}", spec.name))?;
            if n > 1 {
                sim.set_fabric_identity(index as u32, n as u32);
            }
            let mut port = shared.port();
            port.set_trace(coherent);
            sim.attach_shared_port(port);
            let park_addr =
                spec.exe.debug.funcs.iter().find(|f| f.name == "park").map(|f| f.start);
            cores.push(Core {
                name: spec.name,
                sim,
                completed: SimStats::new(),
                completed_cycles: 0,
                restarts: 0,
                exit_code: None,
                debug: spec.exe.debug,
                park_addr,
            });
        }
        let model = match config.mem_model {
            MemModel::Coherent(cfg) => Some(CoherentModel::new(n, cfg)),
            MemModel::Ideal => None,
        };
        Ok(Fabric {
            cores,
            shared,
            config,
            model,
            coh_timeline: vec![Vec::new(); n],
            quanta: 0,
            critical_path: Duration::ZERO,
            wall: Duration::ZERO,
        })
    }

    /// Number of cores.
    #[must_use]
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// The configuration the fabric was built with.
    #[must_use]
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// A core's label.
    #[must_use]
    pub fn core_name(&self, index: usize) -> &str {
        &self.cores[index].name
    }

    /// A core's simulator (stats, cycle model, architectural state).
    #[must_use]
    pub fn simulator(&self, index: usize) -> &Simulator {
        &self.cores[index].sim
    }

    /// Mutable access to a core's simulator — attach observers or trace
    /// sinks here **before** running.
    pub fn simulator_mut(&mut self, index: usize) -> &mut Simulator {
        &mut self.cores[index].sim
    }

    /// The shared window (committed image).
    #[must_use]
    pub fn shared(&self) -> &SharedMem {
        &self.shared
    }

    /// This core's coherence counter timeline: one cumulative sample per
    /// quantum in which the model observed shared traffic. Empty under
    /// [`MemModel::Ideal`].
    ///
    /// # Panics
    ///
    /// Panics when `core` is out of range.
    #[must_use]
    pub fn coherence_timeline(&self, core: usize) -> &[CoherenceSample] {
        &self.coh_timeline[core]
    }

    /// Returns every core to its load-time state and clears the shared
    /// window, the scheduling bookkeeping, and the accumulated timings.
    /// Decode caches stay warm ([`Simulator::reset`] semantics), so a reset
    /// fabric re-runs at steady-state speed.
    pub fn reset(&mut self) {
        self.shared = SharedMem::new(self.config.shared_base, self.config.shared_len);
        for core in &mut self.cores {
            core.sim.reset();
            if let Some(port) = core.sim.shared_port_mut() {
                self.shared.publish(port);
                let _ = port.take_accesses();
            }
            core.completed = SimStats::new();
            core.completed_cycles = 0;
            core.restarts = 0;
            core.exit_code = None;
        }
        self.model = self.model.as_ref().map(|m| CoherentModel::new(self.cores.len(), *m.config()));
        for samples in &mut self.coh_timeline {
            samples.clear();
        }
        self.quanta = 0;
        self.critical_path = Duration::ZERO;
        self.wall = Duration::ZERO;
    }

    /// Runs every core for up to `budget` further instructions (per core),
    /// in quantum steps with barrier synchronization.
    ///
    /// Callable repeatedly; each call extends the schedule. Results are
    /// independent of [`FabricConfig::host_threads`].
    ///
    /// # Errors
    ///
    /// Returns the fault of the lowest-indexed faulting core. The fabric
    /// must not be run further after an error.
    pub fn run_for(&mut self, budget: u64) -> Result<FabricOutcome, FabricError> {
        let start = Instant::now();
        let baselines: Vec<u64> = self.cores.iter().map(Core::total_instructions).collect();
        loop {
            // Deterministic bookkeeping between quanta: restart halted
            // cores (throughput mode) with a freshly published window.
            if self.config.restart_halted {
                for core in &mut self.cores {
                    if core.sim.halted() {
                        core.exit_code = Some(core.sim.state().exit_code);
                        core.completed.accumulate(core.sim.stats());
                        core.completed_cycles +=
                            core.sim.cycle_stats().map_or(0, |c| c.cycles);
                        core.sim.reset();
                        if let Some(port) = core.sim.shared_port_mut() {
                            self.shared.publish(port);
                        }
                        core.restarts += 1;
                    }
                }
            }

            // Plan the quantum: how many instructions each core may run.
            // Fabric-stalled cores cannot execute until the barrier resolves
            // their pending operation, so they get an empty slice.
            let slices: Vec<u64> = self
                .cores
                .iter()
                .zip(&baselines)
                .map(|(core, &base)| {
                    if core.sim.halted() || core.sim.state().fabric_stalled() {
                        return 0;
                    }
                    let done = core.total_instructions().saturating_sub(base);
                    budget.saturating_sub(done).min(self.config.quantum)
                })
                .collect();
            if slices.iter().all(|&s| s == 0) {
                if self.handle_quiescence()? {
                    continue;
                }
                break;
            }

            let before: Vec<u64> = self.cores.iter().map(Core::total_instructions).collect();
            self.execute_quantum(&slices)?;
            self.quanta += 1;

            // Barrier: commit write logs in core-index order, feed the
            // coherence model, resolve pending fabric operations against the
            // committed image, then republish.
            for core in &mut self.cores {
                if let Some(port) = core.sim.shared_port_mut() {
                    self.shared.commit(port);
                }
            }
            if let Some(model) = &mut self.model {
                for (index, core) in self.cores.iter_mut().enumerate() {
                    let executed = core.total_instructions().saturating_sub(before[index]);
                    let accesses = core
                        .sim
                        .shared_port_mut()
                        .map(SharedPort::take_accesses)
                        .unwrap_or_default();
                    model.core_quantum(index, executed, &accesses);
                }
            }
            self.resolve_fabric_ops();
            if let Some(model) = &self.model {
                // Sampled after FabricOp resolution so barrier-resolved
                // atomics land in the same quantum's sample.
                for (index, samples) in self.coh_timeline.iter_mut().enumerate() {
                    let counters = model.counters()[index];
                    if samples.last().is_none_or(|s| s.counters != counters) {
                        samples.push(CoherenceSample {
                            cycle: model.core_cycles(index),
                            counters,
                        });
                    }
                }
            }
            for core in &mut self.cores {
                if let Some(port) = core.sim.shared_port_mut() {
                    self.shared.publish(port);
                }
            }
            for core in &mut self.cores {
                if core.sim.halted() && core.exit_code.is_none() {
                    core.exit_code = Some(core.sim.state().exit_code);
                }
            }
        }
        self.wall += start.elapsed();
        if self.cores.iter().all(|c| c.sim.halted()) {
            Ok(FabricOutcome::AllHalted)
        } else {
            Ok(FabricOutcome::BudgetExhausted)
        }
    }

    /// Called when no core has a runnable slice. Distinguishes the three
    /// possible reasons: everyone halted / out of budget (return
    /// `Ok(false)`, ending the scheduling loop), every live core parked
    /// (auto-halt them with exit code 0 and return `Ok(true)` to continue),
    /// or every live core stalled on an unresolvable operation (a genuine
    /// deadlock, reported as an error on the lowest stalled core).
    fn handle_quiescence(&mut self) -> Result<bool, FabricError> {
        let stalled: Vec<usize> = self
            .cores
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.sim.halted() && c.sim.state().fabric_stalled())
            .map(|(i, _)| i)
            .collect();
        let live = self.cores.iter().filter(|c| !c.sim.halted()).count();
        if stalled.is_empty() || stalled.len() != live {
            // All halted, or a live core merely ran out of budget.
            return Ok(false);
        }
        if stalled
            .iter()
            .all(|&i| self.cores[i].sim.state().pending_fabric == Some(FabricOp::Park))
        {
            // Only parked cores remain and nobody is left to spawn them:
            // the fabric's work is done, shut them down cleanly.
            for &i in &stalled {
                let state = self.cores[i].sim.state_mut();
                state.pending_fabric = None;
                state.halted = true;
                state.exit_code = 0;
                self.cores[i].exit_code = Some(0);
            }
            return Ok(true);
        }
        let detail = stalled
            .iter()
            .map(|&i| {
                let op = self.cores[i].sim.state().pending_fabric.expect("stalled core pends");
                format!("core {i} waits on {op:?}")
            })
            .collect::<Vec<_>>()
            .join("; ");
        let core = stalled[0];
        Err(FabricError {
            core,
            name: self.cores[core].name.clone(),
            error: SimError::FabricDeadlock { detail },
        })
    }

    /// Resolves pending fabric operations at a quantum barrier, in
    /// core-index order, against the freshly committed shared image. Runs
    /// between [`SharedMem::commit`] and [`SharedMem::publish`] so atomic
    /// results are visible to every core in the next quantum.
    fn resolve_fabric_ops(&mut self) {
        let n = self.cores.len();
        for index in 0..n {
            let Some(pending) = self.cores[index].sim.state().pending_fabric else {
                continue;
            };
            match pending {
                FabricOp::Atomic { rd, op, addr, operand } => {
                    let old = self.shared.read_committed_word(addr);
                    self.shared.write_committed_word(addr, op.apply(old, operand));
                    if let Some(model) = &mut self.model {
                        // The atomic's read-modify-write bypasses the port;
                        // account it as one write access by this core.
                        let word = addr.wrapping_sub(self.shared.base()) >> 2;
                        model.core_quantum(index, 0, &[(word << 1) | 1]);
                    }
                    let state = self.cores[index].sim.state_mut();
                    state.write_reg(rd, old);
                    state.pending_fabric = None;
                }
                FabricOp::Spawn { core, entry, arg } => {
                    let target = core as usize;
                    let parked = target < n
                        && !self.cores[target].sim.halted()
                        && self.cores[target].sim.state().pending_fabric == Some(FabricOp::Park);
                    if parked {
                        let park_addr = self.cores[target].park_addr;
                        let isa = self.cores[target].debug.isa_for_addr(entry);
                        let state = self.cores[target].sim.state_mut();
                        state.pending_fabric = None;
                        state.ip = entry;
                        if let Some(id) = isa {
                            state.active_isa = IsaId::new(id);
                        }
                        state.spawn_arg = arg;
                        state.write_reg(abi::A0, arg);
                        if let Some(ra) = park_addr {
                            state.write_reg(abi::RA, ra);
                        }
                        self.cores[index].sim.state_mut().pending_fabric = None;
                    }
                    // Not parked (running, halted, or out of range): the
                    // spawner stays stalled until the target parks; a fully
                    // stalled fabric is reported as a deadlock.
                }
                FabricOp::Park => {} // resolved by a spawn or fabric shutdown
                FabricOp::Join { core } => {
                    let target = core as usize;
                    let finished = target >= n
                        || self.cores[target].sim.halted()
                        || self.cores[target].sim.state().pending_fabric == Some(FabricOp::Park);
                    if finished {
                        self.cores[index].sim.state_mut().pending_fabric = None;
                    }
                }
                FabricOp::Barrier => {} // group resolution below
            }
        }
        // Barrier releases when every live, non-parked core waits on it.
        let mut any_barrier = false;
        let mut all_at_barrier = true;
        for core in &self.cores {
            if core.sim.halted() {
                continue;
            }
            match core.sim.state().pending_fabric {
                Some(FabricOp::Barrier) => any_barrier = true,
                Some(FabricOp::Park) => {}
                _ => all_at_barrier = false,
            }
        }
        if any_barrier && all_at_barrier {
            for core in &mut self.cores {
                if core.sim.state().pending_fabric == Some(FabricOp::Barrier) {
                    core.sim.state_mut().pending_fabric = None;
                }
            }
        }
    }

    /// Executes one quantum's slices, possibly on several host threads, and
    /// accrues the critical path (the slowest slice's host time).
    fn execute_quantum(&mut self, slices: &[u64]) -> Result<(), FabricError> {
        let threads = self.config.host_threads.clamp(1, self.cores.len());
        let mut results: Vec<Option<(Result<RunOutcome, SimError>, Duration)>> = Vec::new();
        if threads == 1 {
            for (core, &slice) in self.cores.iter_mut().zip(slices) {
                results.push((slice > 0).then(|| {
                    let t0 = Instant::now();
                    (core.sim.run_for(slice), t0.elapsed())
                }));
            }
        } else {
            let chunk = self.cores.len().div_ceil(threads);
            let core_chunks = self.cores.chunks_mut(chunk);
            let slice_chunks = slices.chunks(chunk);
            let chunk_results = std::thread::scope(|scope| {
                let handles: Vec<_> = core_chunks
                    .zip(slice_chunks)
                    .map(|(cores, slices)| {
                        scope.spawn(move || {
                            cores
                                .iter_mut()
                                .zip(slices)
                                .map(|(core, &slice)| {
                                    (slice > 0).then(|| {
                                        let t0 = Instant::now();
                                        (core.sim.run_for(slice), t0.elapsed())
                                    })
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("fabric worker panicked"))
                    .collect::<Vec<_>>()
            });
            results = chunk_results.into_iter().flatten().collect();
        }

        let mut slowest = Duration::ZERO;
        for (index, result) in results.into_iter().enumerate() {
            let Some((outcome, elapsed)) = result else { continue };
            slowest = slowest.max(elapsed);
            if let Err(error) = outcome {
                return Err(FabricError {
                    core: index,
                    name: self.cores[index].name.clone(),
                    error,
                });
            }
        }
        self.critical_path += slowest;
        Ok(())
    }

    /// Aggregate and per-core statistics at this point of the run.
    #[must_use]
    pub fn stats(&self) -> FabricStats {
        let cores: Vec<CoreReport> = self.cores.iter().map(Core::report).collect();
        let mut aggregate = SimStats::new();
        for core in &cores {
            aggregate.accumulate(&core.stats);
        }
        let makespan_cycles = cores
            .iter()
            .map(|c| c.total_cycles)
            .collect::<Option<Vec<u64>>>()
            .and_then(|v| v.into_iter().max());
        FabricStats {
            aggregate,
            cores,
            quanta: self.quanta,
            makespan_cycles,
            critical_path: self.critical_path,
            wall: self.wall,
            coherence: self.model.as_ref().map(CoherentModel::report),
        }
    }

    /// Folds the run into a fabric-level metrics registry: aggregate and
    /// per-core instruction/operation/cycle counters plus scheduling
    /// gauges, deterministically named `core<i>.<metric>`.
    #[must_use]
    pub fn metrics(&self) -> MetricsRegistry {
        let stats = self.stats();
        let mut registry = MetricsRegistry::new();
        registry.set_counter("fabric.cores", stats.cores.len() as u64);
        registry.set_counter("fabric.quanta", stats.quanta);
        registry.set_counter("fabric.instructions", stats.aggregate.instructions);
        registry.set_counter("fabric.operations", stats.aggregate.operations);
        registry.set_counter(
            "fabric.restarts",
            stats.cores.iter().map(|c| c.restarts).sum::<u64>(),
        );
        if let Some(makespan) = stats.makespan_cycles {
            registry.set_counter("fabric.makespan_cycles", makespan);
        }
        if let Some(coherence) = &stats.coherence {
            registry.set_counter("fabric.coherent_makespan_cycles", coherence.makespan);
            registry.set_counter("fabric.coherent_invalidations", coherence.total.invalidations_sent);
            registry.set_counter("fabric.coherent_writebacks", coherence.total.writebacks);
            registry
                .set_counter("fabric.coherent_contention_stalls", coherence.total.contention_stalls);
            for (index, c) in coherence.cores.iter().enumerate() {
                registry.set_counter(&format!("core{index}.coherent_accesses"), c.accesses);
                registry.set_counter(&format!("core{index}.coherent_misses"), c.misses);
                registry.set_counter(
                    &format!("core{index}.coherent_invalidations"),
                    c.invalidations_sent,
                );
                registry.set_counter(&format!("core{index}.coherent_mem_cycles"), c.mem_cycles);
                registry
                    .set_counter(&format!("core{index}.coherent_cycles"), coherence.cycles[index]);
            }
        }
        for (index, core) in stats.cores.iter().enumerate() {
            registry.set_counter(&format!("core{index}.instructions"), core.stats.instructions);
            registry.set_counter(&format!("core{index}.operations"), core.stats.operations);
            registry.set_counter(&format!("core{index}.mem_reads"), core.stats.mem_reads);
            registry.set_counter(&format!("core{index}.mem_writes"), core.stats.mem_writes);
            registry.set_counter(&format!("core{index}.restarts"), core.restarts);
            if let Some(total) = core.total_cycles {
                registry.set_counter(&format!("core{index}.cycles"), total);
            }
            registry.set_gauge(
                &format!("core{index}.halted"),
                if core.halted { 1.0 } else { 0.0 },
            );
        }
        registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_core_fabric(threads: usize) -> Fabric {
        let cores = vec![
            CoreSpec::parse("dct:risc").expect("dct"),
            CoreSpec::parse("dct:vliw4").expect("dct vliw"),
        ];
        let config = FabricConfig { host_threads: threads, quantum: 5_000, ..FabricConfig::default() };
        Fabric::new(cores, config).expect("fabric")
    }

    #[test]
    fn all_cores_halt_with_expected_exit_codes() {
        let mut fabric = two_core_fabric(1);
        let outcome = fabric.run_for(50_000_000).expect("run");
        assert_eq!(outcome, FabricOutcome::AllHalted);
        let stats = fabric.stats();
        let expect = kahrisma_workloads::Workload::Dct.expected_exit();
        for core in &stats.cores {
            assert!(core.halted);
            assert_eq!(core.exit_code, Some(expect), "core {}", core.name);
        }
        assert_eq!(
            stats.aggregate.instructions,
            stats.cores.iter().map(|c| c.stats.instructions).sum::<u64>()
        );
        assert!(stats.quanta > 1, "expected several barrier intervals");
    }

    #[test]
    fn empty_fabric_is_rejected() {
        assert!(Fabric::new(vec![], FabricConfig::default()).is_err());
    }

    #[test]
    fn spec_parser_accepts_models_and_rejects_junk() {
        assert!(CoreSpec::parse("dct:risc").is_ok());
        let with_model = CoreSpec::parse("fft:vliw2:doe").expect("model spec");
        assert_eq!(with_model.config.cycle_model, Some(CycleModelKind::Doe));
        assert!(CoreSpec::parse("dct").is_err(), "missing isa");
        assert!(CoreSpec::parse("nope:risc").is_err());
        assert!(CoreSpec::parse("dct:nope").is_err());
        assert!(CoreSpec::parse("dct:risc:warp").is_err());
        assert!(CoreSpec::parse("dct:risc:doe:x").is_err());
    }

    #[test]
    fn budget_exhaustion_pauses_and_resumes() {
        let mut fabric = two_core_fabric(1);
        let outcome = fabric.run_for(10_000).expect("first leg");
        assert_eq!(outcome, FabricOutcome::BudgetExhausted);
        let mid = fabric.stats();
        assert_eq!(mid.cores[0].stats.instructions, 10_000);
        let outcome = fabric.run_for(u64::MAX).expect("second leg");
        assert_eq!(outcome, FabricOutcome::AllHalted);
    }

    #[test]
    fn reset_reruns_bit_identically_with_a_warm_cache() {
        let mut fabric = two_core_fabric(1);
        fabric.run_for(u64::MAX).expect("first run");
        let first = fabric.stats();
        fabric.reset();
        let cleared = fabric.stats();
        assert_eq!(cleared.aggregate.instructions, 0);
        assert_eq!(cleared.quanta, 0);
        assert!(!cleared.cores[0].halted);
        fabric.run_for(u64::MAX).expect("second run");
        let second = fabric.stats();
        assert_eq!(first.aggregate.instructions, second.aggregate.instructions);
        assert_eq!(first.quanta, second.quanta);
        for (a, b) in first.cores.iter().zip(&second.cores) {
            assert_eq!(a.exit_code, b.exit_code);
            assert_eq!(a.stats.instructions, b.stats.instructions);
        }
        // The decode cache survived the reset: nothing was re-decoded.
        assert_eq!(second.aggregate.detect_decodes, 0);
    }

    #[test]
    fn restart_halted_keeps_cores_busy_and_counts_runs() {
        let cores = vec![CoreSpec::parse("dct:risc").expect("dct")];
        let config = FabricConfig { restart_halted: true, ..FabricConfig::default() };
        let mut fabric = Fabric::new(cores, config).expect("fabric");
        let single_run = {
            let mut probe = Fabric::new(
                vec![CoreSpec::parse("dct:risc").expect("dct")],
                FabricConfig::default(),
            )
            .expect("probe");
            probe.run_for(u64::MAX).expect("probe run");
            probe.stats().aggregate.instructions
        };
        let outcome = fabric.run_for(single_run * 3).expect("run");
        assert_eq!(outcome, FabricOutcome::BudgetExhausted);
        let stats = fabric.stats();
        assert!(stats.cores[0].restarts >= 2, "restarts: {}", stats.cores[0].restarts);
        assert_eq!(
            stats.cores[0].exit_code,
            Some(kahrisma_workloads::Workload::Dct.expected_exit())
        );
        let metrics = fabric.metrics();
        assert!(metrics.counter("fabric.restarts") >= 2);
        assert_eq!(metrics.counter("fabric.instructions"), stats.aggregate.instructions);
    }
}
