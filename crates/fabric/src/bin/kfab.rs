//! `kfab` — multi-core KAHRISMA fabric runs from the command line.
//!
//! ```text
//! kfab [options]
//!   --core W:ISA[:MODEL]   add one core (repeatable), e.g. --core dct:risc
//!   --cores N              replicate the single --core spec to N cores
//!   --quantum N            instructions per core between barriers (default 50000)
//!   --host-threads N       worker threads executing core slices (default 1)
//!   --max-instr N          per-core instruction budget (default 1e9)
//!   --tier interp|ir       per-core execution tier (default ir)
//!   --tier-threshold N     dispatches before a superblock compiles (default 16)
//!   --restart              restart halted cores (throughput mode)
//!   --shared-len N         shared-window length in bytes (default 65536)
//!   --mem ideal|coherent   shared-memory timing model (default ideal)
//!   --l2-ports N           coherent: interconnect ports into the L2 (default 1)
//!   --line-bytes N         coherent: coherence line size, power of two (default 32)
//!   --l1-lines N           coherent: lines per private L1 (default 64)
//!   --mem-delay N          coherent: main-memory delay in cycles (default 18)
//!   --json FILE|-          unified stats JSON ("-" = stdout)
//!   --metrics FILE|-       fabric metrics registry JSON ("-" = stderr)
//!   --observe FILE         per-core Perfetto trace JSON
//!   --observe-capacity N   per-core event ring capacity (default 200000)
//!   --stats                per-core summary table on stderr
//! ```
//!
//! Results are bit-identical for any `--host-threads` value: the scheduling
//! quantum defines the interleaving, the host threads only execute it. The
//! memory model is timing-only — `--mem coherent` adds MESI-approximate
//! coherence accounting without changing functional results.
//!
//! Exit codes: 0 all cores halted, 124 budget exhausted, 2 usage error,
//! 3 simulation fault.

use std::process::ExitCode;

use kahrisma_core::args::{ArgList, GeometryArgs};
use kahrisma_core::{STATS_SCHEMA_VERSION, SimConfig, StatsReport, TierMode};
use kahrisma_fabric::{CoherentConfig, CoreSpec, Fabric, FabricConfig, FabricOutcome, MemModel};
use kahrisma_observe::{Collector, Shared, perfetto};

#[derive(Debug)]
struct Options {
    specs: Vec<String>,
    cores: Option<usize>,
    quantum: u64,
    host_threads: usize,
    max_instr: u64,
    tier: TierMode,
    tier_threshold: u32,
    restart: bool,
    shared_len: u32,
    mem_model: MemModel,
    json: Option<String>,
    metrics: Option<String>,
    observe: Option<String>,
    observe_capacity: usize,
    stats: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            specs: Vec::new(),
            cores: None,
            quantum: kahrisma_fabric::DEFAULT_QUANTUM,
            host_threads: 1,
            max_instr: 1_000_000_000,
            tier: TierMode::Ir,
            tier_threshold: SimConfig::default().tier_threshold,
            restart: false,
            shared_len: kahrisma_core::DEFAULT_SHARED_LEN,
            mem_model: MemModel::Ideal,
            json: None,
            metrics: None,
            observe: None,
            observe_capacity: 200_000,
            stats: false,
        }
    }
}

fn parse_args(mut args: ArgList) -> Result<Options, String> {
    let mut options = Options::default();
    let mut mem_coherent = false;
    let mut geometry = GeometryArgs::default();
    while let Some(arg) = args.next_arg() {
        if geometry.accept(&arg, &mut args)? {
            continue;
        }
        match arg.as_str() {
            "--core" => {
                // Malformed specs are rejected here, before any workload
                // compiles, so the error names the offending spec directly.
                let spec = args.value("--core")?;
                CoreSpec::validate(&spec)?;
                options.specs.push(spec);
            }
            "--cores" => options.cores = Some(args.parse_value("--cores")?),
            "--quantum" => options.quantum = args.parse_value("--quantum")?,
            "--host-threads" => options.host_threads = args.parse_value("--host-threads")?,
            "--max-instr" => options.max_instr = args.parse_value("--max-instr")?,
            "--tier" => {
                options.tier = match args.value("--tier")?.as_str() {
                    "interp" => TierMode::Interp,
                    "ir" => TierMode::Ir,
                    other => return Err(format!("unknown tier `{other}`")),
                };
            }
            "--tier-threshold" => options.tier_threshold = args.parse_value("--tier-threshold")?,
            "--restart" => options.restart = true,
            "--shared-len" => options.shared_len = args.parse_value("--shared-len")?,
            "--mem" => {
                mem_coherent = match args.value("--mem")?.as_str() {
                    "ideal" => false,
                    "coherent" => true,
                    other => {
                        return Err(format!("unknown memory model `{other}` (ideal or coherent)"));
                    }
                };
            }
            "--json" => options.json = Some(args.value("--json")?),
            "--metrics" => options.metrics = Some(args.value("--metrics")?),
            "--observe" => options.observe = Some(args.value("--observe")?),
            "--observe-capacity" => {
                options.observe_capacity = args.parse_value("--observe-capacity")?;
            }
            "--stats" => options.stats = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if options.specs.is_empty() {
        return Err("at least one --core W:ISA[:MODEL] is required".to_string());
    }
    if let Some(n) = options.cores {
        if options.specs.len() != 1 {
            return Err("--cores replicates a single --core spec; give exactly one".to_string());
        }
        if n == 0 {
            return Err("--cores must be at least 1".to_string());
        }
    }
    if options.quantum == 0 {
        return Err("--quantum must be at least 1".to_string());
    }
    if options.host_threads == 0 {
        return Err("--host-threads must be at least 1".to_string());
    }
    if options.tier_threshold == 0 {
        return Err("--tier-threshold must be at least 1".to_string());
    }
    if mem_coherent {
        let cfg = geometry.single()?.map_or_else(CoherentConfig::default, CoherentConfig::from);
        options.mem_model = MemModel::Coherent(cfg);
    } else if geometry.any() {
        return Err(
            "--l2-ports/--line-bytes/--l1-lines/--mem-delay require --mem coherent".to_string()
        );
    }
    Ok(options)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: kfab --core W:ISA[:MODEL] [--core ...] [--cores N] [--quantum N]\n\
         \x20           [--host-threads N] [--max-instr N] [--tier interp|ir]\n\
         \x20           [--tier-threshold N] [--restart] [--shared-len N]\n\
         \x20           [--mem ideal|coherent] [--l2-ports N] [--line-bytes N]\n\
         \x20           [--l1-lines N] [--mem-delay N]\n\
         \x20           [--json FILE|-] [--metrics FILE|-] [--observe FILE]\n\
         \x20           [--observe-capacity N] [--stats]"
    );
    ExitCode::from(2)
}

fn write_output(what: &str, path: &str, json: &str) -> Result<(), String> {
    match path {
        "-" if what == "json" => {
            println!("{json}");
            Ok(())
        }
        "-" => {
            eprintln!("{json}");
            Ok(())
        }
        _ => std::fs::write(path, json).map_err(|e| format!("cannot write {what} file {path}: {e}")),
    }
}

fn main() -> ExitCode {
    let options = match parse_args(ArgList::from_env()) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("kfab: {msg}");
            }
            return usage();
        }
    };

    let mut specs = Vec::new();
    for spec in &options.specs {
        match CoreSpec::parse(spec) {
            Ok(mut s) => {
                // Tier selection applies fabric-wide, to every core.
                s.config.tier = options.tier;
                s.config.tier_threshold = options.tier_threshold;
                specs.push(s);
            }
            Err(e) => {
                eprintln!("kfab: {e}");
                return usage();
            }
        }
    }
    if let Some(n) = options.cores {
        let template = specs.remove(0);
        specs = (0..n).map(|_| template.clone()).collect();
    }

    let config = FabricConfig {
        quantum: options.quantum,
        host_threads: options.host_threads,
        shared_len: options.shared_len,
        restart_halted: options.restart,
        mem_model: options.mem_model,
        ..FabricConfig::default()
    };
    let mut fabric = match Fabric::new(specs, config) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("kfab: {e}");
            return ExitCode::from(2);
        }
    };

    let collectors: Vec<Shared<Collector>> = if options.observe.is_some() {
        (0..fabric.core_count())
            .map(|i| {
                let shared = Shared::new(Collector::new(options.observe_capacity));
                fabric.simulator_mut(i).set_observer(Box::new(shared.handle()));
                shared
            })
            .collect()
    } else {
        Vec::new()
    };

    let outcome = match fabric.run_for(options.max_instr) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("kfab: simulation error: {e}");
            return ExitCode::from(3);
        }
    };

    let stats = fabric.stats();
    if options.stats {
        eprintln!(
            "{:<4}{:<24}{:>14}{:>12}{:>10}{:>9}{:>7}",
            "core", "spec", "instructions", "operations", "restarts", "exit", "halted"
        );
        for (index, core) in stats.cores.iter().enumerate() {
            eprintln!(
                "{:<4}{:<24}{:>14}{:>12}{:>10}{:>9}{:>7}",
                index,
                core.name,
                core.stats.instructions,
                core.stats.operations,
                core.restarts,
                core.exit_code.map_or_else(|| "-".to_string(), |c| c.to_string()),
                if core.halted { "yes" } else { "no" },
            );
        }
        eprintln!(
            "fabric: {} cores, {} quanta, {} instructions total, critical path {:.3}s, wall {:.3}s",
            stats.cores.len(),
            stats.quanta,
            stats.aggregate.instructions,
            stats.critical_path.as_secs_f64(),
            stats.wall.as_secs_f64(),
        );
        if let Some(makespan) = stats.makespan_cycles {
            eprintln!("fabric: makespan {makespan} model cycles");
        }
        if let Some(coherence) = &stats.coherence {
            let t = &coherence.total;
            eprintln!(
                "coherent: makespan {} cycles, {} accesses ({} misses), \
                 {} invalidations, {} upgrades, {} writebacks, \
                 {} contention stall cycles",
                coherence.makespan,
                t.accesses,
                t.misses,
                t.invalidations_sent,
                t.upgrades,
                t.writebacks,
                t.contention_stalls,
            );
        }
    }

    if let Some(path) = &options.json {
        let mut report = StatsReport::new();
        debug_assert_eq!(report.fields()[0].0, "schema_version");
        let _ = STATS_SCHEMA_VERSION;
        stats.report_into(&mut report);
        report.push_f64("critical_path_seconds", stats.critical_path.as_secs_f64());
        report.push_f64("wall_seconds", stats.wall.as_secs_f64());
        report.push_str(
            "outcome",
            match outcome {
                FabricOutcome::AllHalted => "halted",
                FabricOutcome::BudgetExhausted => "budget",
            },
        );
        if let Err(e) = write_output("json", path, &report.to_json()) {
            eprintln!("kfab: {e}");
            return ExitCode::from(2);
        }
    }

    if let Some(path) = &options.metrics {
        if let Err(e) = write_output("metrics", path, &fabric.metrics().to_json()) {
            eprintln!("kfab: {e}");
            return ExitCode::from(2);
        }
    }

    if let Some(path) = &options.observe {
        let snapshots: Vec<(String, Vec<kahrisma_observe::SimEvent>)> = collectors
            .iter()
            .enumerate()
            .map(|(i, shared)| {
                let c = shared.lock();
                if c.ring.dropped() > 0 {
                    eprintln!(
                        "kfab: core {i} event ring dropped {} of {} events; raise \
                         --observe-capacity for a complete timeline",
                        c.ring.dropped(),
                        c.ring.total(),
                    );
                }
                (fabric.core_name(i).to_string(), c.ring.to_vec())
            })
            .collect();
        let borrowed: Vec<(&str, &[kahrisma_observe::SimEvent])> =
            snapshots.iter().map(|(n, e)| (n.as_str(), e.as_slice())).collect();
        // Under --mem coherent each core also gets a cumulative counter
        // track, rendered by Perfetto below its instruction tracks.
        let counters: Vec<Vec<perfetto::CounterTrack>> = (0..fabric.core_count())
            .map(|i| {
                let samples: Vec<(u64, Vec<(&str, u64)>)> = fabric
                    .coherence_timeline(i)
                    .iter()
                    .map(|s| {
                        (s.cycle, vec![
                            ("accesses", s.counters.accesses),
                            ("misses", s.counters.misses),
                            ("invalidations", s.counters.invalidations_received),
                            ("upgrades", s.counters.upgrades),
                            ("writebacks", s.counters.writebacks),
                            ("contention_stalls", s.counters.contention_stalls),
                            ("mem_cycles", s.counters.mem_cycles),
                        ])
                    })
                    .collect();
                if samples.is_empty() {
                    Vec::new()
                } else {
                    vec![perfetto::CounterTrack { name: "coherence", samples }]
                }
            })
            .collect();
        let json = perfetto::fabric_trace_json_with_counters(&borrowed, &counters);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("kfab: cannot write observe file {path}: {e}");
            return ExitCode::from(2);
        }
    }

    match outcome {
        FabricOutcome::AllHalted => ExitCode::SUCCESS,
        FabricOutcome::BudgetExhausted => {
            if !options.restart {
                eprintln!("kfab: instruction budget exhausted");
            }
            ExitCode::from(124)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(items: &[&str]) -> Result<Options, String> {
        parse_args(ArgList::new(items.iter().map(|s| (*s).to_string()).collect()))
    }

    #[test]
    fn parses_a_full_flag_set() {
        let options = parse(&[
            "--core", "dct:risc", "--core", "aes:vliw4:doe", "--quantum", "1000",
            "--host-threads", "4", "--max-instr", "500000", "--restart",
            "--shared-len", "4096", "--json", "-", "--metrics", "m.json",
            "--observe", "t.json", "--observe-capacity", "5000", "--stats",
        ])
        .expect("parse");
        assert_eq!(options.specs, vec!["dct:risc", "aes:vliw4:doe"]);
        assert_eq!(options.quantum, 1000);
        assert_eq!(options.host_threads, 4);
        assert_eq!(options.max_instr, 500_000);
        assert!(options.restart);
        assert_eq!(options.shared_len, 4096);
        assert_eq!(options.json.as_deref(), Some("-"));
        assert_eq!(options.metrics.as_deref(), Some("m.json"));
        assert_eq!(options.observe.as_deref(), Some("t.json"));
        assert_eq!(options.observe_capacity, 5000);
        assert!(options.stats);
    }

    #[test]
    fn requires_a_core_and_rejects_bad_combinations() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--core", "dct:risc", "--cores", "0"]).is_err());
        assert!(parse(&["--core", "dct:risc", "--core", "aes:risc", "--cores", "4"]).is_err());
        assert!(parse(&["--core", "dct:risc", "--quantum", "0"]).is_err());
        assert!(parse(&["--core", "dct:risc", "--host-threads", "0"]).is_err());
        assert!(parse(&["--core", "dct:risc", "--oops"]).is_err());
        assert!(parse(&["--core", "dct:risc", "--quantum", "abc"]).is_err());
    }

    #[test]
    fn cores_replication_accepts_one_spec() {
        let options = parse(&["--core", "dct:risc", "--cores", "4"]).expect("parse");
        assert_eq!(options.cores, Some(4));
        assert_eq!(options.specs.len(), 1);
    }

    #[test]
    fn parses_tier_flags_and_rejects_bad_values() {
        let options = parse(&["--core", "dct:risc"]).expect("parse");
        assert_eq!(options.tier, TierMode::Ir, "the compiled tier is the default");
        assert_eq!(options.tier_threshold, SimConfig::default().tier_threshold);
        let options =
            parse(&["--core", "dct:risc", "--tier", "interp", "--tier-threshold", "4"])
                .expect("parse");
        assert_eq!(options.tier, TierMode::Interp);
        assert_eq!(options.tier_threshold, 4);
        assert!(parse(&["--core", "dct:risc", "--tier", "jit"]).is_err());
        assert!(parse(&["--core", "dct:risc", "--tier-threshold", "0"]).is_err());
    }

    #[test]
    fn parses_memory_model_flags() {
        let options = parse(&["--core", "dct:risc"]).expect("parse");
        assert_eq!(options.mem_model, MemModel::Ideal, "ideal timing is the default");

        let options = parse(&["--core", "dct:risc", "--mem", "coherent"]).expect("parse");
        assert_eq!(options.mem_model, MemModel::Coherent(CoherentConfig::default()));

        let options = parse(&[
            "--core", "dct:risc", "--mem", "coherent", "--l2-ports", "2",
            "--line-bytes", "16", "--l1-lines", "8", "--mem-delay", "40",
        ])
        .expect("parse");
        let MemModel::Coherent(cfg) = options.mem_model else {
            panic!("geometry flags imply the coherent model")
        };
        assert_eq!(cfg.l2_ports, 2);
        assert_eq!(cfg.line_bytes, 16);
        assert_eq!(cfg.l1_lines, 8);
        assert_eq!(cfg.mem_delay, 40);
    }

    #[test]
    fn rejects_bad_memory_model_flags() {
        let err = parse(&["--core", "dct:risc", "--mem", "warp"]).unwrap_err();
        assert!(err.contains("unknown memory model `warp`"), "{err}");
        let err = parse(&["--core", "dct:risc", "--l2-ports", "4"]).unwrap_err();
        assert!(err.contains("require --mem coherent"), "{err}");
        let err =
            parse(&["--core", "dct:risc", "--mem", "coherent", "--line-bytes", "48"]).unwrap_err();
        assert!(err.contains("power of two"), "{err}");
        assert!(parse(&["--core", "dct:risc", "--mem", "coherent", "--l2-ports", "0"]).is_err());
        assert!(parse(&["--core", "dct:risc", "--mem", "coherent", "--l1-lines", "0"]).is_err());
    }

    #[test]
    fn malformed_core_specs_fail_at_parse_with_clear_wording() {
        let err = parse(&["--core", "warp9:risc"]).unwrap_err();
        assert!(err.contains("unknown workload `warp9`"), "{err}");
        let err = parse(&["--core", "dct"]).unwrap_err();
        assert!(err.contains("must be workload:isa[:model]"), "{err}");
        let err = parse(&["--core", "dct:arm"]).unwrap_err();
        assert!(err.contains("unknown isa `arm`"), "{err}");
        let err = parse(&["--core", "dct:risc:turbo"]).unwrap_err();
        assert!(err.contains("unknown model `turbo`"), "{err}");
        let err = parse(&["--core", "dct:risc:ilp:extra"]).unwrap_err();
        assert!(err.contains("trailing `extra`"), "{err}");
        // Every message names the offending spec so a long command line
        // still points at the right --core.
        let err = parse(&["--core", "dct:risc", "--core", "fft:nope"]).unwrap_err();
        assert!(err.contains("`fft:nope`"), "{err}");
    }
}
