//! Minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! The container this repository builds in has no access to the crates-io
//! registry, so the real `criterion` cannot be downloaded. This crate
//! implements exactly the API subset the `kahrisma-bench` benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with plain
//! `std::time::Instant` wall-clock measurement and a text report.
//!
//! Like the real harness, the generated `main` only measures when invoked
//! with `--bench` (which `cargo bench` passes); under `cargo test` the
//! binary exits immediately so benches never slow the test suite down.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

/// Benchmark driver handed to each registered bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup { _criterion: self, name, sample_size: 10 }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: calls `f` with a [`Bencher`] whose
    /// [`Bencher::iter`] times the supplied routine.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: Vec::with_capacity(self.sample_size), iters: self.sample_size };
        f(&mut b);
        let n = b.samples.len().max(1);
        let mean = b.samples.iter().sum::<f64>() / n as f64;
        let best = b.samples.iter().copied().fold(f64::INFINITY, f64::min);
        eprintln!(
            "  {}/{id}: mean {:.3} ms, best {:.3} ms ({} samples)",
            self.name,
            mean * 1e3,
            if best.is_finite() { best * 1e3 } else { 0.0 },
            n
        );
        self
    }

    /// Ends the group (report was emitted incrementally; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Times a closure over a fixed number of samples.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
    iters: usize,
}

impl Bencher {
    /// Runs `routine` once per sample, recording wall-clock seconds.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed().as_secs_f64());
            drop(out);
        }
    }
}

/// Whether the process was started in measurement mode (`cargo bench`
/// passes `--bench`; `cargo test` does not).
#[must_use]
pub fn measurement_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Registers bench functions under a group entry point, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main`, running every registered group when invoked by
/// `cargo bench` and exiting immediately under `cargo test`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !$crate::measurement_mode() {
                return; // `cargo test` compiles and runs benches in test mode
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("f", |b| b.iter(|| calls += 1));
            g.finish();
        }
        assert_eq!(calls, 3);
    }
}
