//! Cycle-accurate reference model of the KAHRISMA DOE microarchitecture.
//!
//! The paper validates its cycle-approximate DOE model against an RTL
//! hardware simulation (Table II). This crate provides that ground truth: a
//! cycle-stepped microarchitecture model that implements exactly the three
//! effects the paper says the heuristic DOE model ignores (§VI-C):
//!
//! 1. **Resource constraints** — "a multiplication may be shared between two
//!    slots within our architecture": the model arbitrates a limited number
//!    of non-pipelined multiply/divide units and a limited number of L1
//!    access ports per cycle;
//! 2. **Bounded slot drift** — "the drift between the issue slots is limited
//!    to a maximum value within our hardware to enable precise interrupts":
//!    per-slot issue queues of bounded depth let fast slots run only a fixed
//!    number of instructions ahead of the slowest slot;
//! 3. **Issue-order memory arbitration** — L1 port conflicts are resolved at
//!    issue time, cycle by cycle, rather than by the approximate in-program-
//!    order connection-limit module.
//!
//! As in the paper's Table II methodology, both this model and the
//! approximate simulator assume perfect branch prediction, so the reference
//! can be driven by the committed instruction stream of the functional
//! simulator (`kahrisma-core`).
//!
//! # Example
//!
//! ```
//! use kahrisma_rtl::{RtlConfig, simulate};
//!
//! let exe = kahrisma_asm::build(&[(
//!     "m.s",
//!     ".isa risc\n.text\n.global main\n.func main\nmain: li rv, 0\njr ra\n.endfunc\n",
//! )])?;
//! let result = simulate(&exe, &RtlConfig::default(), 1_000_000)?;
//! assert!(result.cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pipeline;

pub use pipeline::{RtlConfig, RtlPipeline};

use kahrisma_core::{RunOutcome, SimConfig, SimError, Simulator};
use kahrisma_elf::Executable;

/// Result of a reference simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtlResult {
    /// Cycle count of the microarchitectural model.
    pub cycles: u64,
    /// Executed instructions (bundles).
    pub instructions: u64,
    /// Executed non-`nop` operations.
    pub operations: u64,
    /// Functional outcome (halt/budget).
    pub outcome: RunOutcome,
    /// Program exit code, when halted.
    pub exit_code: Option<u32>,
}

/// Runs `exe` through the functional simulator with the cycle-accurate
/// pipeline attached and returns the reference cycle count.
///
/// # Errors
///
/// Propagates any functional simulation error.
pub fn simulate(
    exe: &Executable,
    config: &RtlConfig,
    max_instructions: u64,
) -> Result<RtlResult, SimError> {
    let mut sim = Simulator::new(exe, SimConfig::default())?;
    sim.set_cycle_model(Box::new(RtlPipeline::new(config.clone())));
    let outcome = sim.run(max_instructions)?;
    let stats = sim.cycle_stats().expect("pipeline attached");
    Ok(RtlResult {
        cycles: stats.cycles,
        instructions: sim.stats().instructions,
        operations: stats.operations,
        outcome,
        exit_code: match outcome {
            RunOutcome::Halted { exit_code } => Some(exit_code),
            RunOutcome::BudgetExhausted => None,
        },
    })
}
