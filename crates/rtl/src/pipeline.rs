//! The cycle-stepped DOE pipeline model.

use std::collections::VecDeque;

use kahrisma_core::{
    AccessKind, CacheConfig, CycleModel, CycleStats, InstrEvent, MemoryHierarchy,
};

/// Configuration of the cycle-accurate reference pipeline.
#[derive(Debug, Clone)]
pub struct RtlConfig {
    /// Maximum drift between issue slots, in instructions (per-slot issue
    /// queue depth). The hardware bounds the drift "to enable precise
    /// interrupts" (§VI-C).
    pub max_drift: usize,
    /// L1 access ports: memory operations that may issue per cycle.
    pub l1_ports: u32,
    /// Number of shared, non-pipelined multiply/divide units; `None` derives
    /// one unit per two issue slots ("a multiplication may be shared between
    /// two slots", §VI-C).
    pub muldiv_units: Option<u32>,
    /// Memory hierarchy behind the L1 ports. Unlike the approximate models,
    /// port arbitration happens at issue time in the pipeline itself, so
    /// this hierarchy carries no connection-limit module by default.
    pub memory: MemoryHierarchy,
}

impl Default for RtlConfig {
    fn default() -> Self {
        RtlConfig {
            max_drift: 4,
            l1_ports: 1,
            muldiv_units: None,
            memory: MemoryHierarchy::new()
                .with_cache(CacheConfig::paper_l1())
                .with_cache(CacheConfig::paper_l2())
                .with_memory(18),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct QOp {
    seq: u64,
    srcs: [u8; 2],
    nsrcs: u8,
    dst: u8,
    delay: u32,
    mem: Option<(u32, AccessKind)>,
    serialize: bool,
    is_nop: bool,
    is_muldiv: bool,
    mispredict_penalty: u32,
}

/// The cycle-accurate DOE pipeline: per-slot in-order issue queues with
/// bounded depth, a register scoreboard, shared multiply/divide units, and
/// per-cycle L1 port arbitration.
///
/// Implements [`CycleModel`], so it can be attached to the functional
/// simulator with [`kahrisma_core::Simulator::set_cycle_model`].
#[derive(Debug, Clone)]
pub struct RtlPipeline {
    config: RtlConfig,
    clock: u64,
    queues: Vec<VecDeque<QOp>>,
    reg_ready: [u64; 32],
    muldiv_busy: Vec<u64>,
    serialize_floor: u64,
    max_completion: u64,
    operations: u64,
    instructions: u64,
    memory: MemoryHierarchy,
    width_seen: usize,
    finished: bool,
    /// Response-port occupancy ring: the single L1 port also serializes
    /// data return, so two memory completions may not land in one cycle.
    response_ring: Vec<(u64, u32)>,
}

impl RtlPipeline {
    /// Creates an empty pipeline.
    #[must_use]
    pub fn new(config: RtlConfig) -> Self {
        let memory = config.memory.clone();
        RtlPipeline {
            config,
            clock: 0,
            queues: Vec::new(),
            reg_ready: [0; 32],
            muldiv_busy: Vec::new(),
            serialize_floor: 0,
            max_completion: 0,
            operations: 0,
            instructions: 0,
            memory,
            width_seen: 0,
            finished: false,
            response_ring: vec![(u64::MAX, 0); 1 << 14],
        }
    }

    /// Arbitrates the L1 response port: at most `l1_ports` memory results
    /// may return per cycle; later results slip to the next free cycle.
    fn acquire_response(&mut self, mut cycle: u64) -> u64 {
        let len = self.response_ring.len();
        loop {
            let slot = (cycle as usize) % len;
            let (stored, used) = self.response_ring[slot];
            let used = if stored == cycle { used } else { 0 };
            if used < self.config.l1_ports {
                self.response_ring[slot] = (cycle, used + 1);
                return cycle;
            }
            cycle += 1;
        }
    }

    /// The pipeline's memory hierarchy (for cache statistics).
    #[must_use]
    pub fn memory(&self) -> &MemoryHierarchy {
        &self.memory
    }

    fn ensure_width(&mut self, width: usize) {
        while self.queues.len() < width {
            self.queues.push(VecDeque::new());
        }
        if width > self.width_seen {
            self.width_seen = width;
            let units = self
                .config
                .muldiv_units
                .map(|u| u.max(1) as usize)
                .unwrap_or_else(|| self.width_seen.div_ceil(2).max(1));
            while self.muldiv_busy.len() < units {
                self.muldiv_busy.push(0);
            }
        }
    }

    fn oldest_pending_seq(&self) -> Option<u64> {
        self.queues.iter().filter_map(|q| q.front().map(|op| op.seq)).min()
    }

    /// Advances the pipeline by one clock cycle, attempting to issue the
    /// head operation of every slot queue.
    fn step_cycle(&mut self) {
        let mut mem_issued = 0u32;
        let oldest = self.oldest_pending_seq();
        // Operations issuing in the same cycle read the register file as of
        // the cycle start (read-before-write, §V-B): dependency checks use
        // a snapshot, result latencies are published afterwards.
        let ready_snapshot = self.reg_ready;
        let mut published: Vec<(u8, u64)> = Vec::new();
        for s in 0..self.queues.len() {
            let Some(op) = self.queues[s].front().copied() else { continue };

            // Pipeline-wide serialization barrier.
            if self.clock < self.serialize_floor {
                continue;
            }
            if op.is_nop {
                // Fillers consume the slot's issue cycle unconditionally.
                self.queues[s].pop_front();
                continue;
            }
            // Register scoreboard: true data dependencies.
            let deps_ready = (0..usize::from(op.nsrcs))
                .all(|i| ready_snapshot[usize::from(op.srcs[i]) & 31] <= self.clock);
            if !deps_ready {
                continue;
            }
            // Serializing operations issue alone: they must be the oldest
            // unissued operation and all in-flight results must have landed.
            if op.serialize
                && (oldest != Some(op.seq) || self.max_completion > self.clock)
            {
                continue;
            }
            // L1 port arbitration at issue time.
            if op.mem.is_some() && mem_issued >= self.config.l1_ports {
                continue;
            }
            // Shared multiply/divide units (non-pipelined).
            let mut muldiv_unit = None;
            if op.is_muldiv {
                match self
                    .muldiv_busy
                    .iter()
                    .enumerate()
                    .find(|&(_, &busy)| busy <= self.clock)
                {
                    Some((u, _)) => muldiv_unit = Some(u),
                    None => continue,
                }
            }

            // Issue.
            let completion = match op.mem {
                Some((addr, kind)) => {
                    mem_issued += 1;
                    let c = self.memory.access(addr, kind, s as u8, self.clock);
                    self.acquire_response(c)
                }
                None => self.clock + u64::from(op.delay),
            };
            if let Some(u) = muldiv_unit {
                self.muldiv_busy[u] = completion;
            }
            if op.dst != 255 {
                published.push((op.dst, completion));
            }
            if op.serialize {
                self.serialize_floor = completion;
            }
            if op.mispredict_penalty > 0 {
                // Mispredicted control transfer: the front end refetches, so
                // no younger operation issues before the redirect resolves.
                self.serialize_floor = self
                    .serialize_floor
                    .max(completion + u64::from(op.mispredict_penalty));
            }
            self.max_completion = self.max_completion.max(completion);
            self.operations += 1;
            self.queues[s].pop_front();
        }
        for (dst, completion) in published {
            self.reg_ready[usize::from(dst) & 31] = completion;
        }
        self.clock += 1;
    }

    fn drain_while(&mut self, mut condition: impl FnMut(&Self) -> bool) {
        let mut guard = 0u64;
        while condition(self) {
            self.step_cycle();
            guard += 1;
            assert!(
                guard < 1_000_000_000,
                "rtl pipeline deadlock at cycle {} (queues {:?})",
                self.clock,
                self.queues.iter().map(VecDeque::len).collect::<Vec<_>>()
            );
        }
    }
}

impl CycleModel for RtlPipeline {
    fn instruction(&mut self, event: &InstrEvent<'_>) {
        self.instructions += 1;
        let seq = self.instructions;
        self.ensure_width(event.ops.len());
        for op in event.ops {
            let slot = usize::from(op.slot);
            self.queues[slot].push_back(QOp {
                seq,
                srcs: op.srcs,
                nsrcs: op.nsrcs,
                dst: op.dst,
                delay: op.delay,
                mem: op.mem,
                serialize: op.serialize,
                is_nop: op.is_nop,
                is_muldiv: op.is_muldiv,
                mispredict_penalty: op.mispredict_penalty,
            });
        }
        // Bounded drift: fetch stalls while any slot queue is over depth,
        // which caps how far fast slots can run ahead of the slowest.
        let depth = self.config.max_drift;
        self.drain_while(|p| p.queues.iter().any(|q| q.len() > depth));
    }

    fn finish(&mut self) {
        if !self.finished {
            self.drain_while(|p| p.queues.iter().any(|q| !q.is_empty()));
            self.finished = true;
        }
    }

    fn cycles(&self) -> u64 {
        self.max_completion
    }

    fn stats(&self) -> CycleStats {
        CycleStats {
            cycles: self.max_completion,
            operations: self.operations,
            memory: self.memory.stats(),
        }
    }

    fn fork(&self) -> Option<Box<dyn CycleModel>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kahrisma_core::OpEvent;

    fn alu(slot: u8, srcs: &[u8], dst: u8, delay: u32) -> OpEvent {
        let mut s = [0u8; 2];
        for (i, &r) in srcs.iter().enumerate() {
            s[i] = r;
        }
        OpEvent {
            slot,
            srcs: s,
            nsrcs: srcs.len() as u8,
            dst,
            delay,
            mem: None,
            is_branch: false,
            serialize: false,
            is_nop: false,
            is_muldiv: delay > 1,
            mispredict_penalty: 0,
        }
    }

    fn load(slot: u8, dst: u8, addr: u32) -> OpEvent {
        OpEvent { mem: Some((addr, AccessKind::Read)), is_muldiv: false, ..alu(slot, &[1], dst, 1) }
    }

    fn feed_and_finish(p: &mut RtlPipeline, instrs: &[&[OpEvent]]) {
        for (i, ops) in instrs.iter().enumerate() {
            p.instruction(&InstrEvent { addr: (i as u32) * 32, ops });
        }
        p.finish();
    }

    fn ideal_config() -> RtlConfig {
        RtlConfig { memory: MemoryHierarchy::new().with_memory(3), ..RtlConfig::default() }
    }

    #[test]
    fn sequential_alu_ops_one_per_cycle() {
        let mut p = RtlPipeline::new(ideal_config());
        let i1 = [alu(0, &[1], 10, 1)];
        let i2 = [alu(0, &[2], 11, 1)];
        let i3 = [alu(0, &[3], 12, 1)];
        feed_and_finish(&mut p, &[&i1, &i2, &i3]);
        assert_eq!(p.cycles(), 3);
        assert_eq!(p.stats().operations, 3);
    }

    #[test]
    fn parallel_slots_issue_same_cycle() {
        let mut p = RtlPipeline::new(ideal_config());
        let i1 = [alu(0, &[1], 10, 1), alu(1, &[2], 11, 1), alu(2, &[3], 12, 1)];
        feed_and_finish(&mut p, &[&i1]);
        assert_eq!(p.cycles(), 1);
    }

    #[test]
    fn dependency_stalls_issue() {
        let mut p = RtlPipeline::new(ideal_config());
        let i1 = [alu(0, &[1], 10, 5)]; // 5-cycle producer
        let i2 = [alu(0, &[10], 11, 1)]; // dependent consumer
        feed_and_finish(&mut p, &[&i1, &i2]);
        assert_eq!(p.cycles(), 6);
    }

    #[test]
    fn drift_is_bounded() {
        // Slot 0 executes a long dependence chain; slot 1 has independent
        // work. With unbounded drift slot 1 would finish immediately; with
        // depth-2 queues it may run at most 2 instructions ahead.
        let config = RtlConfig { max_drift: 2, ..ideal_config() };
        let mut p = RtlPipeline::new(config);
        let instrs: Vec<[OpEvent; 2]> = (0..10)
            .map(|_| [alu(0, &[10], 10, 3), alu(1, &[2], 11, 1)])
            .collect();
        for (i, ops) in instrs.iter().enumerate() {
            p.instruction(&InstrEvent { addr: (i as u32) * 8, ops });
        }
        p.finish();
        // Slot 0's chain: each op waits for the previous (3 cycles each) →
        // ~30 cycles. Slot 1 cannot have issued everything early; its last
        // issue happens within the drift window of slot 0's progress.
        assert!(p.cycles() >= 30, "cycles {}", p.cycles());

        // Compare against effectively unbounded drift: same work, slot 1
        // free to run ahead — total unchanged (slot 0 dominates), but the
        // bounded version must not be faster.
        let mut free = RtlPipeline::new(RtlConfig { max_drift: 100, ..ideal_config() });
        for (i, ops) in instrs.iter().enumerate() {
            free.instruction(&InstrEvent { addr: (i as u32) * 8, ops });
        }
        free.finish();
        assert!(p.cycles() >= free.cycles());
    }

    #[test]
    fn muldiv_units_are_shared() {
        // 4 slots, default 2 mul/div units: four independent muls in one
        // bundle need two rounds of the units.
        let mut p = RtlPipeline::new(ideal_config());
        let i1 = [
            alu(0, &[1], 10, 3),
            alu(1, &[2], 11, 3),
            alu(2, &[3], 12, 3),
            alu(3, &[4], 13, 3),
        ];
        feed_and_finish(&mut p, &[&i1]);
        // Two muls issue at 0 (complete 3); the other two wait for the
        // non-pipelined units → issue at 3, complete 6.
        assert_eq!(p.cycles(), 6);
    }

    #[test]
    fn l1_port_limits_memory_issue() {
        let mut p = RtlPipeline::new(ideal_config());
        let i1 = [load(0, 10, 0x100), load(1, 11, 0x200), load(2, 12, 0x300)];
        feed_and_finish(&mut p, &[&i1]);
        // One memory issue per cycle: issues at 0, 1, 2; completions 3,4,5.
        assert_eq!(p.cycles(), 5);
    }

    #[test]
    fn two_ports_double_memory_issue() {
        let config = RtlConfig { l1_ports: 2, ..ideal_config() };
        let mut p = RtlPipeline::new(config);
        let i1 = [load(0, 10, 0x100), load(1, 11, 0x200), load(2, 12, 0x300)];
        feed_and_finish(&mut p, &[&i1]);
        // Issues at 0, 0, 1; completions 3, 3, 4.
        assert_eq!(p.cycles(), 4);
    }

    #[test]
    fn serialize_drains_pipeline() {
        let mut p = RtlPipeline::new(ideal_config());
        let mut sw = alu(0, &[], 255, 1);
        sw.serialize = true;
        sw.is_muldiv = false;
        let i1 = [alu(0, &[1], 10, 3)];
        let i2 = [sw];
        let i3 = [alu(0, &[2], 11, 1)];
        feed_and_finish(&mut p, &[&i1, &i2, &i3]);
        // mul completes at 3; switchtarget issues at 3 → 4; next at 4 → 5.
        assert_eq!(p.cycles(), 5);
    }

    #[test]
    fn nops_consume_slot_cycles() {
        let mut p = RtlPipeline::new(ideal_config());
        let i1 = [OpEvent::nop(0)];
        let i2 = [alu(0, &[1], 10, 1)];
        feed_and_finish(&mut p, &[&i1, &i2]);
        // nop issues at 0, add at 1, completes 2.
        assert_eq!(p.cycles(), 2);
    }

    #[test]
    fn cache_behaviour_matches_hierarchy() {
        let mut p = RtlPipeline::new(RtlConfig::default());
        let i1 = [load(0, 10, 0x100)];
        let i2 = [load(0, 11, 0x104)];
        feed_and_finish(&mut p, &[&i1, &i2]);
        let l1 = p.memory().l1_stats().unwrap();
        assert_eq!((l1.hits, l1.misses), (1, 1));
    }

    #[test]
    fn misprediction_penalty_serializes_refetch() {
        let mut p = RtlPipeline::new(ideal_config());
        let mut br = alu(0, &[1], 255, 1);
        br.is_muldiv = false;
        br.mispredict_penalty = 3;
        let i1 = [br];
        let i2 = [alu(0, &[2], 10, 1)];
        feed_and_finish(&mut p, &[&i1, &i2]);
        // Branch issues at 0, completes 1; redirect resolves at 4; the
        // next op issues at 4 and completes at 5.
        assert_eq!(p.cycles(), 5);
    }

    #[test]
    fn serialize_waits_for_other_slots() {
        // A serializing op in slot 0 of instruction 2 must wait until the
        // older instruction's slot-1 op has issued and completed.
        let mut p = RtlPipeline::new(ideal_config());
        let i1 = [OpEvent::nop(0), alu(1, &[1], 10, 4)];
        let mut sw = alu(0, &[], 255, 1);
        sw.is_muldiv = false;
        sw.serialize = true;
        let i2 = [sw, OpEvent::nop(1)];
        feed_and_finish(&mut p, &[&i1, &i2]);
        // slot1 op completes at 4; switchtarget issues at 4, completes 5.
        assert_eq!(p.cycles(), 5);
    }

    #[test]
    fn mixed_width_streams_grow_the_pipeline() {
        // A stream that widens mid-run (mixed-ISA execution): the pipeline
        // must grow its queues without losing older state.
        let mut p = RtlPipeline::new(ideal_config());
        let narrow = [alu(0, &[1], 10, 1)];
        let wide = [alu(0, &[10], 11, 1), alu(1, &[2], 12, 1), alu(2, &[3], 13, 1)];
        p.instruction(&InstrEvent { addr: 0, ops: &narrow });
        p.instruction(&InstrEvent { addr: 4, ops: &wide });
        p.finish();
        assert_eq!(p.stats().operations, 4);
        // narrow completes at 1; wide's slot0 op depends on it: issues at 1,
        // completes 2; slots 1/2 complete at 1.
        assert_eq!(p.cycles(), 2);
    }

    #[test]
    fn operations_counted_exclude_nops() {
        let mut p = RtlPipeline::new(ideal_config());
        let i1 = [alu(0, &[1], 10, 1), OpEvent::nop(1), OpEvent::nop(2)];
        feed_and_finish(&mut p, &[&i1]);
        assert_eq!(p.stats().operations, 1);
    }

    #[test]
    fn finish_is_idempotent() {
        let mut p = RtlPipeline::new(ideal_config());
        let i1 = [alu(0, &[1], 10, 1)];
        feed_and_finish(&mut p, &[&i1]);
        let c = p.cycles();
        p.finish();
        assert_eq!(p.cycles(), c);
    }
}
