//! Cross-ISA functional validation: every workload must produce its golden
//! self-check exit code on every ISA of the family. This is the paper's
//! simulator goal (1): "Only if the compiler, assembler, linker, and
//! simulation are working correctly for a given (correct) application the
//! simulator is able to finalize application execution and provide valid
//! results."

use kahrisma_isa::IsaKind;
use kahrisma_workloads::{Workload, run_functional};

fn check(w: Workload, isa: IsaKind) {
    let exe = w.build(isa).unwrap_or_else(|e| panic!("{} build for {}: {e}", w.name(), isa.name()));
    let run = run_functional(&exe, None)
        .unwrap_or_else(|e| panic!("{} run on {}: {e}", w.name(), isa.name()));
    assert_eq!(
        run.exit_code,
        w.expected_exit(),
        "{} on {} produced wrong self-check (stdout {:?})",
        w.name(),
        isa.name(),
        run.stdout
    );
}

macro_rules! golden {
    ($fn_name:ident, $w:expr, $isa:expr) => {
        #[test]
        fn $fn_name() {
            check($w, $isa);
        }
    };
}

golden!(dct_risc, Workload::Dct, IsaKind::Risc);
golden!(dct_vliw2, Workload::Dct, IsaKind::Vliw2);
golden!(dct_vliw4, Workload::Dct, IsaKind::Vliw4);
golden!(dct_vliw6, Workload::Dct, IsaKind::Vliw6);
golden!(dct_vliw8, Workload::Dct, IsaKind::Vliw8);
golden!(aes_risc, Workload::Aes, IsaKind::Risc);
golden!(aes_vliw2, Workload::Aes, IsaKind::Vliw2);
golden!(aes_vliw4, Workload::Aes, IsaKind::Vliw4);
golden!(aes_vliw6, Workload::Aes, IsaKind::Vliw6);
golden!(aes_vliw8, Workload::Aes, IsaKind::Vliw8);
golden!(fft_risc, Workload::Fft, IsaKind::Risc);
golden!(fft_vliw2, Workload::Fft, IsaKind::Vliw2);
golden!(fft_vliw4, Workload::Fft, IsaKind::Vliw4);
golden!(fft_vliw6, Workload::Fft, IsaKind::Vliw6);
golden!(fft_vliw8, Workload::Fft, IsaKind::Vliw8);
golden!(quicksort_risc, Workload::Quicksort, IsaKind::Risc);
golden!(quicksort_vliw2, Workload::Quicksort, IsaKind::Vliw2);
golden!(quicksort_vliw4, Workload::Quicksort, IsaKind::Vliw4);
golden!(quicksort_vliw6, Workload::Quicksort, IsaKind::Vliw6);
golden!(quicksort_vliw8, Workload::Quicksort, IsaKind::Vliw8);
golden!(cjpeg_risc, Workload::Cjpeg, IsaKind::Risc);
golden!(cjpeg_vliw4, Workload::Cjpeg, IsaKind::Vliw4);
golden!(cjpeg_vliw8, Workload::Cjpeg, IsaKind::Vliw8);
golden!(djpeg_risc, Workload::Djpeg, IsaKind::Risc);
golden!(djpeg_vliw4, Workload::Djpeg, IsaKind::Vliw4);
golden!(djpeg_vliw8, Workload::Djpeg, IsaKind::Vliw8);
