//! Regenerates the golden exit codes: runs every workload on RISC and
//! prints the `GOLDEN_EXITS` table for `src/golden.rs`.

use kahrisma_isa::IsaKind;
use kahrisma_workloads::{Workload, run_functional};

fn main() {
    let order = [
        Workload::Dct,
        Workload::Aes,
        Workload::Fft,
        Workload::Quicksort,
        Workload::Cjpeg,
        Workload::Djpeg,
    ];
    let mut values = Vec::new();
    for w in order {
        let exe = w.build(IsaKind::Risc).unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        let run = run_functional(&exe, None).unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        println!(
            "{:10} exit={:3} instrs={:9} stdout={:?}",
            w.name(),
            run.exit_code,
            run.stats.instructions,
            run.stdout
        );
        values.push(run.exit_code);
    }
    println!("\npub(crate) const GOLDEN_EXITS: [u32; 6] = {values:?};");
}
