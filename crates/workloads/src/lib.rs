//! Evaluation workloads for the KAHRISMA simulator.
//!
//! The paper's result section (§VII) uses "a set of applications comprising
//! the JPEG encoder/decoder (used from the MiBench), a fixed-point Fast
//! Fourier Transform (FFT) implementation, a Quicksort sorting algorithm, a
//! fully-unrolled Advanced Encryption Standard (AES) implementation, and a
//! 4x4 integer Discrete Cosine Transform (DCT) approximation as used in
//! H.264. All applications were compiled with maximum performance
//! optimization."
//!
//! This crate provides those workloads as KC source programs (see
//! `DESIGN.md` for the cjpeg/djpeg substitution note), each **self-checking**
//! — a program validates its own results (known-answer tests, sortedness,
//! inverse-transform round trips) and returns a data-dependent checksum, so
//! any miscompilation at any issue width is caught functionally.
//!
//! # Example
//!
//! ```
//! use kahrisma_workloads::Workload;
//! use kahrisma_isa::IsaKind;
//!
//! let exe = Workload::Dct.build(IsaKind::Vliw4)?;
//! let result = kahrisma_workloads::run_functional(&exe, None)?;
//! assert_eq!(result.exit_code, Workload::Dct.expected_exit());
//! # Ok::<(), Box<dyn std::error::Error + Send + Sync>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use kahrisma_core::{CycleModelKind, CycleStats, RunOutcome, SimConfig, SimStats, Simulator};
use kahrisma_elf::Executable;
use kahrisma_isa::IsaKind;
use kahrisma_kcc::{CompileOptions, compile_to_executable};

/// Maximum instructions any workload may execute before the harness
/// declares a hang.
pub const INSTRUCTION_BUDGET: u64 = 200_000_000;

/// One of the paper's evaluation applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Workload {
    /// 4×4 integer DCT (H.264), fully unrolled — high ILP.
    Dct,
    /// Fully-unrolled T-table AES-128 — high ILP, L1-exceeding working set.
    Aes,
    /// Fixed-point recursive radix-2 FFT — low ILP (small basic blocks).
    Fft,
    /// Recursive quicksort — control-dominated, low ILP.
    Quicksort,
    /// JPEG-like encoder (cjpeg stand-in).
    Cjpeg,
    /// JPEG-like decoder (djpeg stand-in).
    Djpeg,
    /// Contended multi-core producer/consumer over a shared queue
    /// (fabric workload; not part of the paper's Figure 4 set, so not in
    /// [`Workload::ALL`]). Falls back to a sequential run standalone.
    ProducerConsumer,
    /// Data-parallel 4×4 DCT over shared blocks, strided by core id
    /// (fabric workload; not in [`Workload::ALL`]).
    ParallelDct,
}

impl Workload {
    /// All workloads, in the paper's Figure 4 presentation order.
    pub const ALL: [Workload; 6] = [
        Workload::Cjpeg,
        Workload::Djpeg,
        Workload::Fft,
        Workload::Quicksort,
        Workload::Aes,
        Workload::Dct,
    ];

    /// Looks a workload up by its short name, including the fabric
    /// workloads that are not part of [`Workload::ALL`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<Workload> {
        match name {
            "dct" => Some(Workload::Dct),
            "aes" => Some(Workload::Aes),
            "fft" => Some(Workload::Fft),
            "quicksort" => Some(Workload::Quicksort),
            "cjpeg" => Some(Workload::Cjpeg),
            "djpeg" => Some(Workload::Djpeg),
            "producer_consumer" => Some(Workload::ProducerConsumer),
            "parallel_dct" => Some(Workload::ParallelDct),
            _ => None,
        }
    }

    /// Short name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Workload::Dct => "dct",
            Workload::Aes => "aes",
            Workload::Fft => "fft",
            Workload::Quicksort => "quicksort",
            Workload::Cjpeg => "cjpeg",
            Workload::Djpeg => "djpeg",
            Workload::ProducerConsumer => "producer_consumer",
            Workload::ParallelDct => "parallel_dct",
        }
    }

    /// The KC source of the workload.
    #[must_use]
    pub fn source(self) -> &'static str {
        match self {
            Workload::Dct => include_str!("../kc/dct.kc"),
            Workload::Aes => include_str!("../kc/aes.kc"),
            Workload::Fft => include_str!("../kc/fft.kc"),
            Workload::Quicksort => include_str!("../kc/quicksort.kc"),
            Workload::Cjpeg => include_str!("../kc/cjpeg.kc"),
            Workload::Djpeg => include_str!("../kc/djpeg.kc"),
            Workload::ProducerConsumer => include_str!("../kc/producer_consumer.kc"),
            Workload::ParallelDct => include_str!("../kc/parallel_dct.kc"),
        }
    }

    /// The self-check exit code of a correct run (identical on every ISA).
    ///
    /// Values below 10 indicate a specific self-check failure; correct runs
    /// of the paper workloads return `(checksum % 251) + 10`. The fabric
    /// workloads verify their parallel result against a sequential
    /// recomputation on core 0 and return a fixed 42, so the expected exit
    /// does not depend on the core count (cores other than 0 exit 0).
    #[must_use]
    pub fn expected_exit(self) -> u32 {
        match self {
            Workload::Dct => GOLDEN_EXITS[0],
            Workload::Aes => GOLDEN_EXITS[1],
            Workload::Fft => GOLDEN_EXITS[2],
            Workload::Quicksort => GOLDEN_EXITS[3],
            Workload::Cjpeg => GOLDEN_EXITS[4],
            Workload::Djpeg => GOLDEN_EXITS[5],
            Workload::ProducerConsumer | Workload::ParallelDct => 42,
        }
    }

    /// Compiles, assembles and links the workload for the given ISA.
    ///
    /// # Errors
    ///
    /// Propagates compiler and linker errors (none are expected for the
    /// shipped sources).
    pub fn build(
        self,
        isa: IsaKind,
    ) -> Result<Executable, Box<dyn std::error::Error + Send + Sync>> {
        compile_to_executable(self.source(), &CompileOptions::for_isa(isa))
    }
}

// Golden exit codes (dct, aes, fft, quicksort, cjpeg, djpeg), captured from
// a verified RISC run and asserted identical across all five ISAs by the
// test suite.
include!("golden.rs");

/// Result of a functional (plus optional cycle-model) run.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// Program exit code.
    pub exit_code: u32,
    /// Program stdout.
    pub stdout: String,
    /// Functional statistics.
    pub stats: SimStats,
    /// Cycle-model results, when a model was requested.
    pub cycles: Option<CycleStats>,
}

/// Runs an executable to completion under the default simulator
/// configuration, optionally with a cycle model attached.
///
/// # Errors
///
/// Propagates simulation errors and reports budget exhaustion as an error.
pub fn run_functional(
    exe: &Executable,
    model: Option<CycleModelKind>,
) -> Result<WorkloadRun, Box<dyn std::error::Error + Send + Sync>> {
    let config = match model {
        Some(kind) => SimConfig::with_model(kind),
        None => SimConfig::default(),
    };
    let mut sim = Simulator::new(exe, config)?;
    match sim.run(INSTRUCTION_BUDGET)? {
        RunOutcome::Halted { exit_code } => Ok(WorkloadRun {
            exit_code,
            stdout: sim.state().stdout_string(),
            stats: *sim.stats(),
            cycles: sim.cycle_stats(),
        }),
        RunOutcome::BudgetExhausted => Err("instruction budget exhausted".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_are_nonempty_and_named() {
        for w in Workload::ALL {
            assert!(!w.source().is_empty(), "{} missing source", w.name());
            assert!(!w.name().is_empty());
        }
    }

    #[test]
    fn all_workloads_compile_for_risc() {
        for w in Workload::ALL {
            w.build(IsaKind::Risc).unwrap_or_else(|e| panic!("{} failed: {e}", w.name()));
        }
    }

    #[test]
    fn dct_runs_correctly_on_risc() {
        let exe = Workload::Dct.build(IsaKind::Risc).unwrap();
        let run = run_functional(&exe, None).unwrap();
        assert_eq!(run.exit_code, Workload::Dct.expected_exit(), "stdout: {}", run.stdout);
        assert!(run.stats.instructions > 1_000);
    }

    #[test]
    fn fabric_workloads_run_standalone() {
        // Without an attached fabric port the shared window falls back to
        // private memory and the simops resolve immediately, so the same
        // programs must still pass their self-checks sequentially.
        for w in [Workload::ProducerConsumer, Workload::ParallelDct] {
            let exe = w.build(IsaKind::Risc).unwrap();
            let run = run_functional(&exe, None).unwrap();
            assert_eq!(run.exit_code, w.expected_exit(), "{} stdout: {}", w.name(), run.stdout);
        }
    }

    #[test]
    fn quicksort_runs_correctly_on_risc() {
        let exe = Workload::Quicksort.build(IsaKind::Risc).unwrap();
        let run = run_functional(&exe, None).unwrap();
        assert_eq!(run.exit_code, Workload::Quicksort.expected_exit(), "stdout: {}", run.stdout);
    }
}
