/// Golden self-check exit codes, order: dct, aes, fft, quicksort, cjpeg,
/// djpeg. Regenerate with `cargo run -p kahrisma-workloads --bin probe`.
pub(crate) const GOLDEN_EXITS: [u32; 6] = [55, 244, 139, 256, 73, 151];
