//! Modeled memory system for the KAHRISMA fabric: per-core private L1s
//! with MESI-approximate coherence, backed by a shared, port-arbitrated L2
//! over a ConnLimit-style interconnect.
//!
//! The functional fabric keeps its barrier-commit shared window (see
//! `kahrisma_core::SharedMem`) — values never flow through this crate. The
//! coherent model is a *timing and traffic* overlay in the spirit of the
//! paper's memory-delay modules (§VI-D): at every quantum barrier the
//! fabric drains each core's word-granular shared-window access log and
//! feeds it here, in core-index order, which keeps the model bit-identical
//! at any host-thread count.
//!
//! Per core the model tracks a direct-mapped L1 tag array with a MESI
//! state per line. Misses and ownership upgrades travel over a
//! [`PortArbiter`] (the paper's "connection limit": a fixed number of
//! interconnect ports, one transaction per port per cycle) into a shared
//! [`MemoryHierarchy`] holding the L2 and main memory. The model counts
//! the coherence traffic the protocol would generate — invalidations,
//! upgrades, writebacks — and the arbitration stalls cores suffer under
//! contention, and approximates per-core cycles as instructions executed
//! plus memory stall cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use kahrisma_core::{AccessKind, CacheConfig, CacheStats, MemGeometry, MemoryHierarchy};

/// Geometry and latency configuration of the coherent memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoherentConfig {
    /// Coherence line size in bytes (power of two).
    pub line_bytes: u32,
    /// Lines per private L1 (direct-mapped).
    pub l1_lines: u32,
    /// L1 hit delay in cycles.
    pub l1_delay: u64,
    /// Shared L2 geometry.
    pub l2: CacheConfig,
    /// Interconnect ports into the shared L2 (the ConnLimit width).
    pub l2_ports: u32,
    /// Main-memory delay behind the L2, in cycles.
    pub mem_delay: u64,
    /// Cost of an ownership upgrade (S → M bus transaction), in cycles.
    pub upgrade_delay: u64,
}

impl Default for CoherentConfig {
    fn default() -> Self {
        CoherentConfig {
            line_bytes: 32,
            l1_lines: 64, // 2 KiB per core, matching the paper's L1 capacity
            l1_delay: 3,
            l2: CacheConfig { size: 64 * 1024, line_size: 32, assoc: 4, delay: 6 },
            l2_ports: 1,
            mem_delay: 18,
            upgrade_delay: 3,
        }
    }
}

impl From<MemGeometry> for CoherentConfig {
    /// Maps the shared geometry knobs onto the coherent memory system; the
    /// coherence-specific latencies (`l1_delay`, `upgrade_delay`) and the
    /// L2 capacity keep their defaults. The L2 line size follows the
    /// coherence line size so both levels stay line-compatible.
    fn from(g: MemGeometry) -> Self {
        let d = CoherentConfig::default();
        CoherentConfig {
            line_bytes: g.line_bytes,
            l1_lines: g.l1_lines,
            l2: CacheConfig { line_size: g.line_bytes, ..d.l2 },
            l2_ports: g.l2_ports,
            mem_delay: g.mem_delay,
            ..d
        }
    }
}

/// MESI-approximate line state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mesi {
    Invalid,
    Shared,
    Exclusive,
    Modified,
}

/// One direct-mapped L1 slot: the cached line number and its state.
#[derive(Debug, Clone, Copy)]
struct L1Slot {
    line: u32,
    state: Mesi,
}

const EMPTY: L1Slot = L1Slot { line: u32::MAX, state: Mesi::Invalid };

/// Per-core coherence counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreCoherence {
    /// Shared-window word accesses observed.
    pub accesses: u64,
    /// L1 hits.
    pub hits: u64,
    /// L1 misses (fetches over the interconnect).
    pub misses: u64,
    /// Invalidations this core's writes sent to other cores.
    pub invalidations_sent: u64,
    /// Lines this core lost to other cores' writes.
    pub invalidations_received: u64,
    /// Ownership upgrades (S → M without a refetch).
    pub upgrades: u64,
    /// Modified lines this core flushed (evictions and snoop flushes).
    pub writebacks: u64,
    /// Cycles spent waiting for an interconnect port.
    pub contention_stalls: u64,
    /// Total memory stall cycles (latency + contention) this core paid.
    pub mem_cycles: u64,
}

impl CoreCoherence {
    fn add(&mut self, other: &CoreCoherence) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidations_sent += other.invalidations_sent;
        self.invalidations_received += other.invalidations_received;
        self.upgrades += other.upgrades;
        self.writebacks += other.writebacks;
        self.contention_stalls += other.contention_stalls;
        self.mem_cycles += other.mem_cycles;
    }
}

/// The paper's "connection limit", reduced to its arbitration essence: a
/// fixed set of interconnect ports, each serving one transaction per
/// cycle. A transaction starting at core-local cycle `t` grabs the
/// earliest-free port; the wait until that port frees is the contention
/// stall attributed to the requesting core.
#[derive(Debug, Clone)]
pub struct PortArbiter {
    free_at: Vec<u64>,
}

impl PortArbiter {
    /// Creates an arbiter with `ports` interconnect ports.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    #[must_use]
    pub fn new(ports: u32) -> Self {
        assert!(ports > 0, "the interconnect needs at least one port");
        PortArbiter { free_at: vec![0; ports as usize] }
    }

    /// Acquires a port for a transaction starting at `t`; returns the
    /// granted start cycle and the stall (`start - t`). The port is busy
    /// until the transaction's `completion` is reported via
    /// [`PortArbiter::release`].
    pub fn acquire(&mut self, t: u64) -> (usize, u64, u64) {
        let (port, &free) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|&(_, &f)| f)
            .expect("at least one port");
        let start = t.max(free);
        (port, start, start - t)
    }

    /// Marks `port` busy until `until`.
    pub fn release(&mut self, port: usize, until: u64) {
        self.free_at[port] = until;
    }
}

/// Aggregate figures the fabric surfaces per run.
#[derive(Debug, Clone, PartialEq)]
pub struct CoherenceReport {
    /// Per-core counters, core-index order.
    pub cores: Vec<CoreCoherence>,
    /// Sum over all cores.
    pub total: CoreCoherence,
    /// Per-core approximate cycle counts (instructions + memory stalls).
    pub cycles: Vec<u64>,
    /// The slowest core's cycle count — the fabric's makespan under the
    /// modeled memory system.
    pub makespan: u64,
    /// Shared-L2 statistics.
    pub l2: Option<CacheStats>,
}

/// The coherent memory model: one instance per fabric, fed at barriers.
#[derive(Debug, Clone)]
pub struct CoherentModel {
    cfg: CoherentConfig,
    l1: Vec<Vec<L1Slot>>,
    shared: MemoryHierarchy,
    arbiter: PortArbiter,
    cycles: Vec<u64>,
    counters: Vec<CoreCoherence>,
}

impl CoherentModel {
    /// Creates a model for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or the configuration is degenerate
    /// (non-power-of-two line size, zero L1 lines or ports).
    #[must_use]
    pub fn new(cores: usize, cfg: CoherentConfig) -> Self {
        assert!(cores > 0, "a fabric has at least one core");
        assert!(cfg.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(cfg.l1_lines > 0, "an L1 needs at least one line");
        let shared = MemoryHierarchy::new().with_cache(cfg.l2).with_memory(cfg.mem_delay);
        CoherentModel {
            cfg,
            l1: vec![vec![EMPTY; cfg.l1_lines as usize]; cores],
            shared,
            arbiter: PortArbiter::new(cfg.l2_ports),
            cycles: vec![0; cores],
            counters: vec![CoreCoherence::default(); cores],
        }
    }

    /// The configured geometry.
    #[must_use]
    pub fn config(&self) -> &CoherentConfig {
        &self.cfg
    }

    /// Accounts one core's quantum: `instructions` executed (1 cycle each,
    /// the cycle-approximate baseline) and its coalesced word-granular
    /// shared-window access log, entries `(word_offset << 1) | is_write`
    /// as produced by `SharedPort::take_accesses`.
    ///
    /// Call once per core per quantum **in core-index order** — the global
    /// transaction order the model assumes is exactly this call order,
    /// which the fabric keeps independent of host threading.
    pub fn core_quantum(&mut self, core: usize, instructions: u64, accesses: &[u32]) {
        self.cycles[core] += instructions;
        for &entry in accesses {
            let write = entry & 1 != 0;
            let byte_off = (entry >> 1) << 2;
            self.access(core, byte_off, write);
        }
    }

    /// One word access by `core` at window byte offset `byte_off`.
    fn access(&mut self, core: usize, byte_off: u32, write: bool) {
        let line = byte_off / self.cfg.line_bytes;
        let slot = (line % self.cfg.l1_lines) as usize;
        let t = self.cycles[core];
        self.counters[core].accesses += 1;

        let cached = self.l1[core][slot];
        let holds = cached.line == line && cached.state != Mesi::Invalid;
        let done = if holds {
            self.counters[core].hits += 1;
            match (write, cached.state) {
                // Read hit in any valid state, write hit in M: pure L1.
                (false, _) | (true, Mesi::Modified) => t + self.cfg.l1_delay,
                // Write hit in E: silent upgrade to M.
                (true, Mesi::Exclusive) => {
                    self.l1[core][slot].state = Mesi::Modified;
                    t + self.cfg.l1_delay
                }
                // Write hit in S: ownership upgrade over the interconnect.
                (true, Mesi::Shared) => {
                    self.counters[core].upgrades += 1;
                    self.invalidate_others(core, line);
                    self.l1[core][slot].state = Mesi::Modified;
                    let (port, start, stall) = self.arbiter.acquire(t);
                    self.counters[core].contention_stalls += stall;
                    let done = start + self.cfg.upgrade_delay;
                    self.arbiter.release(port, done);
                    done
                }
                (true, Mesi::Invalid) => unreachable!("holds implies a valid state"),
            }
        } else {
            self.miss(core, slot, line, write, t)
        };
        self.counters[core].mem_cycles += done - t;
        self.cycles[core] = done;
    }

    /// An L1 miss: snoop the other cores, fetch the line through the
    /// arbitrated shared hierarchy, evict the direct-mapped victim.
    fn miss(&mut self, core: usize, slot: usize, line: u32, write: bool, t: u64) -> u64 {
        self.counters[core].misses += 1;
        let line_addr = line * self.cfg.line_bytes;

        let (port, start, stall) = self.arbiter.acquire(t);
        self.counters[core].contention_stalls += stall;
        let mut cur = start;

        // Snoop: a Modified copy elsewhere must be flushed before the
        // fetch can be serviced; on a write every other copy dies, on a
        // read M/E copies downgrade to S.
        let mut others_hold = false;
        for other in 0..self.l1.len() {
            if other == core {
                continue;
            }
            let o = &mut self.l1[other][slot];
            if o.line != line || o.state == Mesi::Invalid {
                continue;
            }
            if o.state == Mesi::Modified {
                self.counters[other].writebacks += 1;
                cur = self.shared.access(line_addr, AccessKind::Write, other as u8, cur);
            }
            if write {
                o.state = Mesi::Invalid;
                o.line = u32::MAX;
                self.counters[core].invalidations_sent += 1;
                self.counters[other].invalidations_received += 1;
            } else {
                o.state = Mesi::Shared;
                others_hold = true;
            }
        }

        // Fetch through the shared L2 / memory.
        cur = self.shared.access(line_addr, AccessKind::Read, core as u8, cur);
        self.arbiter.release(port, cur);

        // Evict this core's direct-mapped victim; a Modified victim is
        // written back through the same hierarchy.
        let victim = self.l1[core][slot];
        if victim.state == Mesi::Modified && victim.line != line {
            self.counters[core].writebacks += 1;
            let victim_addr = victim.line * self.cfg.line_bytes;
            let (vport, vstart, vstall) = self.arbiter.acquire(cur);
            self.counters[core].contention_stalls += vstall;
            let vdone = self.shared.access(victim_addr, AccessKind::Write, core as u8, vstart);
            self.arbiter.release(vport, vdone);
            cur = vdone;
        }

        let state = if write {
            Mesi::Modified
        } else if others_hold {
            Mesi::Shared
        } else {
            Mesi::Exclusive
        };
        self.l1[core][slot] = L1Slot { line, state };
        // The fill pays the L1 delay once more, as in the paper's cache
        // module ("the cache delay is added again").
        cur + self.cfg.l1_delay
    }

    /// Invalidates every other core's copy of `line` (upgrade path: the
    /// copies are S, so no flush traffic).
    fn invalidate_others(&mut self, core: usize, line: u32) {
        let slot = (line % self.cfg.l1_lines) as usize;
        for other in 0..self.l1.len() {
            if other == core {
                continue;
            }
            let o = &mut self.l1[other][slot];
            if o.line == line && o.state != Mesi::Invalid {
                o.state = Mesi::Invalid;
                o.line = u32::MAX;
                self.counters[core].invalidations_sent += 1;
                self.counters[other].invalidations_received += 1;
            }
        }
    }

    /// This core's approximate cycle count so far.
    #[must_use]
    pub fn core_cycles(&self, core: usize) -> u64 {
        self.cycles[core]
    }

    /// Per-core counters, core-index order.
    #[must_use]
    pub fn counters(&self) -> &[CoreCoherence] {
        &self.counters
    }

    /// The full report: per-core counters, totals, cycles, makespan, L2.
    #[must_use]
    pub fn report(&self) -> CoherenceReport {
        let mut total = CoreCoherence::default();
        for c in &self.counters {
            total.add(c);
        }
        CoherenceReport {
            cores: self.counters.clone(),
            total,
            cycles: self.cycles.clone(),
            makespan: self.cycles.iter().copied().max().unwrap_or(0),
            l2: self.shared.l1_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(cores: usize) -> CoherentModel {
        CoherentModel::new(cores, CoherentConfig::default())
    }

    const R: u32 = 0; // read of word 0
    const W: u32 = 1; // write of word 0

    #[test]
    fn geometry_maps_onto_coherent_config() {
        assert_eq!(CoherentConfig::from(MemGeometry::default()), CoherentConfig::default());
        let g = MemGeometry { l1_lines: 8, line_bytes: 16, l2_ports: 2, mem_delay: 40 };
        let cfg = CoherentConfig::from(g);
        assert_eq!(cfg.l1_lines, 8);
        assert_eq!(cfg.line_bytes, 16);
        assert_eq!(cfg.l2.line_size, 16);
        assert_eq!(cfg.l2_ports, 2);
        assert_eq!(cfg.mem_delay, 40);
        assert_eq!(cfg.l1_delay, CoherentConfig::default().l1_delay);
        assert_eq!(cfg.upgrade_delay, CoherentConfig::default().upgrade_delay);
        assert_eq!(cfg.l2.size, CoherentConfig::default().l2.size);
    }

    #[test]
    fn private_reads_hit_after_cold_miss() {
        let mut m = model(2);
        m.core_quantum(0, 100, &[R, R, R]);
        let c = m.counters()[0];
        assert_eq!(c.accesses, 3);
        assert_eq!(c.misses, 1);
        assert_eq!(c.hits, 2);
        assert_eq!(c.invalidations_sent, 0);
        assert!(m.core_cycles(0) > 100, "memory stalls extend the quantum");
    }

    #[test]
    fn write_invalidates_the_other_reader() {
        let mut m = model(2);
        m.core_quantum(0, 10, &[R]); // core 0 reads: E
        m.core_quantum(1, 10, &[R]); // core 1 reads: both S
        m.core_quantum(0, 10, &[W]); // core 0 writes: upgrade + invalidate
        let c0 = m.counters()[0];
        let c1 = m.counters()[1];
        assert_eq!(c0.upgrades, 1, "S write is an ownership upgrade");
        assert_eq!(c0.invalidations_sent, 1);
        assert_eq!(c1.invalidations_received, 1);
        // Core 1 must refetch.
        let misses_before = m.counters()[1].misses;
        m.core_quantum(1, 10, &[R]);
        assert_eq!(m.counters()[1].misses, misses_before + 1);
    }

    #[test]
    fn modified_line_flushes_on_remote_read() {
        let mut m = model(2);
        m.core_quantum(0, 10, &[W]); // core 0: M (write miss)
        assert_eq!(m.counters()[0].invalidations_sent, 0, "no other copy yet");
        m.core_quantum(1, 10, &[R]); // core 1 read snoops the M copy out
        assert_eq!(m.counters()[0].writebacks, 1, "M copy flushed by the snoop");
        // Both now share; a second write by core 0 upgrades again. Its line
        // downgraded to S in place, so this is an upgrade, not a miss.
        let misses = m.counters()[0].misses;
        m.core_quantum(0, 10, &[W]);
        assert_eq!(m.counters()[0].misses, misses, "upgrade, not refetch");
        assert_eq!(m.counters()[0].upgrades, 1);
    }

    #[test]
    fn exclusive_write_is_silent() {
        let mut m = model(2);
        m.core_quantum(0, 10, &[R, W]); // E then silent E→M
        let c = m.counters()[0];
        assert_eq!(c.upgrades, 0, "E→M needs no bus transaction");
        assert_eq!(c.misses, 1);
        assert_eq!(c.hits, 1);
    }

    #[test]
    fn ping_pong_generates_traffic_and_stalls() {
        let mut m = model(4);
        // All four cores hammer the same word for several quanta.
        for _ in 0..8 {
            for core in 0..4 {
                m.core_quantum(core, 50, &[R, W, R, W]);
            }
        }
        let r = m.report();
        assert!(r.total.invalidations_sent > 10, "{:?}", r.total);
        assert_eq!(r.total.invalidations_sent, r.total.invalidations_received);
        assert!(r.total.writebacks > 0);
        assert!(r.total.mem_cycles > 0);
        assert_eq!(r.makespan, *r.cycles.iter().max().unwrap());
        let l2 = r.l2.expect("shared L2 present");
        assert!(l2.hits + l2.misses > 0, "traffic reached the L2");
    }

    #[test]
    fn disjoint_words_in_one_line_still_ping_pong() {
        // False sharing: word 0 and word 4 share a 32-byte line.
        let mut m = model(2);
        let w0 = 1; // write word 0
        let w4 = (4 << 1) | 1; // write word 4, same line
        for _ in 0..4 {
            m.core_quantum(0, 10, &[w0]);
            m.core_quantum(1, 10, &[w4]);
        }
        let r = m.report();
        assert!(r.total.invalidations_sent >= 6, "false sharing must ping-pong: {:?}", r.total);
    }

    #[test]
    fn port_contention_is_attributed() {
        // Single port: back-to-back misses from different cores stall.
        let cfg = CoherentConfig { l2_ports: 1, ..CoherentConfig::default() };
        let mut m = CoherentModel::new(2, cfg);
        // Different lines so coherence traffic is zero; contention only.
        let line_a = 0u32 << 1; // word 0, read
        let line_b = (64u32 >> 2) << 1; // byte 64 → different line, read
        m.core_quantum(0, 0, &[line_a]);
        m.core_quantum(1, 0, &[line_b]);
        let r = m.report();
        assert_eq!(r.total.invalidations_sent, 0);
        assert!(
            r.cores[1].contention_stalls > 0,
            "second core must wait for the single port: {:?}",
            r.cores[1]
        );
        let wide = CoherentConfig { l2_ports: 4, ..CoherentConfig::default() };
        let mut m2 = CoherentModel::new(2, wide);
        m2.core_quantum(0, 0, &[line_a]);
        m2.core_quantum(1, 0, &[line_b]);
        assert_eq!(m2.report().total.contention_stalls, 0, "4 ports absorb 2 misses");
    }

    #[test]
    fn deterministic_across_identical_feeds() {
        let feed: Vec<u32> = (0..64).map(|i| (i % 16) << 1 | (i & 1)).collect();
        let mut a = model(3);
        let mut b = model(3);
        for q in 0..5 {
            for core in 0..3 {
                a.core_quantum(core, 100 + q, &feed);
                b.core_quantum(core, 100 + q, &feed);
            }
        }
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn arbiter_grants_in_order() {
        let mut a = PortArbiter::new(1);
        let (p0, s0, w0) = a.acquire(10);
        a.release(p0, 20);
        assert_eq!((s0, w0), (10, 0));
        let (p1, s1, w1) = a.acquire(12);
        a.release(p1, 25);
        assert_eq!((s1, w1), (20, 8), "port busy until 20");
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_panics() {
        let _ = PortArbiter::new(0);
    }
}
