//! Hostile- and slow-client tests: the event loop must keep serving
//! well-behaved clients while others dribble partial frames, sit half-open,
//! or vanish mid-run — and the raised frame cap must admit oversized
//! snapshot frames while a lowered one rejects them with clean recovery.

use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use kahrisma_serve::client::ClientError;
use kahrisma_serve::json::{parse, Value};
use kahrisma_serve::proto::MAX_FRAME_BYTES;
use kahrisma_serve::{Client, Daemon, DaemonHandle, ServerConfig};

fn start_daemon(config: ServerConfig) -> (String, DaemonHandle, std::thread::JoinHandle<()>) {
    let daemon = Daemon::bind(ServerConfig { addr: "127.0.0.1:0".to_string(), ..config })
        .expect("bind ephemeral port");
    let addr = daemon.local_addr().expect("local addr").to_string();
    let handle = daemon.handle().expect("handle");
    let thread = std::thread::spawn(move || daemon.run().expect("accept loop"));
    (addr, handle, thread)
}

fn stop(handle: DaemonHandle, thread: std::thread::JoinHandle<()>) {
    handle.shutdown();
    thread.join().expect("daemon thread");
}

/// Reads one newline-terminated frame from a raw socket.
fn read_frame(stream: &mut TcpStream) -> Value {
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read frame");
    parse(line.trim()).expect("parse frame")
}

#[test]
fn slow_loris_partial_frames_do_not_block_other_clients() {
    let (addr, handle, thread) = start_daemon(ServerConfig::default());

    // Three slow-loris connections, each holding an incomplete frame open.
    let mut loris: Vec<TcpStream> = (0..3)
        .map(|_| {
            let mut s = TcpStream::connect(&addr).expect("connect");
            s.write_all(b"{\"id\":1,\"cmd\":\"pi").expect("partial write");
            s.flush().unwrap();
            s
        })
        .collect();

    // A well-behaved client gets full service while the loris conns stall.
    let mut client = Client::connect(&addr).unwrap();
    client.create("victim", "dct", "risc", Vec::new()).unwrap();
    let run = client.run("victim", None, false, false).unwrap();
    assert_eq!(run.get("outcome").and_then(Value::as_str), Some("halted"));

    // The stalled frames complete byte by byte and still get answers: a
    // partial frame is pending state, not an error.
    for stream in &mut loris {
        for byte in b"ng\"}".iter() {
            stream.write_all(&[*byte]).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(5));
        }
        stream.write_all(b"\n").unwrap();
        stream.flush().unwrap();
        let pong = read_frame(stream);
        assert_eq!(pong.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(pong.get("pong").and_then(Value::as_bool), Some(true));
    }
    stop(handle, thread);
}

#[test]
fn half_open_connections_do_not_starve_the_accept_loop() {
    let (addr, handle, thread) = start_daemon(ServerConfig::default());
    // A pile of connections that never send a byte.
    let silent: Vec<TcpStream> =
        (0..32).map(|_| TcpStream::connect(&addr).expect("connect")).collect();
    // Service continues: connect, ping, full session round trip.
    let mut client = Client::connect(&addr).unwrap();
    let load = client.ping_load().unwrap();
    assert!(load.max_frame.is_some(), "extended ping advertises the frame cap");
    client.create("alive", "dct", "risc", Vec::new()).unwrap();
    client.run("alive", None, false, false).unwrap();
    // Dropping the silent connections must not disturb anyone either.
    drop(silent);
    client.session_verb("stats", "alive").unwrap();
    stop(handle, thread);
}

#[test]
fn disconnect_mid_run_leaves_the_session_resumable() {
    let (addr, handle, thread) = start_daemon(ServerConfig::default());
    let mut client = Client::connect(&addr).unwrap();
    client.create("orphan", "dct", "risc", Vec::new()).unwrap();

    // Start a long run over a raw socket and vanish mid-request.
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.write_all(
        b"{\"id\":9,\"cmd\":\"run\",\"name\":\"orphan\",\"budget\":30000000,\"loop\":true}\n",
    )
    .unwrap();
    raw.flush().unwrap();
    std::thread::sleep(Duration::from_millis(30));
    drop(raw);

    // The session finishes (or is reaped back to idle) server-side and
    // stays usable: poll stats until the run slot frees.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match client.session_verb("stats", "orphan") {
            Ok(stats) => {
                assert!(
                    stats.get("instructions").and_then(Value::as_u64).unwrap_or(0) > 0,
                    "the interrupted run still made progress"
                );
                break;
            }
            Err(ClientError::Server { ref code, .. }) if code == "busy" => {
                assert!(Instant::now() < deadline, "session never came back");
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    // And it still runs to completion for its next owner.
    let run = client.run("orphan", None, false, false).unwrap();
    assert_eq!(run.get("outcome").and_then(Value::as_str), Some("halted"));
    stop(handle, thread);
}

/// The regression the raised default exists for: a snapshot-bearing export
/// frame larger than the historical 64 KiB cap round-trips through
/// `import` under the 8 MiB default.
#[test]
fn oversized_snapshot_frames_round_trip_under_the_raised_cap() {
    let (addr, handle, thread) = start_daemon(ServerConfig::default());
    let mut client = Client::connect(&addr).unwrap();
    // djpeg touches the most memory of the bundled workloads; with a saved
    // snapshot slot on top, its export exceeds the old frame cap.
    client.create("jumbo", "djpeg", "risc", Vec::new()).unwrap();
    client.run("jumbo", None, false, false).unwrap();
    client.session_verb("snapshot", "jumbo").unwrap();
    let exported = client.export("jumbo").unwrap();
    assert_eq!(exported.get("mode").and_then(Value::as_str), Some("state"));
    assert!(
        exported.to_json().len() > MAX_FRAME_BYTES,
        "need an export bigger than the legacy {MAX_FRAME_BYTES}-byte cap, got {}",
        exported.to_json().len()
    );
    // The import request carries the same oversized payload back in.
    client.import("jumbo-copy", &exported).unwrap();
    let original = client.session_verb("stats", "jumbo").unwrap();
    let copy = client.session_verb("stats", "jumbo-copy").unwrap();
    let strip_id = |v: &Value| match v {
        Value::Obj(fields) => {
            Value::Obj(fields.iter().filter(|(k, _)| k != "id").cloned().collect())
        }
        other => other.clone(),
    };
    assert_eq!(strip_id(&copy), strip_id(&original), "imported state is bit-identical");
    stop(handle, thread);
}

#[test]
fn lowered_frame_cap_rejects_oversized_frames_and_recovers() {
    let (addr, handle, thread) =
        start_daemon(ServerConfig { max_frame: 2048, ..ServerConfig::default() });
    let mut stream = TcpStream::connect(&addr).unwrap();
    // A 4 KiB frame against a 2 KiB cap: rejected as bad_frame (id null,
    // since the frame is discarded unparsed)...
    let oversized = format!("{{\"id\":3,\"cmd\":\"ping\",\"pad\":\"{}\"}}\n", "x".repeat(4096));
    stream.write_all(oversized.as_bytes()).unwrap();
    stream.flush().unwrap();
    let rejection = read_frame(&mut stream);
    assert_eq!(rejection.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(rejection.get("code").and_then(Value::as_str), Some("bad_frame"));
    assert!(matches!(rejection.get("id"), Some(Value::Null)));
    // ...and the connection recovers: the next frame is served normally.
    stream.write_all(b"{\"id\":4,\"cmd\":\"ping\"}\n").unwrap();
    stream.flush().unwrap();
    let pong = read_frame(&mut stream);
    assert_eq!(pong.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(pong.get("id").and_then(Value::as_u64), Some(4));
    // The advertised cap follows the configuration.
    let mut client = Client::connect(&addr).unwrap();
    assert_eq!(client.ping_load().unwrap().max_frame, Some(2048));
    stop(handle, thread);
}

/// `ping_load` against a daemon that predates the extended ping: the
/// missing load fields parse as zero/absent instead of failing.
#[test]
fn ping_load_tolerates_minimal_older_daemons() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let fake = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        // Consume the request, then answer the pre-extension pong shape.
        let mut buf = [0u8; 1024];
        let _ = stream.read(&mut buf);
        stream
            .write_all(b"{\"id\":1,\"ok\":true,\"pong\":true,\"proto_version\":1}\n")
            .unwrap();
    });
    let mut client = Client::connect(&addr).unwrap();
    let load = client.ping_load().expect("tolerant parse");
    assert_eq!(load.proto_version, Some(1));
    assert_eq!(load.sessions, 0);
    assert_eq!(load.running, 0);
    assert_eq!(load.uptime_ms, 0);
    assert_eq!(load.max_frame, None);
    assert!(!load.draining);
    fake.join().unwrap();
}

#[test]
fn slow_loris_frames_never_trip_the_slow_verb_log() {
    // --slow-ms measures verb *execution*, which starts only after a frame
    // has fully arrived — a client dribbling its frame for longer than the
    // threshold must not be logged (or counted) as a slow verb.
    let (addr, handle, thread) = start_daemon(ServerConfig {
        slow_ms: Some(200),
        ..ServerConfig::default()
    });
    let mut loris = TcpStream::connect(&addr).expect("connect");
    // The frame takes ~330 ms to arrive — well past the 200 ms threshold.
    let frame = b"{\"id\":7,\"cmd\":\"ping\"}\n";
    for chunk in frame.chunks(4) {
        loris.write_all(chunk).expect("dribble");
        loris.flush().unwrap();
        std::thread::sleep(Duration::from_millis(55));
    }
    let pong = read_frame(&mut loris);
    assert_eq!(pong.get("ok").and_then(Value::as_bool), Some(true));
    // A pool verb that arrives slowly but executes fast is also not slow.
    let mut client = Client::connect(&addr).unwrap();
    client.create("s", "dct", "risc", Vec::new()).unwrap();
    let metrics = client.server_metrics().unwrap();
    assert_eq!(
        metrics
            .get("counters")
            .and_then(|c| c.get("slow.logged"))
            .and_then(Value::as_u64)
            .unwrap_or(0),
        0,
        "no verb exceeded the execution threshold: {}",
        metrics.to_json()
    );
    stop(handle, thread);
}
