//! Wire-protocol integration tests: an in-process daemon on an ephemeral
//! port, driven by real TCP clients.
//!
//! Coverage required by the serving subsystem: malformed frames (with
//! recovery), budget-sliced runs, concurrent sessions, idle-timeout
//! eviction, overload responses with `retry_after_ms`, streaming, and a
//! snapshot→restore round trip whose deterministic results are
//! bit-identical to an uninterrupted local run.

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::time::Duration;

use kahrisma_core::{RunOutcome, SimConfig, Simulator};
use kahrisma_isa::IsaKind;
use kahrisma_serve::client::ClientError;
use kahrisma_serve::json::{parse, Value};
use kahrisma_serve::{Client, Daemon, DaemonHandle, ServerConfig};
use kahrisma_workloads::Workload;

/// Starts a daemon on an ephemeral port; returns its address, a stop
/// handle, and the accept-loop thread (joined by `stop`).
fn start_daemon(config: ServerConfig) -> (String, DaemonHandle, std::thread::JoinHandle<()>) {
    let daemon = Daemon::bind(ServerConfig { addr: "127.0.0.1:0".to_string(), ..config })
        .expect("bind ephemeral port");
    let addr = daemon.local_addr().expect("local addr").to_string();
    let handle = daemon.handle().expect("handle");
    let thread = std::thread::spawn(move || daemon.run().expect("accept loop"));
    (addr, handle, thread)
}

fn stop(handle: DaemonHandle, thread: std::thread::JoinHandle<()>) {
    handle.shutdown();
    thread.join().expect("daemon thread");
}

#[test]
fn ping_create_run_stats_round_trip() {
    let (addr, handle, thread) = start_daemon(ServerConfig::default());
    let mut client = Client::connect(&addr).unwrap();
    client.ping().unwrap();

    client.create("s1", "dct", "risc", Vec::new()).unwrap();
    let run = client.run("s1", None, false, false).unwrap();
    assert_eq!(run.get("outcome").unwrap().as_str(), Some("halted"));
    assert_eq!(
        run.get("exit_code").unwrap().as_u64(),
        Some(u64::from(Workload::Dct.expected_exit()))
    );

    // Stats match a direct local run of the same cell bit-for-bit.
    let stats = client.session_verb("stats", "s1").unwrap();
    let exe = Workload::Dct.build(IsaKind::Risc).unwrap();
    let mut sim = Simulator::new(&exe, SimConfig::default()).unwrap();
    sim.run(u64::MAX).unwrap();
    let local = sim.stats();
    for (key, want) in [
        ("instructions", local.instructions),
        ("operations", local.operations),
        ("mem_reads", local.mem_reads),
        ("mem_writes", local.mem_writes),
        ("taken_branches", local.taken_branches),
    ] {
        assert_eq!(stats.get(key).unwrap().as_u64(), Some(want), "{key}");
    }
    assert_eq!(stats.get("halted").unwrap().as_bool(), Some(true));

    // Metrics verb returns a valid deterministic registry document.
    let m1 = client.session_verb("metrics", "s1").unwrap();
    let m2 = client.session_verb("metrics", "s1").unwrap();
    assert_eq!(
        m1.get("metrics").unwrap().to_json(),
        m2.get("metrics").unwrap().to_json()
    );
    assert_eq!(
        m1.get("metrics").unwrap().get("counters").and_then(|c| {
            c.get("sim.instructions").and_then(Value::as_u64)
        }),
        Some(local.instructions)
    );
    stop(handle, thread);
}

#[test]
fn malformed_frames_get_bad_frame_and_the_connection_recovers() {
    let (addr, handle, thread) = start_daemon(ServerConfig::default());
    let stream = TcpStream::connect(&addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();

    for bad in ["{not json", "[1,2,3]", "\"a string\"", "{\"cmd\":}"] {
        writer.write_all(bad.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        let v = parse(line.trim()).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false), "{bad}: {line}");
        assert_eq!(v.get("code").unwrap().as_str(), Some("bad_frame"), "{bad}");
        assert_eq!(v.get("id"), Some(&Value::Null));
    }

    // The same connection still serves valid requests afterwards.
    writer.write_all(b"{\"id\":9,\"cmd\":\"ping\"}\n").unwrap();
    writer.flush().unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    let v = parse(line.trim()).unwrap();
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(v.get("id").unwrap().as_u64(), Some(9));

    // Unknown verbs and missing names are bad_request, not bad_frame.
    writer.write_all(b"{\"id\":10,\"cmd\":\"frobnicate\"}\n").unwrap();
    writer.flush().unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    let v = parse(line.trim()).unwrap();
    assert_eq!(v.get("code").unwrap().as_str(), Some("bad_request"));
    stop(handle, thread);
}

#[test]
fn budget_sliced_runs_resume_and_finish() {
    // A slice far smaller than the workload forces many run_for slices per
    // request, and a small budget forces multiple requests to finish.
    let config = ServerConfig { slice: 1000, ..ServerConfig::default() };
    let (addr, handle, thread) = start_daemon(config);
    let mut client = Client::connect(&addr).unwrap();
    client.create("s", "dct", "risc", Vec::new()).unwrap();

    let first = client.run("s", Some(5000), false, false).unwrap();
    assert_eq!(first.get("outcome").unwrap().as_str(), Some("budget"));
    assert_eq!(first.get("instructions").unwrap().as_u64(), Some(5000));
    assert_eq!(first.get("total_instructions").unwrap().as_u64(), Some(5000));

    // Resume until halted; the instruction total must match a direct run.
    let mut total = 5000u64;
    let mut halted = false;
    for _ in 0..10_000 {
        let resp = client.run("s", Some(50_000), false, false).unwrap();
        total += resp.get("instructions").unwrap().as_u64().unwrap();
        if resp.get("outcome").unwrap().as_str() == Some("halted") {
            halted = true;
            assert_eq!(resp.get("total_instructions").unwrap().as_u64(), Some(total));
            break;
        }
    }
    assert!(halted, "workload must halt");
    let exe = Workload::Dct.build(IsaKind::Risc).unwrap();
    let mut sim = Simulator::new(&exe, SimConfig::default()).unwrap();
    sim.run(u64::MAX).unwrap();
    assert_eq!(total, sim.stats().instructions);
    stop(handle, thread);
}

#[test]
fn concurrent_sessions_serve_in_parallel() {
    let (addr, handle, thread) = start_daemon(ServerConfig::default());
    let mut workers = Vec::new();
    for (i, (workload, isa)) in [
        ("dct", "risc"),
        ("fft", "vliw4"),
        ("quicksort", "risc"),
        ("dct", "vliw2"),
    ]
    .into_iter()
    .enumerate()
    {
        let addr = addr.clone();
        workers.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr).unwrap();
            let name = format!("c{i}");
            client.create(&name, workload, isa, Vec::new()).unwrap();
            let run = client.run(&name, None, false, false).unwrap();
            assert_eq!(run.get("outcome").unwrap().as_str(), Some("halted"));
            let w = Workload::ALL.into_iter().find(|w| w.name() == workload).unwrap();
            assert_eq!(
                run.get("exit_code").unwrap().as_u64(),
                Some(u64::from(w.expected_exit())),
                "{name}"
            );
        }));
    }
    for w in workers {
        w.join().expect("worker");
    }
    // All four sessions remain resident and idle.
    let mut client = Client::connect(&addr).unwrap();
    let list = client.list().unwrap();
    let sessions = list.get("sessions").unwrap().as_arr().unwrap();
    assert_eq!(sessions.len(), 4);
    assert!(sessions.iter().all(|s| s.get("state").unwrap().as_str() == Some("idle")));
    stop(handle, thread);
}

#[test]
fn idle_sessions_are_evicted_after_the_timeout() {
    let config = ServerConfig {
        idle_timeout: Duration::from_millis(60),
        ..ServerConfig::default()
    };
    let (addr, handle, thread) = start_daemon(config);
    let mut client = Client::connect(&addr).unwrap();
    client.create("ephemeral", "dct", "risc", Vec::new()).unwrap();
    client.session_verb("stats", "ephemeral").unwrap();
    std::thread::sleep(Duration::from_millis(150));
    // Any request sweeps; the stale session is gone.
    let err = client.session_verb("stats", "ephemeral").unwrap_err();
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, "not_found"),
        other => panic!("expected not_found, got {other}"),
    }
    stop(handle, thread);
}

#[test]
fn overloaded_runs_carry_retry_after_ms() {
    // max_running = 1: occupy the only run slot with a long looped run,
    // then a second session's run must be rejected as overloaded.
    let config = ServerConfig {
        max_running: 1,
        retry_after_ms: 123,
        request_timeout: Duration::from_secs(120),
        ..ServerConfig::default()
    };
    let (addr, handle, thread) = start_daemon(config);
    let mut setup = Client::connect(&addr).unwrap();
    setup.create("big", "dct", "risc", Vec::new()).unwrap();
    setup.create("small", "dct", "risc", Vec::new()).unwrap();

    let addr2 = addr.clone();
    let runner = std::thread::spawn(move || {
        let mut client = Client::connect(&addr2).unwrap();
        // A large looped budget: holds the run slot for seconds in a
        // debug build.
        client.run("big", Some(60_000_000), false, true).unwrap()
    });
    // Wait until the long run actually occupies the slot.
    let mut saw_running = false;
    for _ in 0..400 {
        let list = setup.list().unwrap();
        let sessions = list.get("sessions").unwrap().as_arr().unwrap();
        if sessions
            .iter()
            .any(|s| s.get("state").unwrap().as_str() == Some("running"))
        {
            saw_running = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(saw_running, "long run never showed up as running");

    let err = setup.run("small", Some(1000), false, false).unwrap_err();
    match err {
        ClientError::Server { code, retry_after_ms, .. } => {
            assert_eq!(code, "overloaded");
            assert_eq!(retry_after_ms, Some(123));
        }
        other => panic!("expected overloaded, got {other}"),
    }
    let resp = runner.join().expect("runner");
    assert_eq!(resp.get("outcome").unwrap().as_str(), Some("budget"));
    stop(handle, thread);
}

#[test]
fn snapshot_restore_over_the_wire_matches_uninterrupted_run() {
    let (addr, handle, thread) = start_daemon(ServerConfig::default());
    let mut client = Client::connect(&addr).unwrap();
    client
        .create("w", "fft", "risc", vec![("model".to_string(), "doe".into())])
        .unwrap();

    // Run partway, snapshot, run to completion, then restore and rerun the
    // tail. Deterministic results must be bit-identical both times and
    // equal to an uninterrupted local run.
    client.run("w", Some(20_000), false, false).unwrap();
    let snap = client.session_verb("snapshot", "w").unwrap();
    assert_eq!(snap.get("instructions").unwrap().as_u64(), Some(20_000));

    let first = client.run("w", None, false, false).unwrap();
    assert_eq!(first.get("outcome").unwrap().as_str(), Some("halted"));
    let stats_first = client.session_verb("stats", "w").unwrap();

    let restored = client.session_verb("restore", "w").unwrap();
    assert_eq!(restored.get("instructions").unwrap().as_u64(), Some(20_000));
    let second = client.run("w", None, false, false).unwrap();
    assert_eq!(second.get("outcome").unwrap().as_str(), Some("halted"));
    let stats_second = client.session_verb("stats", "w").unwrap();

    // Uninterrupted local reference.
    let exe = Workload::Fft.build(IsaKind::Risc).unwrap();
    let mut sim = Simulator::new(
        &exe,
        SimConfig::with_model(kahrisma_core::CycleModelKind::Doe),
    )
    .unwrap();
    let RunOutcome::Halted { exit_code } = sim.run(u64::MAX).unwrap() else {
        panic!("local run must halt");
    };
    let local = sim.stats();
    let local_cycles = sim.cycle_stats().unwrap().cycles;

    // Deterministic result fields: identical across the interrupted serve
    // runs and the uninterrupted local run. (Decode-cache probe counters
    // legitimately differ: restore clears the prediction anchor.)
    for stats in [&stats_first, &stats_second] {
        assert_eq!(
            stats.get("instructions").unwrap().as_u64(),
            Some(local.instructions)
        );
        assert_eq!(stats.get("operations").unwrap().as_u64(), Some(local.operations));
        assert_eq!(stats.get("mem_reads").unwrap().as_u64(), Some(local.mem_reads));
        assert_eq!(stats.get("mem_writes").unwrap().as_u64(), Some(local.mem_writes));
        assert_eq!(stats.get("cycles").unwrap().as_u64(), Some(local_cycles));
        assert_eq!(stats.get("exit_code").unwrap().as_u64(), Some(u64::from(exit_code)));
    }
    assert_eq!(
        first.get("exit_code").unwrap().as_u64(),
        second.get("exit_code").unwrap().as_u64()
    );
    stop(handle, thread);
}

#[test]
fn stream_delivers_event_frames_before_the_response() {
    let (addr, handle, thread) = start_daemon(ServerConfig::default());
    let mut client = Client::connect(&addr).unwrap();
    client.create("s", "dct", "risc", Vec::new()).unwrap();
    let mut frames = Vec::new();
    let resp = client
        .stream("s", Some(2000), Some(10_000), |frame| frames.push(frame.clone()))
        .unwrap();
    assert_eq!(resp.get("outcome").unwrap().as_str(), Some("budget"));
    let emitted = resp.get("frames").unwrap().as_u64().unwrap();
    assert_eq!(emitted as usize, frames.len());
    assert!(!frames.is_empty());
    // Every frame names the session and carries a tagged event; the instr
    // track is present and sequenced.
    assert!(frames
        .iter()
        .all(|f| f.get("stream").unwrap().as_str() == Some("s")));
    let seqs: Vec<u64> = frames
        .iter()
        .filter_map(|f| {
            let e = f.get("event")?;
            (e.get("event")?.as_str()? == "instr").then(|| e.get("seq")?.as_u64())?
        })
        .collect();
    assert!(!seqs.is_empty());
    assert_eq!(seqs[0], 0);
    assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1));
    stop(handle, thread);
}

#[test]
fn session_table_capacity_evicts_lru_idle() {
    let config = ServerConfig { max_sessions: 2, ..ServerConfig::default() };
    let (addr, handle, thread) = start_daemon(config);
    let mut client = Client::connect(&addr).unwrap();
    client.create("a", "dct", "risc", Vec::new()).unwrap();
    std::thread::sleep(Duration::from_millis(10));
    client.create("b", "dct", "risc", Vec::new()).unwrap();
    client.create("c", "dct", "risc", Vec::new()).unwrap();
    let list = client.list().unwrap();
    let names: Vec<&str> = list
        .get("sessions")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|s| s.get("name").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(names, ["b", "c"], "LRU session `a` must be evicted");
    // Duplicate names are rejected.
    let err = client.create("b", "dct", "risc", Vec::new()).unwrap_err();
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, "bad_request"),
        other => panic!("expected bad_request, got {other}"),
    }
    stop(handle, thread);
}

#[test]
fn fabric_sessions_round_trip_over_the_wire() {
    let (addr, handle, thread) = start_daemon(ServerConfig::default());
    let mut client = Client::connect(&addr).unwrap();
    client.handshake().unwrap();

    let created = client
        .create_fabric("fab", "dct:risc, dct:vliw4", Some(10_000), None)
        .unwrap();
    assert_eq!(created.get("kind").unwrap().as_str(), Some("fabric"));
    assert_eq!(
        created.get("proto_version").unwrap().as_u64(),
        Some(kahrisma_serve::proto::PROTO_VERSION)
    );

    let run = client.run("fab", None, false, false).unwrap();
    assert_eq!(run.get("outcome").unwrap().as_str(), Some("halted"));
    assert_eq!(run.get("cores").unwrap().as_u64(), Some(2));

    // Stats carry the unified schema shape plus a per-core breakdown.
    let stats = client.session_verb("stats", "fab").unwrap();
    assert_eq!(stats.get("schema_version").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("kind").unwrap().as_str(), Some("fabric"));
    assert_eq!(stats.get("cores").unwrap().as_u64(), Some(2));
    assert_eq!(stats.get("halted").unwrap().as_bool(), Some(true));
    let per_core = stats.get("core_stats").unwrap().as_arr().unwrap();
    assert_eq!(per_core.len(), 2);
    let want_exit = u64::from(Workload::Dct.expected_exit());
    for core in per_core {
        assert_eq!(core.get("halted").unwrap().as_bool(), Some(true), "{core:?}");
        assert_eq!(core.get("exit_code").unwrap().as_u64(), Some(want_exit));
        assert!(core.get("instructions").unwrap().as_u64().unwrap() > 0);
    }
    let sum: u64 = per_core
        .iter()
        .map(|c| c.get("instructions").unwrap().as_u64().unwrap())
        .sum();
    assert_eq!(stats.get("instructions").unwrap().as_u64(), Some(sum));

    // The metrics verb serves the fabric registry.
    let metrics = client.session_verb("metrics", "fab").unwrap();
    assert!(metrics.get("metrics").unwrap().get("counters").is_some());

    // Snapshot is a single-core-only verb.
    match client.session_verb("snapshot", "fab").unwrap_err() {
        ClientError::Server { code, .. } => assert_eq!(code, "unsupported"),
        other => panic!("expected unsupported, got {other}"),
    }

    // Reset clears progress; a rerun over the warm caches is bit-identical.
    client.session_verb("reset", "fab").unwrap();
    let cleared = client.session_verb("stats", "fab").unwrap();
    assert_eq!(cleared.get("instructions").unwrap().as_u64(), Some(0));
    let rerun = client.run("fab", None, false, false).unwrap();
    assert_eq!(rerun.get("outcome").unwrap().as_str(), Some("halted"));
    let stats2 = client.session_verb("stats", "fab").unwrap();
    assert_eq!(
        stats2.get("instructions").unwrap().as_u64(),
        stats.get("instructions").unwrap().as_u64()
    );
    client.session_verb("delete", "fab").unwrap();
    stop(handle, thread);
}

#[test]
fn ping_advertises_the_protocol_version() {
    let (addr, handle, thread) = start_daemon(ServerConfig::default());
    let mut client = Client::connect(&addr).unwrap();
    let pong = client
        .request(vec![("cmd".to_string(), "ping".into())])
        .unwrap();
    assert_eq!(
        pong.get("proto_version").unwrap().as_u64(),
        Some(kahrisma_serve::proto::PROTO_VERSION)
    );
    client.handshake().unwrap();
    stop(handle, thread);
}

#[test]
fn handshake_refuses_a_version_mismatched_server() {
    // A mock daemon that speaks a future protocol version: one accept, one
    // ping reply, done.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let mock = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let id = parse(line.trim()).unwrap().get("id").unwrap().as_u64().unwrap();
        let reply =
            format!("{{\"id\":{id},\"ok\":true,\"pong\":true,\"proto_version\":999}}\n");
        writer.write_all(reply.as_bytes()).unwrap();
        writer.flush().unwrap();
    });
    let mut client = Client::connect(&addr).unwrap();
    let err = client.handshake().unwrap_err();
    let message = err.to_string();
    assert!(message.contains("protocol version mismatch"), "{message}");
    assert!(message.contains("v999"), "{message}");
    match err {
        ClientError::VersionMismatch { server, client } => {
            assert_eq!(server, Some(999));
            assert_eq!(client, kahrisma_serve::proto::PROTO_VERSION);
        }
        other => panic!("expected version mismatch, got {other}"),
    }
    mock.join().expect("mock server");
}

#[test]
fn shutdown_drains_and_stops_the_daemon() {
    let (addr, handle, thread) = start_daemon(ServerConfig::default());
    let mut client = Client::connect(&addr).unwrap();
    client.create("s", "dct", "risc", Vec::new()).unwrap();
    client.shutdown().unwrap();
    thread.join().expect("daemon drained");
    // New connections are refused (or reset) after drain.
    let gone = TcpStream::connect(&addr)
        .and_then(|s| {
            let mut s = s;
            s.write_all(b"{\"id\":1,\"cmd\":\"ping\"}\n")?;
            let mut line = String::new();
            BufReader::new(s).read_line(&mut line)?;
            Ok(line)
        })
        .map(|line| line.is_empty())
        .unwrap_or(true);
    assert!(gone, "daemon must not serve after drain");
    drop(handle);
}

#[test]
fn server_metrics_and_trace_stay_answerable_during_drain() {
    let (addr, _handle, thread) = start_daemon(ServerConfig::default());
    let stream = TcpStream::connect(&addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    // Pipeline all four frames before the drain flag stops reads: once
    // `shutdown` is processed, the observability verbs must still answer
    // (an operator watching `kctl top` through a drain), while session
    // verbs are refused.
    writer
        .write_all(
            b"{\"id\":1,\"cmd\":\"shutdown\"}\n\
              {\"id\":2,\"cmd\":\"server_metrics\"}\n\
              {\"id\":3,\"cmd\":\"trace\"}\n\
              {\"id\":4,\"cmd\":\"run\",\"name\":\"nope\"}\n",
        )
        .unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    let mut read_response = || {
        line.clear();
        reader.read_line(&mut line).unwrap();
        parse(line.trim()).unwrap()
    };
    let shutdown = read_response();
    assert_eq!(shutdown.get("ok").unwrap().as_bool(), Some(true));
    let metrics = read_response();
    assert_eq!(metrics.get("ok").unwrap().as_bool(), Some(true), "{line}");
    assert_eq!(metrics.get("schema_version").unwrap().as_u64(), Some(1));
    assert!(metrics.get("counters").is_some(), "registry document: {line}");
    let trace = read_response();
    assert_eq!(trace.get("ok").unwrap().as_bool(), Some(true), "{line}");
    assert!(trace.get("spans").is_some());
    let refused = read_response();
    assert_eq!(refused.get("ok").unwrap().as_bool(), Some(false));
    assert_eq!(refused.get("code").unwrap().as_str(), Some("draining"));
    thread.join().expect("daemon drained");
}

#[test]
fn peers_without_a_trace_field_are_served_not_errored() {
    let (addr, handle, thread) = start_daemon(ServerConfig::default());
    let stream = TcpStream::connect(&addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut roundtrip = |frame: &str| {
        writer.write_all(frame.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        parse(line.trim()).unwrap()
    };
    // An older-protocol peer that has never heard of tracing: no `trace`
    // field at all, and then one with a mistyped (string) value. Both must
    // be served normally; the span just records trace id 0.
    let created =
        roundtrip(r#"{"id":1,"cmd":"create","name":"t1","workload":"dct","isa":"risc"}"#);
    assert_eq!(created.get("ok").unwrap().as_bool(), Some(true), "{line}");
    let ran = roundtrip(r#"{"id":2,"cmd":"run","name":"t1"}"#);
    assert_eq!(ran.get("ok").unwrap().as_bool(), Some(true), "{line}");
    let ran_odd = roundtrip(r#"{"id":3,"cmd":"run","name":"t1","trace":"zebra-7","reset":true}"#);
    assert_eq!(ran_odd.get("ok").unwrap().as_bool(), Some(true), "mistyped trace: {line}");
    let spans = roundtrip(r#"{"id":4,"cmd":"trace"}"#);
    let rows = spans.get("spans").unwrap().as_arr().unwrap();
    let runs: Vec<_> = rows
        .iter()
        .filter(|s| s.get("verb").and_then(Value::as_str) == Some("run"))
        .collect();
    assert_eq!(runs.len(), 2, "both runs recorded spans: {line}");
    for span in runs {
        assert_eq!(span.get("trace").unwrap().as_u64(), Some(0), "traceless peer → id 0");
        assert_eq!(span.get("ok").unwrap().as_bool(), Some(true));
    }
    stop(handle, thread);
}
