//! The `kctl` client library: a typed wrapper over one daemon connection.

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::time::Duration;

use crate::json::{self, Value};
use crate::proto;

/// A failed request, as the client sees it.
#[derive(Debug)]
pub enum ClientError {
    /// Socket or framing failure.
    Io(std::io::Error),
    /// The server replied with `ok:false`.
    Server {
        /// The machine-readable `code` tag.
        code: String,
        /// The human-readable message.
        message: String,
        /// Back-off hint on `overloaded` responses.
        retry_after_ms: Option<u64>,
    },
    /// The daemon speaks an incompatible wire-protocol version (see
    /// [`Client::handshake`]).
    VersionMismatch {
        /// What the server advertised (`None`: a pre-versioning daemon
        /// that sent no `proto_version` at all).
        server: Option<u64>,
        /// The version this client speaks ([`proto::PROTO_VERSION`]).
        client: u64,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Server { code, message, .. } => write!(f, "{code}: {message}"),
            ClientError::VersionMismatch { server, client } => {
                match server {
                    Some(v) => write!(f, "protocol version mismatch: server speaks v{v}, ")?,
                    None => write!(
                        f,
                        "protocol version mismatch: server predates versioning, "
                    )?,
                }
                write!(
                    f,
                    "this client speaks v{client}; upgrade the older side (kctl and ksimd \
                     must come from the same release)"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One connection to a `ksimd` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    attach_trace: bool,
}

impl Client {
    /// Connects to the daemon at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer, next_id: 1, attach_trace: false })
    }

    /// Sets a read timeout for responses (None = block forever).
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request object (the `id` field is assigned here) and
    /// returns the matching response, routing any interleaved stream
    /// frames to `on_frame`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on socket failure, [`ClientError::Server`] when
    /// the daemon answers `ok:false`.
    pub fn request_with_frames(
        &mut self,
        mut fields: Vec<(String, Value)>,
        mut on_frame: impl FnMut(&Value),
    ) -> Result<Value, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        fields.insert(0, ("id".to_string(), Value::Num(id as f64)));
        // After a successful handshake the peer is known to speak our
        // protocol version, so requests carry a trace id for fleet-wide
        // request tracing. Older peers never see the field.
        if self.attach_trace && !fields.iter().any(|(k, _)| k == "trace") {
            let trace = kahrisma_core::observe::next_trace_id();
            fields.push(("trace".to_string(), Value::Num(trace as f64)));
        }
        let line = Value::Obj(fields).to_json();
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut buf = String::new();
        loop {
            buf.clear();
            if self.reader.read_line(&mut buf)? == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
            let text = buf.trim();
            if text.is_empty() {
                continue;
            }
            let frame = json::parse(text).map_err(|e| {
                ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad frame from server: {e}"),
                ))
            })?;
            if proto::is_stream_frame(&frame) {
                on_frame(&frame);
                continue;
            }
            // Responses to our single-in-flight request: match on id (the
            // server may answer bad frames with id:null; surface those too).
            if frame.get("ok").and_then(Value::as_bool) == Some(true) {
                return Ok(frame);
            }
            let code = frame
                .get("code")
                .and_then(Value::as_str)
                .unwrap_or("unknown")
                .to_string();
            let message = frame
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("unspecified error")
                .to_string();
            let retry_after_ms = frame.get("retry_after_ms").and_then(Value::as_u64);
            return Err(ClientError::Server { code, message, retry_after_ms });
        }
    }

    /// [`Client::request_with_frames`] with stream frames ignored.
    ///
    /// # Errors
    ///
    /// See [`Client::request_with_frames`].
    pub fn request(
        &mut self,
        fields: Vec<(String, Value)>,
    ) -> Result<Value, ClientError> {
        self.request_with_frames(fields, |_| {})
    }

    /// `ping` round trip.
    ///
    /// # Errors
    ///
    /// See [`Client::request_with_frames`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request(vec![cmd("ping")]).map(|_| ())
    }

    /// Pings the daemon and verifies it advertises exactly this client's
    /// [`proto::PROTO_VERSION`]. Call once after connecting; `kctl` does.
    ///
    /// # Errors
    ///
    /// [`ClientError::VersionMismatch`] when the versions differ (or the
    /// server sent none); otherwise see [`Client::request_with_frames`].
    pub fn handshake(&mut self) -> Result<(), ClientError> {
        let response = self.request(vec![cmd("ping")])?;
        let server = response.get("proto_version").and_then(Value::as_u64);
        if server == Some(proto::PROTO_VERSION) {
            self.attach_trace = true;
            Ok(())
        } else {
            Err(ClientError::VersionMismatch { server, client: proto::PROTO_VERSION })
        }
    }

    /// Creates a session; extra spec fields (model, toggles) ride in
    /// `extra`.
    ///
    /// # Errors
    ///
    /// See [`Client::request_with_frames`].
    pub fn create(
        &mut self,
        name: &str,
        workload: &str,
        isa: &str,
        extra: Vec<(String, Value)>,
    ) -> Result<Value, ClientError> {
        let mut fields = vec![
            cmd("create"),
            ("name".to_string(), name.into()),
            ("workload".to_string(), workload.into()),
            ("isa".to_string(), isa.into()),
        ];
        fields.extend(extra);
        self.request(fields)
    }

    /// Creates a fabric session from a comma-separated core-spec list
    /// (`"dct:risc,fft:vliw4:aie"`), optionally overriding the scheduling
    /// quantum and host thread count.
    ///
    /// # Errors
    ///
    /// See [`Client::request_with_frames`].
    pub fn create_fabric(
        &mut self,
        name: &str,
        cores: &str,
        quantum: Option<u64>,
        host_threads: Option<u64>,
    ) -> Result<Value, ClientError> {
        let mut fields = vec![
            cmd("create"),
            ("name".to_string(), name.into()),
            ("kind".to_string(), "fabric".into()),
            ("cores".to_string(), cores.into()),
        ];
        if let Some(q) = quantum {
            fields.push(("quantum".to_string(), q.into()));
        }
        if let Some(t) = host_threads {
            fields.push(("host_threads".to_string(), t.into()));
        }
        self.request(fields)
    }

    /// Runs a session for up to `budget` instructions.
    ///
    /// # Errors
    ///
    /// See [`Client::request_with_frames`].
    pub fn run(
        &mut self,
        name: &str,
        budget: Option<u64>,
        reset: bool,
        looped: bool,
    ) -> Result<Value, ClientError> {
        let mut fields = vec![cmd("run"), ("name".to_string(), name.into())];
        if let Some(b) = budget {
            fields.push(("budget".to_string(), b.into()));
        }
        if reset {
            fields.push(("reset".to_string(), true.into()));
        }
        if looped {
            fields.push(("loop".to_string(), true.into()));
        }
        self.request(fields)
    }

    /// One-argument verbs: `stats`, `metrics`, `snapshot`, `restore`,
    /// `reset`, `delete`.
    ///
    /// # Errors
    ///
    /// See [`Client::request_with_frames`].
    pub fn session_verb(&mut self, verb: &str, name: &str) -> Result<Value, ClientError> {
        self.request(vec![cmd(verb), ("name".to_string(), name.into())])
    }

    /// `list` — every resident session.
    ///
    /// # Errors
    ///
    /// See [`Client::request_with_frames`].
    pub fn list(&mut self) -> Result<Value, ClientError> {
        self.request(vec![cmd("list")])
    }

    /// `stream` — run with live event frames delivered to `on_frame`.
    ///
    /// # Errors
    ///
    /// See [`Client::request_with_frames`].
    pub fn stream(
        &mut self,
        name: &str,
        budget: Option<u64>,
        limit: Option<u64>,
        on_frame: impl FnMut(&Value),
    ) -> Result<Value, ClientError> {
        let mut fields = vec![cmd("stream"), ("name".to_string(), name.into())];
        if let Some(b) = budget {
            fields.push(("budget".to_string(), b.into()));
        }
        if let Some(l) = limit {
            fields.push(("limit".to_string(), l.into()));
        }
        self.request_with_frames(fields, on_frame)
    }

    /// `ping` parsed into a load report. Tolerant of older daemons that
    /// answer only `pong`/`proto_version`: missing load fields read as
    /// zero/absent rather than failing.
    ///
    /// # Errors
    ///
    /// See [`Client::request_with_frames`].
    pub fn ping_load(&mut self) -> Result<ServerLoad, ClientError> {
        let response = self.request(vec![cmd("ping")])?;
        Ok(ServerLoad {
            proto_version: response.get("proto_version").and_then(Value::as_u64),
            sessions: response.get("sessions").and_then(Value::as_u64).unwrap_or(0),
            running: response.get("running").and_then(Value::as_u64).unwrap_or(0),
            uptime_ms: response.get("uptime_ms").and_then(Value::as_u64).unwrap_or(0),
            max_frame: response.get("max_frame").and_then(Value::as_u64),
            draining: response.get("draining").and_then(Value::as_bool).unwrap_or(false),
        })
    }

    /// `export` — serializes a session into a migratable document (see the
    /// server's export modes).
    ///
    /// # Errors
    ///
    /// See [`Client::request_with_frames`].
    pub fn export(&mut self, name: &str) -> Result<Value, ClientError> {
        self.session_verb("export", name)
    }

    /// `import` — rebuilds a session from an `export` document, optionally
    /// under a different name. The migration-relevant fields (`mode`,
    /// `spec`, `snapwire`/`instructions`, `saved`, bookkeeping) are copied
    /// from `exported`.
    ///
    /// # Errors
    ///
    /// See [`Client::request_with_frames`].
    pub fn import(&mut self, name: &str, exported: &Value) -> Result<Value, ClientError> {
        let mut fields = vec![cmd("import"), ("name".to_string(), name.into())];
        for key in ["mode", "spec", "snapwire", "saved", "instructions", "exit_code",
                    "runs_completed"]
        {
            if let Some(v) = exported.get(key) {
                fields.push((key.to_string(), v.clone()));
            }
        }
        self.request(fields)
    }

    /// `server_metrics` — the daemon's serve-plane metrics document
    /// (counters, gauges, per-verb latency histograms under
    /// `schema_version: 1`). Against a gateway this returns the
    /// fleet-merged report plus per-worker sub-reports.
    ///
    /// # Errors
    ///
    /// See [`Client::request_with_frames`].
    pub fn server_metrics(&mut self) -> Result<Value, ClientError> {
        self.request(vec![cmd("server_metrics")])
    }

    /// `trace` — retained request spans, optionally filtered to one trace
    /// id. Against a gateway this fans out to every healthy worker.
    ///
    /// # Errors
    ///
    /// See [`Client::request_with_frames`].
    pub fn trace_spans(&mut self, filter: Option<u64>) -> Result<Value, ClientError> {
        let mut fields = vec![cmd("trace")];
        if let Some(t) = filter {
            fields.push(("filter".to_string(), t.into()));
        }
        self.request(fields)
    }

    /// `shutdown` — asks the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// See [`Client::request_with_frames`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(vec![cmd("shutdown")]).map(|_| ())
    }
}

/// The load/health fields of an extended `ping` response (see
/// [`Client::ping_load`]).
#[derive(Debug, Clone, Default)]
pub struct ServerLoad {
    /// The advertised wire-protocol version, when sent.
    pub proto_version: Option<u64>,
    /// Resident sessions.
    pub sessions: u64,
    /// Requests currently executing in run slots.
    pub running: u64,
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// The daemon's frame cap, when advertised.
    pub max_frame: Option<u64>,
    /// Whether the daemon is draining.
    pub draining: bool,
}

fn cmd(verb: &str) -> (String, Value) {
    ("cmd".to_string(), verb.into())
}
