//! `kctl bench`: the serving-side benchmark.
//!
//! N concurrent clients each own a warm session and issue M `run` requests
//! of a fixed instruction budget (`loop` mode, so a halting workload is
//! reset-and-rerun against the warm decode cache until the budget is
//! consumed). The report gives per-request latency percentiles and the
//! per-request *simulated* throughput — instructions served per wall
//! second — next to a direct in-process baseline running the identical
//! reset/run loop, which quantifies the protocol + scheduling overhead of
//! serving.

use std::fmt::Write as _;
use std::time::Instant;

use kahrisma_core::{RunOutcome, Simulator};
use kahrisma_isa::IsaKind;
use kahrisma_workloads::Workload;

use crate::client::{Client, ClientError};
use crate::json::Value;

/// Benchmark parameters.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Daemon address.
    pub addr: String,
    /// Workload name.
    pub workload: String,
    /// ISA name.
    pub isa: String,
    /// Concurrent client connections (each with its own session).
    pub clients: usize,
    /// Timed requests per client (after one warmup request).
    pub iterations: usize,
    /// Instruction budget per request.
    pub budget: u64,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            addr: "127.0.0.1:9191".to_string(),
            workload: "dct".to_string(),
            isa: "risc".to_string(),
            clients: 4,
            iterations: 20,
            budget: 2_000_000,
        }
    }
}

/// Latency percentiles, in milliseconds.
#[derive(Debug, Clone, Copy)]
pub struct Percentiles {
    /// Minimum (the best request — the noise-free serving cost).
    pub min: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile (= max below 100 samples).
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

fn percentiles(sorted_ms: &[f64]) -> Percentiles {
    let at = |q: f64| {
        if sorted_ms.is_empty() {
            return 0.0;
        }
        let idx = ((sorted_ms.len() as f64 - 1.0) * q).round() as usize;
        sorted_ms[idx.min(sorted_ms.len() - 1)]
    };
    Percentiles {
        min: sorted_ms.first().copied().unwrap_or(0.0),
        p50: at(0.50),
        p90: at(0.90),
        p95: at(0.95),
        p99: at(0.99),
        max: sorted_ms.last().copied().unwrap_or(0.0),
    }
}

/// The benchmark result.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// The options the run used.
    pub options: BenchOptions,
    /// Total timed requests (clients × iterations).
    pub requests: usize,
    /// Requests rejected with `overloaded` (retried until accepted).
    pub overloaded_retries: u64,
    /// Per-request latency percentiles (ms).
    pub latency: Percentiles,
    /// Mean served simulated throughput per request, MIPS.
    pub served_mips: f64,
    /// Best-request served throughput, MIPS (pairs with the best-of
    /// `direct_mips`: both filter host scheduling noise the same way).
    pub served_mips_best: f64,
    /// Aggregate throughput: total instructions / total wall time, MIPS.
    pub aggregate_mips: f64,
    /// Direct in-process baseline running the same reset/run loop, MIPS
    /// (best of the same number of iterations).
    pub direct_mips: f64,
    /// served_mips_best / direct_mips — the serving overhead proper.
    pub efficiency: f64,
}

impl BenchReport {
    /// Renders the checked-in `BENCH_serve.json` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let o = &self.options;
        let mut s = String::with_capacity(512);
        s.push_str("{\n");
        let _ = writeln!(
            s,
            "  \"schema_version\": {},",
            kahrisma_core::STATS_SCHEMA_VERSION
        );
        let _ = writeln!(s, "  \"workload\": \"{}\",", o.workload);
        let _ = writeln!(s, "  \"isa\": \"{}\",", o.isa);
        let _ = writeln!(s, "  \"clients\": {},", o.clients);
        let _ = writeln!(s, "  \"iterations_per_client\": {},", o.iterations);
        let _ = writeln!(s, "  \"budget_per_request\": {},", o.budget);
        let _ = writeln!(s, "  \"requests\": {},", self.requests);
        let _ = writeln!(s, "  \"overloaded_retries\": {},", self.overloaded_retries);
        let _ = writeln!(s, "  \"latency_ms\": {},", latency_json(&self.latency));
        let _ = writeln!(s, "  \"served_mips_per_request\": {:.4},", self.served_mips);
        let _ = writeln!(s, "  \"served_mips_best\": {:.4},", self.served_mips_best);
        let _ = writeln!(s, "  \"aggregate_mips\": {:.4},", self.aggregate_mips);
        let _ = writeln!(s, "  \"direct_mips\": {:.4},", self.direct_mips);
        let _ = writeln!(s, "  \"serve_efficiency\": {:.4}", self.efficiency);
        s.push_str("}\n");
        s
    }
}

fn latency_json(p: &Percentiles) -> String {
    format!(
        "{{\"min\": {:.3}, \"p50\": {:.3}, \"p90\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3}, \"max\": {:.3}}}",
        p.min, p.p50, p.p90, p.p95, p.p99, p.max
    )
}

struct ClientResult {
    latencies_ms: Vec<f64>,
    instructions: u64,
    overloaded_retries: u64,
}

/// Runs the benchmark against a live daemon.
///
/// # Errors
///
/// Returns a description of the first client/protocol failure.
pub fn run_bench(options: &BenchOptions) -> Result<BenchReport, String> {
    let workload = Workload::ALL
        .into_iter()
        .find(|w| w.name() == options.workload)
        .ok_or_else(|| format!("unknown workload `{}`", options.workload))?;
    let isa = IsaKind::ALL
        .into_iter()
        .find(|k| k.name() == options.isa)
        .ok_or_else(|| format!("unknown isa `{}`", options.isa))?;

    let started = Instant::now();
    let results: Vec<Result<ClientResult, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..options.clients.max(1))
            .map(|i| scope.spawn(move || bench_client(options, i)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("client thread panicked".to_string())))
            .collect()
    });
    let total_wall = started.elapsed().as_secs_f64();

    let mut latencies = Vec::new();
    let mut instructions = 0u64;
    let mut overloaded_retries = 0u64;
    for r in results {
        let r = r?;
        latencies.extend(r.latencies_ms);
        instructions += r.instructions;
        overloaded_retries += r.overloaded_retries;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let requests = latencies.len();
    let served_mips = if latencies.is_empty() {
        0.0
    } else {
        // Mean of per-request throughput: budget instructions over the
        // request's wall time.
        latencies
            .iter()
            .map(|ms| options.budget as f64 / (ms / 1e3) / 1e6)
            .sum::<f64>()
            / requests as f64
    };
    let aggregate_mips = if total_wall > 0.0 {
        instructions as f64 / total_wall / 1e6
    } else {
        0.0
    };
    let latency = percentiles(&latencies);
    let served_mips_best = if latency.min > 0.0 {
        options.budget as f64 / (latency.min / 1e3) / 1e6
    } else {
        0.0
    };
    let direct_mips = direct_baseline(workload, isa, options.budget, options.iterations)?;
    Ok(BenchReport {
        options: options.clone(),
        requests,
        overloaded_retries,
        latency,
        served_mips,
        served_mips_best,
        aggregate_mips,
        direct_mips,
        efficiency: if direct_mips > 0.0 { served_mips_best / direct_mips } else { 0.0 },
    })
}

fn bench_client(options: &BenchOptions, index: usize) -> Result<ClientResult, String> {
    let mut client =
        Client::connect(&options.addr).map_err(|e| format!("connect: {e}"))?;
    let session = format!("bench-{index}");
    client
        .create(&session, &options.workload, &options.isa, Vec::new())
        .map_err(|e| format!("create {session}: {e}"))?;
    let mut overloaded_retries = 0u64;
    // Warmup: populate the decode cache so timed requests measure the
    // steady serving state (the whole point of session reuse).
    run_with_backoff(&mut client, &session, options.budget, &mut overloaded_retries)?;

    let mut latencies_ms = Vec::with_capacity(options.iterations);
    let mut instructions = 0u64;
    for _ in 0..options.iterations {
        let started = Instant::now();
        let resp =
            run_with_backoff(&mut client, &session, options.budget, &mut overloaded_retries)?;
        latencies_ms.push(started.elapsed().as_secs_f64() * 1e3);
        instructions += resp
            .get("instructions")
            .and_then(Value::as_u64)
            .unwrap_or(options.budget);
    }
    let _ = client.session_verb("delete", &session);
    Ok(ClientResult { latencies_ms, instructions, overloaded_retries })
}

fn run_with_backoff(
    client: &mut Client,
    session: &str,
    budget: u64,
    overloaded_retries: &mut u64,
) -> Result<Value, String> {
    loop {
        match client.run(session, Some(budget), false, true) {
            Ok(resp) => return Ok(resp),
            Err(ClientError::Server { code, retry_after_ms, .. }) if code == "overloaded" => {
                *overloaded_retries += 1;
                std::thread::sleep(std::time::Duration::from_millis(
                    retry_after_ms.unwrap_or(100),
                ));
            }
            Err(e) => return Err(format!("run {session}: {e}")),
        }
    }
}

/// The identical reset/run loop executed in-process: what a long-lived
/// local `ksim` would deliver per `budget` instructions on a warm cache.
fn direct_baseline(
    workload: Workload,
    isa: IsaKind,
    budget: u64,
    iterations: usize,
) -> Result<f64, String> {
    let exe = workload.build(isa).map_err(|e| format!("build workload: {e}"))?;
    let mut sim = Simulator::new(&exe, kahrisma_core::SimConfig::default())
        .map_err(|e| format!("load workload: {e}"))?;
    let consume = |sim: &mut Simulator| -> Result<(), String> {
        let mut executed = 0u64;
        while executed < budget {
            let before = sim.stats().instructions;
            let outcome = sim
                .run_for(budget - executed)
                .map_err(|e| format!("baseline run: {e}"))?;
            executed += sim.stats().instructions - before;
            if matches!(outcome, RunOutcome::Halted { .. }) && executed < budget {
                sim.reset();
            }
        }
        Ok(())
    };
    consume(&mut sim)?; // warmup
    let mut best = f64::INFINITY;
    for _ in 0..iterations.clamp(1, 20) {
        sim.reset();
        let started = Instant::now();
        consume(&mut sim)?;
        best = best.min(started.elapsed().as_secs_f64());
    }
    if best <= 0.0 || !best.is_finite() {
        return Ok(0.0);
    }
    Ok(budget as f64 / best / 1e6)
}

// ---------------------------------------------------------------------------
// Saturation sweep: direct ksimd vs kgate fleets under a rising client count.
// ---------------------------------------------------------------------------

/// Saturation-sweep parameters (`kctl bench --sweep`).
///
/// The sweep owns its server processes: for each topology (a lone `ksimd`,
/// then `kgate` fronting each fleet size) it spawns the daemons on
/// ephemeral ports, walks the client ladder, and drains them — so one
/// command produces the whole direct-vs-gated saturation comparison.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Workload name.
    pub workload: String,
    /// ISA name.
    pub isa: String,
    /// Instruction budget per request (smaller than the classic bench:
    /// saturation stresses the serving plane, not the simulator).
    pub budget: u64,
    /// The client-count ladder.
    pub clients: Vec<usize>,
    /// `kgate` fleet sizes to sweep (workers per gate).
    pub fleets: Vec<usize>,
    /// Path to the `ksimd` binary.
    pub ksimd: String,
    /// Path to the `kgate` binary.
    pub kgate: String,
    /// Target total requests per ladder point (split across clients).
    pub requests_target: usize,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            workload: "dct".to_string(),
            isa: "risc".to_string(),
            budget: 100_000,
            clients: vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1000],
            fleets: vec![1, 2, 4],
            ksimd: "ksimd".to_string(),
            kgate: "kgate".to_string(),
            requests_target: 240,
        }
    }
}

/// One ladder point: a topology under a fixed client count.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// `"direct"` (clients → ksimd) or `"kgate"` (clients → gate → fleet).
    pub topology: String,
    /// Workers behind the gate (1 for direct).
    pub workers: usize,
    /// Concurrent clients.
    pub clients: usize,
    /// Timed requests completed.
    pub requests: usize,
    /// `overloaded` rejections absorbed by client backoff.
    pub overloaded_retries: u64,
    /// Client-perceived per-request latency (backoff included).
    pub latency: Percentiles,
    /// Completed requests per wall second.
    pub rps: f64,
    /// Aggregate simulated throughput, MIPS.
    pub aggregate_mips: f64,
}

/// The full sweep artifact: the classic single-point bench plus the
/// saturation ladder for every topology.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The classic warm-session bench against a direct daemon.
    pub base: BenchReport,
    /// Sweep parameters.
    pub options: SweepOptions,
    /// All ladder points, in run order.
    pub rows: Vec<SweepRow>,
}

impl SweepReport {
    /// Renders the checked-in `BENCH_serve.json` document: the classic
    /// bench fields (unchanged shape, `schema_version` leading) plus the
    /// `sweep` array.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = self.base.to_json();
        // Splice the sweep in before the closing brace.
        let end = s.rfind('}').unwrap_or(s.len());
        s.truncate(end);
        while s.ends_with(char::is_whitespace) {
            s.pop();
        }
        let _ = writeln!(s, ",\n  \"sweep_budget_per_request\": {},", self.options.budget);
        let _ = writeln!(s, "  \"sweep\": [");
        for (i, row) in self.rows.iter().enumerate() {
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"topology\": \"{}\", \"workers\": {}, \"clients\": {}, \
                 \"requests\": {}, \"overloaded_retries\": {}, \"latency_ms\": {}, \
                 \"rps\": {:.2}, \"aggregate_mips\": {:.4}}}{comma}",
                row.topology,
                row.workers,
                row.clients,
                row.requests,
                row.overloaded_retries,
                latency_json(&row.latency),
                row.rps,
                row.aggregate_mips,
            );
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// A spawned daemon (ksimd or kgate) on an ephemeral port.
struct SpawnedServer {
    child: std::process::Child,
    addr: String,
}

impl SpawnedServer {
    /// Spawns `binary args...`, parsing the bound address from the
    /// `... listening on ADDR` banner every daemon in this workspace
    /// prints.
    fn spawn(binary: &str, args: &[String]) -> Result<SpawnedServer, String> {
        use std::io::BufRead as _;
        let mut child = std::process::Command::new(binary)
            .args(args)
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()
            .map_err(|e| format!("cannot spawn {binary}: {e}"))?;
        let stdout = child.stdout.take().ok_or("no stdout from spawned server")?;
        let mut reader = std::io::BufReader::new(stdout);
        let mut banner = String::new();
        reader
            .read_line(&mut banner)
            .map_err(|e| format!("cannot read {binary} banner: {e}"))?;
        let Some(pos) = banner.find("listening on ") else {
            let _ = child.kill();
            let _ = child.wait();
            return Err(format!("unexpected banner from {binary}: {banner:?}"));
        };
        let addr = banner[pos + "listening on ".len()..].trim().to_string();
        std::thread::spawn(move || {
            for _ in reader.lines() {}
        });
        Ok(SpawnedServer { child, addr })
    }

    /// Graceful drain via the wire, then reap.
    fn stop(mut self) {
        if let Ok(mut client) = Client::connect(&self.addr) {
            let _ = client.shutdown();
        }
        let _ = self.child.wait();
    }
}

/// Runs the full saturation sweep, spawning every topology's daemons.
///
/// # Errors
///
/// Returns the first spawn/protocol failure.
pub fn run_sweep(base: &BenchOptions, sweep: &SweepOptions) -> Result<SweepReport, String> {
    let max_clients = sweep.clients.iter().copied().max().unwrap_or(1);
    let sessions_arg = (max_clients + 32).to_string();

    // The classic bench runs against its own direct daemon so the whole
    // artifact regenerates from one command.
    let base_server = SpawnedServer::spawn(
        &sweep.ksimd,
        &["--addr".into(), "127.0.0.1:0".into(), "--max-sessions".into(), sessions_arg.clone()],
    )?;
    let base_report = run_bench(&BenchOptions {
        addr: base_server.addr.clone(),
        workload: sweep.workload.clone(),
        isa: sweep.isa.clone(),
        ..base.clone()
    });
    base_server.stop();
    let base_report = base_report?;

    let mut rows = Vec::new();

    // Topology 1: clients straight at one ksimd.
    let direct = SpawnedServer::spawn(
        &sweep.ksimd,
        &["--addr".into(), "127.0.0.1:0".into(), "--max-sessions".into(), sessions_arg.clone()],
    )?;
    let result = sweep_ladder(sweep, &direct.addr, "direct", 1, &mut rows);
    direct.stop();
    result?;

    // Topology 2..: kgate fronting 1/2/4-worker fleets.
    for &fleet in &sweep.fleets {
        let gate = SpawnedServer::spawn(
            &sweep.kgate,
            &[
                "--addr".into(), "127.0.0.1:0".into(),
                "--spawn".into(), fleet.to_string(),
                "--ksimd".into(), sweep.ksimd.clone(),
                "--io-workers".into(), "32".into(),
                "--ksimd-arg".into(), "--max-sessions".into(),
                "--ksimd-arg".into(), sessions_arg.clone(),
            ],
        )?;
        let result = sweep_ladder(sweep, &gate.addr, "kgate", fleet, &mut rows);
        gate.stop();
        result?;
    }

    Ok(SweepReport { base: base_report, options: sweep.clone(), rows })
}

/// Walks the client ladder against one live serving endpoint.
fn sweep_ladder(
    sweep: &SweepOptions,
    addr: &str,
    topology: &str,
    workers: usize,
    rows: &mut Vec<SweepRow>,
) -> Result<(), String> {
    for &clients in &sweep.clients {
        // Hold total work roughly constant across the ladder so the
        // x-axis varies concurrency, not workload volume.
        let iterations = (sweep.requests_target / clients).clamp(1, 50);
        let started = Instant::now();
        let results: Vec<Result<ClientResult, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|i| scope.spawn(move || sweep_client(addr, sweep, i, iterations)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|_| Err("client thread panicked".to_string())))
                .collect()
        });
        let wall = started.elapsed().as_secs_f64();
        let mut latencies = Vec::new();
        let mut instructions = 0u64;
        let mut overloaded_retries = 0u64;
        for r in results {
            let r = r?;
            latencies.extend(r.latencies_ms);
            instructions += r.instructions;
            overloaded_retries += r.overloaded_retries;
        }
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        rows.push(SweepRow {
            topology: topology.to_string(),
            workers,
            clients,
            requests: latencies.len(),
            overloaded_retries,
            latency: percentiles(&latencies),
            rps: if wall > 0.0 { latencies.len() as f64 / wall } else { 0.0 },
            aggregate_mips: if wall > 0.0 { instructions as f64 / wall / 1e6 } else { 0.0 },
        });
    }
    Ok(())
}

/// One sweep client: connect (with retry under accept pressure), create a
/// session, issue the timed requests, clean up.
fn sweep_client(
    addr: &str,
    sweep: &SweepOptions,
    index: usize,
    iterations: usize,
) -> Result<ClientResult, String> {
    let mut client = connect_with_retry(addr)?;
    let session = format!("sweep-{index}");
    let mut overloaded_retries = 0u64;
    // Session-table pressure answers `overloaded` too: back off and retry.
    loop {
        match client.create(&session, &sweep.workload, &sweep.isa, Vec::new()) {
            Ok(_) => break,
            Err(ClientError::Server { code, retry_after_ms, .. }) if code == "overloaded" => {
                overloaded_retries += 1;
                std::thread::sleep(std::time::Duration::from_millis(
                    retry_after_ms.unwrap_or(100),
                ));
            }
            Err(e) => return Err(format!("create {session}: {e}")),
        }
    }
    let mut latencies_ms = Vec::with_capacity(iterations);
    let mut instructions = 0u64;
    for _ in 0..iterations {
        let started = Instant::now();
        let resp = run_with_backoff(&mut client, &session, sweep.budget, &mut overloaded_retries)?;
        latencies_ms.push(started.elapsed().as_secs_f64() * 1e3);
        instructions +=
            resp.get("instructions").and_then(Value::as_u64).unwrap_or(sweep.budget);
    }
    let _ = client.session_verb("delete", &session);
    Ok(ClientResult { latencies_ms, instructions, overloaded_retries })
}

/// Hundreds of clients connecting at once can outrun the accept loop;
/// retry refused connections briefly instead of failing the ladder point.
fn connect_with_retry(addr: &str) -> Result<Client, String> {
    let mut last = None;
    for _ in 0..100 {
        match Client::connect(addr) {
            Ok(c) => return Ok(c),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        }
    }
    Err(format!("connect {addr}: {}", last.map_or_else(String::new, |e| e.to_string())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_distribution() {
        let mut ms: Vec<f64> = (1..=100).map(f64::from).collect();
        ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p = percentiles(&ms);
        // Nearest-rank on (n-1)*q: (99*0.5).round() = 50 → the 51st sample.
        assert_eq!(p.min, 1.0);
        assert_eq!(p.p50, 51.0);
        assert_eq!(p.p90, 90.0);
        assert_eq!(p.p95, 95.0);
        assert_eq!(p.p99, 99.0);
        assert_eq!(p.max, 100.0);
        let single = percentiles(&[7.0]);
        assert_eq!(single.min, 7.0);
        assert_eq!(single.p50, 7.0);
        assert_eq!(single.p95, 7.0);
        assert_eq!(single.p99, 7.0);
    }

    fn sample_report() -> BenchReport {
        BenchReport {
            options: BenchOptions::default(),
            requests: 80,
            overloaded_retries: 2,
            latency: Percentiles { min: 0.8, p50: 1.0, p90: 2.0, p95: 2.5, p99: 3.0, max: 4.0 },
            served_mips: 50.0,
            served_mips_best: 53.0,
            aggregate_mips: 180.0,
            direct_mips: 55.0,
            efficiency: 0.963,
        }
    }

    #[test]
    fn report_serializes_to_valid_json() {
        let json = sample_report().to_json();
        kahrisma_observe::json_lint::validate(&json).expect("valid JSON");
        assert!(json.contains("\"p95\": 2.500"), "{json}");
    }

    #[test]
    fn sweep_report_keeps_the_schema_and_adds_the_ladder() {
        let report = SweepReport {
            base: sample_report(),
            options: SweepOptions::default(),
            rows: vec![
                SweepRow {
                    topology: "direct".to_string(),
                    workers: 1,
                    clients: 1,
                    requests: 240,
                    overloaded_retries: 0,
                    latency: Percentiles {
                        min: 0.5, p50: 0.7, p90: 0.9, p95: 1.0, p99: 1.2, max: 1.5,
                    },
                    rps: 1200.0,
                    aggregate_mips: 120.0,
                },
                SweepRow {
                    topology: "kgate".to_string(),
                    workers: 4,
                    clients: 1000,
                    requests: 1000,
                    overloaded_retries: 37,
                    latency: Percentiles {
                        min: 0.9, p50: 5.0, p90: 20.0, p95: 31.0, p99: 55.0, max: 80.0,
                    },
                    rps: 3000.0,
                    aggregate_mips: 300.0,
                },
            ],
        };
        let json = report.to_json();
        kahrisma_observe::json_lint::validate(&json).expect("valid JSON");
        assert!(
            json.trim_start().starts_with("{\n  \"schema_version\": 1,"),
            "schema_version must stay the leading field: {json}"
        );
        assert!(json.contains("\"sweep\": ["), "{json}");
        assert!(json.contains("\"topology\": \"kgate\""), "{json}");
        assert!(json.contains("\"workers\": 4"), "{json}");
    }

    #[test]
    fn direct_baseline_reports_throughput() {
        let mips = direct_baseline(Workload::Dct, IsaKind::Risc, 100_000, 2).unwrap();
        assert!(mips > 0.0);
    }
}
