//! A dependency-free nested JSON value, parser, and serializer.
//!
//! The wire protocol is newline-delimited JSON; each frame is one object.
//! Unlike the flat parser in `kahrisma-campaign` (which deliberately
//! rejects nesting for manifest records), the serve protocol carries
//! nested payloads — stats objects, session listings — so this module
//! implements a small recursive-descent parser with a depth limit.
//!
//! Numbers are stored as `f64`; every counter the protocol carries fits
//! exactly (instruction budgets are bounded well below 2^53).

use std::fmt::Write as _;

/// Maximum nesting depth accepted by the parser (DoS guard; the protocol
/// itself never exceeds 4).
const MAX_DEPTH: u32 = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion-ordered (serialization is deterministic).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup; `None` for missing fields and non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as a `u64`, if this is a non-negative integral number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The number as an `f64`, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value as compact single-line JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => write_num(*n, out),
            Value::Str(s) => write_str(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Num(n as f64)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Num(f64::from(n))
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

/// Builds an object value from key/value pairs (helper for response
/// construction: `obj([("ok", true.into()), ...])`).
pub fn obj<const N: usize>(fields: [(&str, Value); N]) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn write_num(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", n as i64);
    } else if n.is_finite() {
        let _ = write!(out, "{n}");
    } else {
        out.push_str("null"); // JSON has no NaN/Inf
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with byte position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value; trailing garbage is an error.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error, with its
/// byte offset.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { message: message.to_string(), at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| ParseError {
            message: "invalid UTF-8 in number".to_string(),
            at: start,
        })?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| ParseError { message: format!("bad number `{text}`"), at: start })
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by the protocol;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = text.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: u32) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: u32) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let text = r#"{"id":7,"cmd":"run","opts":{"budget":4000000,"tags":["a","b"]},"flag":true,"none":null}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("id").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("cmd").unwrap().as_str(), Some("run"));
        assert_eq!(v.get("opts").unwrap().get("budget").unwrap().as_u64(), Some(4_000_000));
        assert_eq!(v.get("opts").unwrap().get("tags").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("flag").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("none"), Some(&Value::Null));
        // Serialization is canonical: reparse equals original.
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn large_integers_survive() {
        let n = 4_503_599_627_370_495u64; // 2^52 - 1
        let v = parse(&format!(r#"{{"n":{n}}}"#)).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(n));
        assert_eq!(v.to_json(), format!(r#"{{"n":{n}}}"#));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Value::Str("a\"b\\c\nd".to_string());
        let text = v.to_json();
        assert_eq!(text, r#""a\"b\\c\nd""#);
        assert_eq!(parse(&text).unwrap(), v);
        assert_eq!(parse(r#""Aé""#).unwrap(), Value::Str("Aé".to_string()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "}", "[1,", r#"{"a"}"#, r#"{"a":}"#, "tru", "01x", "{} extra",
            r#"{"a":1,}"#,
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn depth_limit_rejects_bombs() {
        let bomb = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&bomb).is_err());
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn obj_builder_orders_fields() {
        let v = obj([("ok", true.into()), ("n", 3u64.into())]);
        assert_eq!(v.to_json(), r#"{"ok":true,"n":3}"#);
    }
}
