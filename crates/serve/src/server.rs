//! The `ksimd` daemon: TCP accept loop, per-connection handler threads,
//! request dispatch, admission control, and graceful drain.

use std::io::{BufRead as _, BufReader, BufWriter, Read, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use kahrisma_core::{
    CycleModelKind, Observer, RunOutcome, SimEvent, Simulator, StatValue, StatsReport,
};
use kahrisma_fabric::{Fabric, FabricOutcome};
use kahrisma_isa::IsaKind;
use kahrisma_observe::{frame, MetricsRegistry};
use kahrisma_workloads::Workload;

use crate::json::{self, obj, Value};
use crate::proto::{self, ErrorCode, MAX_FRAME_BYTES, PROTO_VERSION};
use crate::session::{Engine, FabricSpec, Session, SessionSpec, SessionTable, TableError};

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 binds an ephemeral port.
    pub addr: String,
    /// Session-table capacity (LRU-evicts idle sessions beyond it).
    pub max_sessions: usize,
    /// Maximum concurrently *running* sessions; excess `run`/`stream`
    /// requests get `overloaded` with a retry hint.
    pub max_running: usize,
    /// Idle sessions older than this are evicted at the next request.
    pub idle_timeout: Duration,
    /// Per-request execution deadline; longer runs return partial progress
    /// (`outcome:"deadline"`) and can be continued with another `run`.
    pub request_timeout: Duration,
    /// Instructions per `run_for` slice between deadline/drain checks.
    pub slice: u64,
    /// Back-off hint attached to `overloaded` responses.
    pub retry_after_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_sessions: 32,
            max_running: 4,
            idle_timeout: Duration::from_secs(300),
            request_timeout: Duration::from_secs(30),
            slice: 4_000_000,
            retry_after_ms: 250,
        }
    }
}

/// State shared by every connection thread.
struct Shared {
    config: ServerConfig,
    table: SessionTable,
    running: AtomicUsize,
    draining: AtomicBool,
    /// The bound listen address (for the drain wake-up self-connection).
    bound: std::net::SocketAddr,
}

/// A handle for stopping a daemon from another thread (tests, signal
/// plumbing). Cloned freely.
#[derive(Clone)]
pub struct DaemonHandle {
    shared: Arc<Shared>,
    addr: std::net::SocketAddr,
}

impl DaemonHandle {
    /// The daemon's bound address.
    #[must_use]
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Requests a graceful drain: stop accepting connections, let running
    /// requests finish. The accept loop is woken with a self-connection
    /// (std has no way to interrupt a blocking `accept`).
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        // Wake the acceptor; errors are fine (it may already be gone).
        let _ = TcpStream::connect(self.addr);
    }
}

/// The simulation daemon.
pub struct Daemon {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Daemon {
    /// Binds the listen socket (without accepting yet).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: ServerConfig) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(&config.addr)?;
        let bound = listener.local_addr()?;
        let shared = Arc::new(Shared {
            table: SessionTable::new(config.max_sessions, config.idle_timeout),
            running: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            bound,
            config,
        });
        Ok(Daemon { listener, shared })
    }

    /// The bound address (read this after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A stop handle usable from other threads.
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn handle(&self) -> std::io::Result<DaemonHandle> {
        Ok(DaemonHandle { shared: Arc::clone(&self.shared), addr: self.local_addr()? })
    }

    /// Runs the accept loop until a `shutdown` request (or
    /// [`DaemonHandle::shutdown`]) drains the daemon. Each connection is
    /// served by its own thread; the loop exits only after every running
    /// request has completed.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop socket failures (per-connection I/O errors
    /// only terminate that connection).
    pub fn run(self) -> std::io::Result<()> {
        let mut workers = Vec::new();
        for conn in self.listener.incoming() {
            if self.shared.draining.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            // A short read timeout lets idle connection threads notice the
            // drain flag; without it, joining workers below would block on
            // clients that keep their connection open. Nagle off: responses
            // are single small writes on a request/response stream.
            let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
            let _ = stream.set_nodelay(true);
            let shared = Arc::clone(&self.shared);
            workers.push(std::thread::spawn(move || handle_connection(&shared, stream)));
            workers.retain(|w| !w.is_finished());
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// Serves one connection: read a line, dispatch, write the response.
fn handle_connection(shared: &Shared, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else { return };
    let mut writer = BufWriter::new(write_half);
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        // Bounded read: a frame longer than MAX_FRAME_BYTES is consumed to
        // its newline and rejected, keeping the connection usable. Reads
        // time out periodically (see `Daemon::run`) so an idle connection
        // notices a drain; a timeout mid-frame keeps the partial line and
        // resumes reading.
        loop {
            let budget = (MAX_FRAME_BYTES.saturating_sub(line.len()).max(1)) as u64;
            match (&mut reader).take(budget).read_line(&mut line) {
                Ok(0) => return, // EOF (a partial trailing line is dropped)
                Ok(_) => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if shared.draining.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
        if line.len() >= MAX_FRAME_BYTES && !line.ends_with('\n') {
            // Oversized frame: drain the rest of the line, then reject.
            let mut rest = Vec::new();
            let _ = reader.read_until(b'\n', &mut rest);
            let resp = proto::error_response(
                Value::Null,
                ErrorCode::BadFrame,
                "frame exceeds 64 KiB",
                None,
            );
            if write_line(&mut writer, &resp.to_json()).is_err() {
                return;
            }
            continue;
        }
        let text = line.trim();
        if text.is_empty() {
            continue; // blank keep-alive lines are legal
        }
        let request = match json::parse(text) {
            Ok(v @ Value::Obj(_)) => v,
            Ok(_) => {
                let resp = proto::error_response(
                    Value::Null,
                    ErrorCode::BadFrame,
                    "frame must be a JSON object",
                    None,
                );
                if write_line(&mut writer, &resp.to_json()).is_err() {
                    return;
                }
                continue;
            }
            Err(e) => {
                // Malformed frame: report and recover at the next newline,
                // mirroring the campaign manifest reader.
                let resp = proto::error_response(
                    Value::Null,
                    ErrorCode::BadFrame,
                    &format!("malformed frame: {e}"),
                    None,
                );
                if write_line(&mut writer, &resp.to_json()).is_err() {
                    return;
                }
                continue;
            }
        };
        let id = request.get("id").cloned().unwrap_or(Value::Null);
        let shutdown_after = matches!(
            request.get("cmd").and_then(Value::as_str),
            Some("shutdown")
        );
        let response = dispatch(shared, &id, &request, &mut writer);
        if write_line(&mut writer, &response.to_json()).is_err() {
            return;
        }
        if shutdown_after {
            // The drain flag is already set; wake the acceptor and close.
            let _ = TcpStream::connect(shared.bound);
            return;
        }
    }
}

fn write_line<W: std::io::Write>(writer: &mut W, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Routes one request to its verb handler.
fn dispatch(
    shared: &Shared,
    id: &Value,
    request: &Value,
    writer: &mut BufWriter<TcpStream>,
) -> Value {
    // Lazy idle eviction: every request sweeps first.
    shared.table.sweep();

    let Some(cmd) = request.get("cmd").and_then(Value::as_str) else {
        return proto::error_response(id.clone(), ErrorCode::BadRequest, "missing `cmd`", None);
    };
    if shared.draining.load(Ordering::SeqCst) && cmd != "ping" && cmd != "list" {
        return proto::error_response(id.clone(), ErrorCode::Draining, "server is draining", None);
    }
    match cmd {
        "ping" => proto::ok_response(
            id.clone(),
            vec![
                ("pong".to_string(), Value::Bool(true)),
                ("proto_version".to_string(), PROTO_VERSION.into()),
            ],
        ),
        "create" => handle_create(shared, id, request),
        "run" => handle_run(shared, id, request, None),
        "stream" => handle_stream(shared, id, request, writer),
        "reset" => with_session(shared, id, request, |session| {
            match &mut session.engine {
                Engine::Single { sim, .. } => sim.reset(),
                Engine::Fabric { fabric, .. } => fabric.reset(),
            }
            session.exit_code = None;
            Ok(Vec::new())
        }),
        "snapshot" => with_session(shared, id, request, |session| {
            let Some(sim) = session.single_mut() else {
                return Err((
                    ErrorCode::Unsupported,
                    "fabric sessions do not support snapshot".to_string(),
                ));
            };
            match sim.snapshot() {
                Ok(snap) => {
                    let instructions = snap.instructions();
                    session.snapshot = Some(snap);
                    Ok(vec![("instructions".to_string(), instructions.into())])
                }
                Err(e) => Err((ErrorCode::Unsupported, format!("snapshot failed: {e}"))),
            }
        }),
        "restore" => with_session(shared, id, request, |session| {
            let Some(snap) = session.snapshot.take() else {
                return Err((ErrorCode::BadRequest, "no snapshot to restore".to_string()));
            };
            let Some(sim) = session.single_mut() else {
                return Err((
                    ErrorCode::Unsupported,
                    "fabric sessions do not support restore".to_string(),
                ));
            };
            let result = sim.restore(&snap);
            let instructions = snap.instructions();
            session.snapshot = Some(snap);
            match result {
                Ok(()) => {
                    session.exit_code = None;
                    Ok(vec![("instructions".to_string(), instructions.into())])
                }
                Err(e) => Err((ErrorCode::Unsupported, format!("restore failed: {e}"))),
            }
        }),
        "stats" => with_session(shared, id, request, |session| Ok(stats_response(session))),
        "metrics" => with_session(shared, id, request, |session| {
            let registry = match &session.engine {
                Engine::Single { .. } => registry_from_stats(session),
                Engine::Fabric { fabric, .. } => fabric.metrics(),
            };
            Ok(vec![(
                "metrics".to_string(),
                json::parse(&registry.to_json())
                    .unwrap_or_else(|_| Value::Obj(Vec::new())),
            )])
        }),
        "list" => {
            let rows: Vec<Value> = shared
                .table
                .list()
                .into_iter()
                .map(|info| {
                    obj([
                        ("name", info.name.into()),
                        ("state", info.state.into()),
                        ("kind", info.kind.into()),
                        ("workload", info.workload.into()),
                        ("isa", info.isa.into()),
                        ("instructions", info.instructions.into()),
                        ("idle_secs", info.idle_secs.into()),
                        ("running_secs", info.running_secs.into()),
                    ])
                })
                .collect();
            proto::ok_response(id.clone(), vec![("sessions".to_string(), Value::Arr(rows))])
        }
        "delete" => {
            let Some(name) = request.get("name").and_then(Value::as_str) else {
                return proto::error_response(
                    id.clone(),
                    ErrorCode::BadRequest,
                    "missing `name`",
                    None,
                );
            };
            match shared.table.remove(name) {
                Ok(()) => proto::ack(id.clone()),
                Err(e) => table_error(id, name, &e),
            }
        }
        "shutdown" => {
            shared.draining.store(true, Ordering::SeqCst);
            proto::ok_response(
                id.clone(),
                vec![("draining".to_string(), Value::Bool(true))],
            )
        }
        other => proto::error_response(
            id.clone(),
            ErrorCode::BadRequest,
            &format!("unknown cmd `{other}`"),
            None,
        ),
    }
}

fn table_error(id: &Value, name: &str, e: &TableError) -> Value {
    let (code, msg) = match e {
        TableError::NotFound => (ErrorCode::NotFound, format!("no session `{name}`")),
        TableError::Busy => (ErrorCode::Busy, format!("session `{name}` is running")),
        TableError::Full => (
            ErrorCode::Overloaded,
            "session table is full of running sessions".to_string(),
        ),
        TableError::Exists => {
            (ErrorCode::BadRequest, format!("session `{name}` already exists"))
        }
    };
    proto::error_response(id.clone(), code, &msg, None)
}

/// Checkout/checkin wrapper for verbs that need exclusive session access.
fn with_session(
    shared: &Shared,
    id: &Value,
    request: &Value,
    f: impl FnOnce(&mut Session) -> Result<Vec<(String, Value)>, (ErrorCode, String)>,
) -> Value {
    let Some(name) = request.get("name").and_then(Value::as_str) else {
        return proto::error_response(id.clone(), ErrorCode::BadRequest, "missing `name`", None);
    };
    let mut session = match shared.table.checkout(name) {
        Ok(s) => s,
        Err(e) => return table_error(id, name, &e),
    };
    let result = f(&mut session);
    shared.table.checkin(session);
    match result {
        Ok(fields) => proto::ok_response(id.clone(), fields),
        Err((code, msg)) => proto::error_response(id.clone(), code, &msg, None),
    }
}

fn handle_create(shared: &Shared, id: &Value, request: &Value) -> Value {
    let bad = |msg: &str| {
        proto::error_response(id.clone(), ErrorCode::BadRequest, msg, None)
    };
    let Some(name) = request.get("name").and_then(Value::as_str) else {
        return bad("missing `name`");
    };
    if name.is_empty() || name.len() > 64 {
        return bad("`name` must be 1..=64 characters");
    }
    let kind = request.get("kind").and_then(Value::as_str).unwrap_or("single");
    let session = match kind {
        "single" => match create_single(request) {
            Ok(spec) => spec,
            Err(msg) => return bad(&msg),
        },
        "fabric" => match create_fabric(request) {
            Ok(spec) => spec,
            Err(msg) => return bad(&msg),
        },
        other => return bad(&format!("unknown session kind `{other}`")),
    };

    let started = Instant::now();
    let session = match session.build(name) {
        Ok(s) => s,
        Err(e) => return bad(&e),
    };
    match shared.table.insert(session) {
        Ok(()) => proto::ok_response(
            id.clone(),
            vec![
                ("name".to_string(), name.into()),
                ("kind".to_string(), kind.into()),
                ("proto_version".to_string(), PROTO_VERSION.into()),
                ("build_ms".to_string(), (started.elapsed().as_millis() as u64).into()),
            ],
        ),
        Err(TableError::Full) => proto::error_response(
            id.clone(),
            ErrorCode::Overloaded,
            "session table is full of running sessions",
            Some(shared.config.retry_after_ms),
        ),
        Err(e) => table_error(id, name, &e),
    }
}

/// A parsed, not-yet-built `create` request.
enum PendingSession {
    Single(SessionSpec),
    Fabric(FabricSpec),
}

impl PendingSession {
    fn build(self, name: &str) -> Result<Box<Session>, String> {
        match self {
            PendingSession::Single(spec) => Session::create(name, spec),
            PendingSession::Fabric(spec) => Session::create_fabric(name, spec),
        }
    }
}

fn create_single(request: &Value) -> Result<PendingSession, String> {
    let Some(workload_name) = request.get("workload").and_then(Value::as_str) else {
        return Err("missing `workload`".to_string());
    };
    let Some(workload) = Workload::ALL.into_iter().find(|w| w.name() == workload_name) else {
        return Err(format!("unknown workload `{workload_name}`"));
    };
    let Some(isa_name) = request.get("isa").and_then(Value::as_str) else {
        return Err("missing `isa`".to_string());
    };
    let Some(isa) = IsaKind::ALL.into_iter().find(|k| k.name() == isa_name) else {
        return Err(format!("unknown isa `{isa_name}`"));
    };
    let mut spec = SessionSpec::new(workload, isa);
    match request.get("model").and_then(Value::as_str) {
        None => {}
        Some("ilp") => spec.model = Some(CycleModelKind::Ilp),
        Some("aie") => spec.model = Some(CycleModelKind::Aie),
        Some("doe") => spec.model = Some(CycleModelKind::Doe),
        Some(other) => return Err(format!("unknown model `{other}`")),
    }
    let flag = |key: &str, default: bool| {
        request.get(key).and_then(Value::as_bool).unwrap_or(default)
    };
    spec.decode_cache = flag("decode_cache", true);
    spec.prediction = flag("prediction", true);
    spec.superblocks = flag("superblocks", true);
    spec.ideal_memory = flag("ideal_memory", false);
    Ok(PendingSession::Single(spec))
}

fn create_fabric(request: &Value) -> Result<PendingSession, String> {
    let Some(cores) = request.get("cores").and_then(Value::as_str) else {
        return Err("fabric create needs `cores` (comma-separated workload:isa[:model])"
            .to_string());
    };
    let quantum = request
        .get("quantum")
        .and_then(Value::as_u64)
        .unwrap_or(kahrisma_fabric::DEFAULT_QUANTUM);
    if quantum == 0 {
        return Err("`quantum` must be at least 1".to_string());
    }
    let host_threads = request.get("host_threads").and_then(Value::as_u64).unwrap_or(1);
    if host_threads == 0 {
        return Err("`host_threads` must be at least 1".to_string());
    }
    Ok(PendingSession::Fabric(FabricSpec {
        cores: cores.to_string(),
        quantum,
        host_threads: host_threads as usize,
    }))
}

/// Executes `run`: budget-sliced `run_for` with deadline and drain checks
/// between slices. With `loop:true`, a halted program is reset (decode
/// cache stays warm) and re-run until the instruction budget is consumed —
/// the sustained-throughput mode `kctl bench` uses.
///
/// When `observer` is set (the `stream` verb), the simulator routes events
/// through it for the duration of the request.
fn handle_run(
    shared: &Shared,
    id: &Value,
    request: &Value,
    observer: Option<Box<dyn Observer>>,
) -> Value {
    let Some(name) = request.get("name").and_then(Value::as_str) else {
        return proto::error_response(id.clone(), ErrorCode::BadRequest, "missing `name`", None);
    };
    let budget = request
        .get("budget")
        .and_then(Value::as_u64)
        .unwrap_or(1_000_000_000);
    let looped = request.get("loop").and_then(Value::as_bool).unwrap_or(false);
    let reset_first = request.get("reset").and_then(Value::as_bool).unwrap_or(false);

    // Admission control: bounded concurrent running sessions.
    let admitted = shared
        .running
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            (n < shared.config.max_running).then_some(n + 1)
        })
        .is_ok();
    if !admitted {
        return proto::error_response(
            id.clone(),
            ErrorCode::Overloaded,
            &format!("{} sessions already running", shared.config.max_running),
            Some(shared.config.retry_after_ms),
        );
    }
    let response = (|| {
        let mut session = match shared.table.checkout(name) {
            Ok(s) => s,
            Err(e) => return table_error(id, name, &e),
        };
        // Single-core-only request shapes fail cleanly before running.
        if matches!(session.engine, Engine::Fabric { .. }) {
            let unsupported = if observer.is_some() {
                Some("fabric sessions do not support stream")
            } else if looped {
                Some("fabric sessions do not support loop")
            } else {
                None
            };
            if let Some(msg) = unsupported {
                shared.table.checkin(session);
                return proto::error_response(id.clone(), ErrorCode::Unsupported, msg, None);
            }
        }
        if reset_first {
            match &mut session.engine {
                Engine::Single { sim, .. } => sim.reset(),
                Engine::Fabric { fabric, .. } => fabric.reset(),
            }
            session.exit_code = None;
        }
        let had_observer = observer.is_some();
        if let Some(o) = observer {
            if let Some(sim) = session.single_mut() {
                sim.set_observer(o);
            }
        }
        let started = Instant::now();
        let deadline = started + shared.config.request_timeout;
        let result = match &mut session.engine {
            Engine::Single { sim, .. } => run_sliced(
                sim,
                budget,
                shared.config.slice,
                looped,
                deadline,
                &shared.draining,
            )
            .map_err(|e| format!("simulation fault: {e}")),
            Engine::Fabric { fabric, .. } => run_fabric_sliced(
                fabric,
                budget,
                shared.config.slice,
                deadline,
                &shared.draining,
            ),
        };
        let wall = started.elapsed();
        session.busy += wall;
        if had_observer {
            if let Some(sim) = session.single_mut() {
                let _ = sim.take_observer();
            }
        }
        match result {
            Err(msg) => {
                // A faulted engine is not safely resumable; drop the
                // session rather than serving poisoned state.
                shared.table.discard(name);
                proto::error_response(id.clone(), ErrorCode::SimFault, &msg, None)
            }
            Ok(run) => {
                session.runs_completed += run.halts;
                if let Some(code) = run.exit_code {
                    session.exit_code = Some(code);
                }
                let mut fields = vec![
                    ("outcome".to_string(), run.outcome.into()),
                    ("instructions".to_string(), run.instructions.into()),
                    ("total_instructions".to_string(), session.instructions().into()),
                    ("runs".to_string(), run.halts.into()),
                    ("wall_ms".to_string(), (wall.as_secs_f64() * 1e3).into()),
                ];
                if let Some(code) = run.exit_code {
                    fields.push(("exit_code".to_string(), code.into()));
                }
                match &session.engine {
                    Engine::Single { sim, .. } => {
                        if let Some(cycles) = sim.cycle_stats() {
                            fields.push(("cycles".to_string(), cycles.cycles.into()));
                        }
                    }
                    Engine::Fabric { fabric, .. } => {
                        let stats = fabric.stats();
                        fields.push(("cores".to_string(), (stats.cores.len() as u64).into()));
                        fields.push(("quanta".to_string(), stats.quanta.into()));
                    }
                }
                shared.table.checkin(session);
                proto::ok_response(id.clone(), fields)
            }
        }
    })();
    shared.running.fetch_sub(1, Ordering::SeqCst);
    response
}

struct SlicedRun {
    outcome: &'static str,
    instructions: u64,
    halts: u64,
    exit_code: Option<u32>,
}

fn run_sliced(
    sim: &mut Simulator,
    budget: u64,
    slice: u64,
    looped: bool,
    deadline: Instant,
    draining: &AtomicBool,
) -> Result<SlicedRun, kahrisma_core::SimError> {
    let mut executed = 0u64;
    let mut halts = 0u64;
    let mut exit_code = None;
    let slice = slice.max(1);
    loop {
        let remaining = budget.saturating_sub(executed);
        if remaining == 0 {
            return Ok(SlicedRun { outcome: "budget", instructions: executed, halts, exit_code });
        }
        // Per-iteration delta accounting: `loop` mode resets the simulator
        // (zeroing its instruction counter), so the request-level total
        // must accumulate across resets.
        let before = sim.stats().instructions;
        let outcome = sim.run_for(remaining.min(slice))?;
        executed += sim.stats().instructions - before;
        match outcome {
            RunOutcome::Halted { exit_code: code } => {
                halts += 1;
                exit_code = Some(code);
                if !looped {
                    return Ok(SlicedRun {
                        outcome: "halted",
                        instructions: executed,
                        halts,
                        exit_code,
                    });
                }
                if executed >= budget {
                    return Ok(SlicedRun {
                        outcome: "budget",
                        instructions: executed,
                        halts,
                        exit_code,
                    });
                }
                sim.reset();
            }
            RunOutcome::BudgetExhausted => {}
        }
        if draining.load(Ordering::SeqCst) {
            return Ok(SlicedRun { outcome: "draining", instructions: executed, halts, exit_code });
        }
        if Instant::now() >= deadline {
            return Ok(SlicedRun { outcome: "deadline", instructions: executed, halts, exit_code });
        }
    }
}

/// The fabric counterpart of [`run_sliced`]: advances the whole fabric in
/// `slice`-instruction legs (per core) with deadline and drain checks at
/// each leg boundary. As in [`Fabric::run_for`], the request `budget`
/// bounds each *core's* instructions, not the aggregate.
fn run_fabric_sliced(
    fabric: &mut Fabric,
    budget: u64,
    slice: u64,
    deadline: Instant,
    draining: &AtomicBool,
) -> Result<SlicedRun, String> {
    let before = fabric.stats().aggregate.instructions;
    let slice = slice.max(1);
    let mut granted = 0u64;
    let mut halted = false;
    let outcome = loop {
        let remaining = budget.saturating_sub(granted);
        if remaining == 0 {
            break "budget";
        }
        let step = remaining.min(slice);
        match fabric.run_for(step).map_err(|e| format!("simulation fault: {e}"))? {
            FabricOutcome::AllHalted => {
                halted = true;
                break "halted";
            }
            FabricOutcome::BudgetExhausted => {}
        }
        granted += step;
        if draining.load(Ordering::SeqCst) {
            break "draining";
        }
        if Instant::now() >= deadline {
            break "deadline";
        }
    };
    Ok(SlicedRun {
        outcome,
        instructions: fabric.stats().aggregate.instructions - before,
        halts: u64::from(halted),
        exit_code: None,
    })
}

/// An observer that writes capped event frames straight into the
/// connection, counting overflow drops. The tallies live in the shared
/// sink because the observer box itself is consumed by the simulator.
struct StreamObserver {
    sink: Arc<std::sync::Mutex<StreamSink>>,
    session: String,
    limit: u64,
}

struct StreamSink {
    writer: BufWriter<TcpStream>,
    failed: bool,
    emitted: u64,
    dropped: u64,
}

impl Observer for StreamObserver {
    fn event(&mut self, event: SimEvent) {
        let mut sink = self.sink.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if sink.emitted >= self.limit {
            sink.dropped += 1;
            return;
        }
        sink.emitted += 1;
        if sink.failed {
            return;
        }
        let line = proto::stream_frame(&self.session, &frame::to_json_line(&event));
        // Stream emission is best-effort: a dead client must not abort the
        // simulation mid-run (the session survives; the final response
        // write will fail and close the connection).
        if sink.writer.write_all(line.as_bytes()).is_err()
            || sink.writer.write_all(b"\n").is_err()
        {
            sink.failed = true;
        }
    }
}

/// `stream` is `run` with an attached frame-writing observer. The final
/// response reports how many frames were emitted/dropped.
fn handle_stream(
    shared: &Shared,
    id: &Value,
    request: &Value,
    writer: &mut BufWriter<TcpStream>,
) -> Value {
    let Some(name) = request.get("name").and_then(Value::as_str) else {
        return proto::error_response(id.clone(), ErrorCode::BadRequest, "missing `name`", None);
    };
    let limit = request.get("limit").and_then(Value::as_u64).unwrap_or(65_536);
    let Ok(stream_clone) = writer.get_ref().try_clone() else {
        return proto::error_response(
            id.clone(),
            ErrorCode::BadRequest,
            "cannot clone connection for streaming",
            None,
        );
    };
    // Flush buffered responses before the observer starts interleaving.
    let _ = writer.flush();
    let sink = Arc::new(std::sync::Mutex::new(StreamSink {
        writer: BufWriter::new(stream_clone),
        failed: false,
        emitted: 0,
        dropped: 0,
    }));
    let observer = Box::new(StreamObserver {
        sink: Arc::clone(&sink),
        session: name.to_string(),
        limit,
    });
    let mut response = handle_run(shared, id, request, Some(observer));
    let (emitted, dropped) = {
        let mut sink = sink.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = sink.writer.flush();
        (sink.emitted, sink.dropped)
    };
    if let Value::Obj(fields) = &mut response {
        fields.push(("frames".to_string(), emitted.into()));
        fields.push(("frames_dropped".to_string(), dropped.into()));
    }
    response
}

/// Builds the `stats` response: the unified [`StatsReport`] document
/// (`schema_version` first, canonical counters and ratios in declaration
/// order) flattened into top-level response fields, plus session
/// bookkeeping and, for a fabric, a per-core breakdown.
fn stats_response(session: &Session) -> Vec<(String, Value)> {
    let mut report = StatsReport::new();
    let mut extra: Vec<(String, Value)> = Vec::new();
    match &session.engine {
        Engine::Single { sim, .. } => {
            report.push_str("kind", "single");
            report.counters(sim.stats());
            report.ratios(sim.stats());
            if let Some(cycles) = sim.cycle_stats() {
                report.cycles(&cycles);
            }
        }
        Engine::Fabric { fabric, .. } => {
            let stats = fabric.stats();
            stats.report_into(&mut report);
            let rows: Vec<Value> = stats
                .cores
                .iter()
                .map(|core| {
                    let mut fields = vec![
                        ("name".to_string(), core.name.as_str().into()),
                        ("instructions".to_string(), core.stats.instructions.into()),
                        ("operations".to_string(), core.stats.operations.into()),
                        ("halted".to_string(), core.halted.into()),
                        ("restarts".to_string(), core.restarts.into()),
                    ];
                    if let Some(code) = core.exit_code {
                        fields.push(("exit_code".to_string(), code.into()));
                    }
                    if let Some(cycles) = core.total_cycles {
                        fields.push(("cycles".to_string(), cycles.into()));
                    }
                    Value::Obj(fields)
                })
                .collect();
            extra.push(("core_stats".to_string(), Value::Arr(rows)));
        }
    }
    if let Some(code) = session.exit_code {
        report.push_u64("exit_code", u64::from(code));
    }
    report.push_bool("halted", session.halted());
    report.push_u64("runs_completed", session.runs_completed);
    let mut fields = report_fields(&report);
    fields.extend(extra);
    fields
}

/// Flattens a [`StatsReport`] into wire response fields — the daemon's
/// side of the one-serializer contract for stats documents.
fn report_fields(report: &StatsReport) -> Vec<(String, Value)> {
    report
        .fields()
        .iter()
        .map(|(name, value)| {
            let v = match value {
                StatValue::U64(v) => Value::Num(*v as f64),
                StatValue::F64(v) => Value::Num(if v.is_finite() { *v } else { 0.0 }),
                StatValue::Bool(v) => Value::Bool(*v),
                StatValue::Str(v) => Value::Str(v.clone()),
            };
            (name.clone(), v)
        })
        .collect()
}

/// Folds a single-core session's stats into a deterministic
/// [`MetricsRegistry`] (fabric sessions use [`Fabric::metrics`] instead).
///
/// Deliberately *not* implemented by attaching a `MetricsCollector`
/// observer: an attached observer bypasses the superblock fast path, which
/// would tax every served run. Folding from the counters the fast path
/// already maintains is free and exactly as deterministic.
fn registry_from_stats(session: &Session) -> MetricsRegistry {
    let Engine::Single { sim, .. } = &session.engine else {
        return MetricsRegistry::new();
    };
    let stats = sim.stats();
    let mut r = MetricsRegistry::new();
    r.set_counter("sim.instructions", stats.instructions);
    r.set_counter("sim.operations", stats.operations);
    r.set_counter("sim.nops", stats.nops);
    r.set_counter("decode.detect_decodes", stats.detect_decodes);
    r.set_counter("decode.cache_lookups", stats.cache_lookups);
    r.set_counter("decode.cache_hits", stats.cache_hits);
    r.set_counter("decode.prediction_hits", stats.prediction_hits);
    r.set_counter("superblock.built", stats.superblocks_built);
    r.set_counter("superblock.batches", stats.superblock_batches);
    r.set_counter("mem.reads", stats.mem_reads);
    r.set_counter("mem.writes", stats.mem_writes);
    r.set_counter("isa.switches", stats.isa_switches);
    r.set_counter("libc.simops", stats.simops);
    r.set_counter("branch.taken", stats.taken_branches);
    r.set_counter("session.runs_completed", session.runs_completed);
    r.set_gauge("decode.avoided_ratio", stats.decode_avoided_ratio());
    r.set_gauge("decode.cache_hit_ratio", stats.cache_hit_ratio());
    r.set_gauge("session.busy_secs", session.busy.as_secs_f64());
    if let Some(cycles) = sim.cycle_stats() {
        r.set_counter("cycles.total", cycles.cycles);
        r.set_gauge("cycles.ops_per_cycle", cycles.ops_per_cycle());
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = ServerConfig::default();
        assert!(c.max_sessions >= 1);
        assert!(c.max_running >= 1);
        assert!(c.slice >= 1);
    }

    #[test]
    fn sliced_run_reports_budget_and_halt() {
        let exe = Workload::Dct.build(IsaKind::Risc).unwrap();
        let mut sim =
            Simulator::new(&exe, kahrisma_core::SimConfig::default()).unwrap();
        let draining = AtomicBool::new(false);
        let deadline = Instant::now() + Duration::from_secs(60);
        // A tiny budget with a smaller slice: several slices, no halt.
        let run = run_sliced(&mut sim, 1000, 100, false, deadline, &draining).unwrap();
        assert_eq!(run.outcome, "budget");
        assert_eq!(run.instructions, 1000);
        assert_eq!(run.halts, 0);
        // Run to completion.
        let run =
            run_sliced(&mut sim, u64::MAX, 4_000_000, false, deadline, &draining).unwrap();
        assert_eq!(run.outcome, "halted");
        assert_eq!(run.exit_code, Some(Workload::Dct.expected_exit()));
        assert_eq!(run.halts, 1);
    }

    #[test]
    fn sliced_run_loops_with_warm_cache() {
        let exe = Workload::Dct.build(IsaKind::Risc).unwrap();
        let mut sim =
            Simulator::new(&exe, kahrisma_core::SimConfig::default()).unwrap();
        let draining = AtomicBool::new(false);
        let deadline = Instant::now() + Duration::from_secs(60);
        let once =
            run_sliced(&mut sim, u64::MAX, 4_000_000, false, deadline, &draining).unwrap();
        let per_run = once.instructions;
        sim.reset();
        let looped = run_sliced(
            &mut sim,
            per_run * 3,
            4_000_000,
            true,
            deadline,
            &draining,
        )
        .unwrap();
        assert_eq!(looped.outcome, "budget");
        assert_eq!(looped.halts, 3);
        assert_eq!(looped.exit_code, Some(Workload::Dct.expected_exit()));
        // The warm decode cache means the looped runs decode nothing new.
        assert_eq!(sim.stats().detect_decodes, 0);
    }

    #[test]
    fn draining_interrupts_a_sliced_run() {
        let exe = Workload::Dct.build(IsaKind::Risc).unwrap();
        let mut sim =
            Simulator::new(&exe, kahrisma_core::SimConfig::default()).unwrap();
        let draining = AtomicBool::new(true);
        let deadline = Instant::now() + Duration::from_secs(60);
        let run = run_sliced(&mut sim, u64::MAX, 100, false, deadline, &draining).unwrap();
        assert_eq!(run.outcome, "draining");
        assert_eq!(run.instructions, 100); // exactly one slice ran
    }

    #[test]
    fn registry_fold_is_deterministic() {
        let session = Session::create(
            "t",
            SessionSpec::new(Workload::Dct, IsaKind::Risc),
        )
        .unwrap();
        let a = registry_from_stats(&session).to_json();
        let b = registry_from_stats(&session).to_json();
        assert_eq!(a, b);
        kahrisma_observe::json_lint::validate(&a).expect("valid JSON");
    }
}
