//! The `ksimd` daemon: a nonblocking event-loop serving plane (see
//! [`crate::eventloop`]) over a bounded session table, with request
//! dispatch, admission control, session export/import, and graceful drain.
//!
//! One loop thread multiplexes every connection; light verbs (`ping`,
//! `list`, `stats`, …) are answered inline on the loop thread, heavy verbs
//! (`run`, `create`, `import`, …) execute on a small worker pool sized to
//! the admission limit. Connections are state machines decoupled from
//! sessions, so thousands of idle clients cost no threads.

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use kahrisma_core::{
    CycleModelKind, Observer, RunOutcome, SimEvent, Simulator, Snapshot, StatValue, StatsReport,
    TierMode,
};
use kahrisma_fabric::{Fabric, FabricOutcome};
use kahrisma_isa::IsaKind;
use kahrisma_observe::{frame, MetricsRegistry, Span, SpanKind, SpanRing};
use kahrisma_workloads::Workload;

use crate::eventloop::{ConnOut, Dispatch, EventLoop, LoopConfig, LoopStats, Service};
use crate::json::{self, obj, Value};
use crate::proto::{self, ErrorCode, PROTO_VERSION};
use crate::session::{Engine, FabricSpec, Session, SessionSpec, SessionTable, TableError};

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 binds an ephemeral port.
    pub addr: String,
    /// Session-table capacity (LRU-evicts idle sessions beyond it).
    pub max_sessions: usize,
    /// Maximum concurrently *running* sessions; excess `run`/`stream`
    /// requests get `overloaded` with a retry hint.
    pub max_running: usize,
    /// Idle sessions older than this are evicted at the next request.
    pub idle_timeout: Duration,
    /// Per-request execution deadline; longer runs return partial progress
    /// (`outcome:"deadline"`) and can be continued with another `run`.
    pub request_timeout: Duration,
    /// Instructions per `run_for` slice between deadline/drain checks.
    pub slice: u64,
    /// Back-off hint attached to `overloaded` responses.
    pub retry_after_ms: u64,
    /// Upper bound on one request frame, in bytes. Advertised in `ping`;
    /// sized so an `export`ed session state fits in one frame.
    pub max_frame: usize,
    /// Worker threads executing blocking verbs; `0` sizes the pool
    /// automatically from `max_running`.
    pub io_workers: usize,
    /// Serve-plane telemetry (request spans, per-verb latency histograms,
    /// the `server_metrics` / `trace` verbs' data). Disable to measure the
    /// instrumentation's own cost (`ksimd --no-telemetry`).
    pub telemetry: bool,
    /// When set, any pool verb whose *execution* exceeds this many
    /// milliseconds logs one structured JSON line to stderr. Measured from
    /// dispatch, after the frame fully arrived — a slow client trickling
    /// bytes (slow loris) never trips it.
    pub slow_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_sessions: 32,
            max_running: 4,
            idle_timeout: Duration::from_secs(300),
            request_timeout: Duration::from_secs(30),
            slice: 4_000_000,
            retry_after_ms: 250,
            max_frame: proto::DEFAULT_MAX_FRAME_BYTES,
            io_workers: 0,
            telemetry: true,
            slow_ms: None,
        }
    }
}

impl ServerConfig {
    /// The worker-pool size this config resolves to: `run`/`stream`
    /// concurrency plus slack for non-run verbs.
    #[must_use]
    pub fn resolved_io_workers(&self) -> usize {
        if self.io_workers == 0 {
            self.max_running.saturating_add(2).max(4)
        } else {
            self.io_workers
        }
    }
}

/// The simulation service: every protocol verb over the session table.
/// Plugged into the shared [`EventLoop`]; `kgate` plugs in its own
/// [`Service`] over the identical loop.
struct SimService {
    config: ServerConfig,
    table: SessionTable,
    running: AtomicUsize,
    draining: Arc<AtomicBool>,
    started: Instant,
    /// Event-loop counters, shared with the loop via [`LoopConfig::stats`].
    loop_stats: Arc<LoopStats>,
    /// Request spans for the `trace` verb (empty when telemetry is off).
    spans: Mutex<SpanRing>,
    /// Serve-plane counters/histograms for the `server_metrics` verb.
    metrics: Mutex<MetricsRegistry>,
}

/// Spans retained per process for `kctl trace`.
const SPAN_RING_CAPACITY: usize = 4096;

/// A handle for stopping a daemon from another thread (tests, signal
/// plumbing). Cloned freely.
#[derive(Clone)]
pub struct DaemonHandle {
    draining: Arc<AtomicBool>,
    addr: std::net::SocketAddr,
}

impl DaemonHandle {
    /// The daemon's bound address.
    #[must_use]
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Requests a graceful drain: stop accepting connections, let running
    /// requests finish, flush, exit. The event loop polls the flag, so no
    /// wake-up connection is needed.
    pub fn shutdown(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }
}

/// The simulation daemon.
pub struct Daemon {
    listener: TcpListener,
    service: Arc<SimService>,
}

impl Daemon {
    /// Binds the listen socket (without accepting yet).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: ServerConfig) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(&config.addr)?;
        let service = Arc::new(SimService {
            table: SessionTable::new(config.max_sessions, config.idle_timeout),
            running: AtomicUsize::new(0),
            draining: Arc::new(AtomicBool::new(false)),
            started: Instant::now(),
            loop_stats: Arc::new(LoopStats::default()),
            spans: Mutex::new(SpanRing::new(SPAN_RING_CAPACITY)),
            metrics: Mutex::new(MetricsRegistry::new()),
            config,
        });
        Ok(Daemon { listener, service })
    }

    /// The bound address (read this after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A stop handle usable from other threads.
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn handle(&self) -> std::io::Result<DaemonHandle> {
        Ok(DaemonHandle {
            draining: Arc::clone(&self.service.draining),
            addr: self.local_addr()?,
        })
    }

    /// Runs the event loop until a `shutdown` request (or
    /// [`DaemonHandle::shutdown`]) drains the daemon. The loop exits only
    /// after every in-flight request has completed and flushed.
    ///
    /// # Errors
    ///
    /// Propagates listener setup failures (per-connection I/O errors only
    /// terminate that connection).
    pub fn run(self) -> std::io::Result<()> {
        let loop_config = LoopConfig {
            workers: self.service.config.resolved_io_workers(),
            max_frame: self.service.config.max_frame,
            stats: Arc::clone(&self.service.loop_stats),
            ..LoopConfig::default()
        };
        let draining = Arc::clone(&self.service.draining);
        EventLoop::new(self.listener, self.service, draining, loop_config).run()
    }
}

impl Service for SimService {
    /// Classifies one request on the loop thread. Light verbs are answered
    /// inline; `run`/`stream` get a fast-path admission check here so an
    /// overloaded server rejects without waiting for a pool slot.
    fn route(&self, request: &Value, _raw: &str) -> Dispatch {
        // Lazy idle eviction: every request sweeps first.
        let evicted = self.table.sweep();
        if evicted > 0 && self.config.telemetry {
            self.lock_metrics().count("session.evictions", evicted as u64);
        }
        let id = request.get("id").cloned().unwrap_or(Value::Null);
        let Some(cmd) = request.get("cmd").and_then(Value::as_str) else {
            return Dispatch::Reply(proto::error_response(
                id,
                ErrorCode::BadRequest,
                "missing `cmd`",
                None,
            ));
        };
        // Observability verbs stay answerable during drain: an operator
        // watching `kctl top` must not go blind exactly when the fleet is
        // doing something interesting.
        if self.draining.load(Ordering::SeqCst)
            && !matches!(cmd, "ping" | "list" | "server_metrics" | "trace")
        {
            return Dispatch::Reply(proto::error_response(
                id,
                ErrorCode::Draining,
                "server is draining",
                None,
            ));
        }
        match cmd {
            "ping" => Dispatch::Reply(self.ping_response(id)),
            "list" => Dispatch::Reply(self.list_response(&id)),
            "server_metrics" => Dispatch::Reply(self.server_metrics_response(&id)),
            "trace" => Dispatch::Reply(self.trace_response(&id, request)),
            "stats" => Dispatch::Reply(with_session(self, &id, request, |session| {
                Ok(stats_response(session))
            })),
            "metrics" => Dispatch::Reply(with_session(self, &id, request, |session| {
                let registry = match &session.engine {
                    Engine::Single { .. } => registry_from_stats(session),
                    Engine::Fabric { fabric, .. } => fabric.metrics(),
                };
                Ok(vec![(
                    "metrics".to_string(),
                    json::parse(&registry.to_json()).unwrap_or_else(|_| Value::Obj(Vec::new())),
                )])
            })),
            "delete" => Dispatch::Reply(self.delete_response(&id, request)),
            "shutdown" => {
                self.draining.store(true, Ordering::SeqCst);
                Dispatch::Reply(proto::ok_response(
                    id,
                    vec![("draining".to_string(), Value::Bool(true))],
                ))
            }
            "run" | "stream" => {
                // Fast-path rejection: while all run slots are held, reject
                // here on the loop thread (the authoritative check happens
                // again at execution). Without this, a saturated pool would
                // delay the `overloaded` response instead of sending it.
                if self.running.load(Ordering::SeqCst) >= self.config.max_running {
                    if self.config.telemetry {
                        self.lock_metrics().count("admission.rejected", 1);
                    }
                    return Dispatch::Reply(proto::error_response(
                        id,
                        ErrorCode::Overloaded,
                        &format!("{} sessions already running", self.config.max_running),
                        Some(self.config.retry_after_ms),
                    ));
                }
                Dispatch::Pool
            }
            "create" | "reset" | "snapshot" | "restore" | "export" | "import" => Dispatch::Pool,
            other => Dispatch::Reply(proto::error_response(
                id,
                ErrorCode::BadRequest,
                &format!("unknown cmd `{other}`"),
                None,
            )),
        }
    }

    /// Executes one heavy verb on a pool worker, recording its span
    /// (queue wait + execution time) and per-verb latency histogram.
    fn perform(&self, request: &Value, out: &Arc<ConnOut>, wait_us: u64) -> Value {
        let start_us = u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let begun = Instant::now();
        let response = self.perform_inner(request, out);
        self.record_request(request, start_us, wait_us, begun.elapsed(), &response);
        response
    }
}

impl SimService {
    /// The un-instrumented verb dispatch behind [`Service::perform`].
    fn perform_inner(&self, request: &Value, out: &Arc<ConnOut>) -> Value {
        let id = request.get("id").cloned().unwrap_or(Value::Null);
        match request.get("cmd").and_then(Value::as_str) {
            Some("create") => self.handle_create(&id, request),
            Some("run") => self.handle_run(&id, request, None),
            Some("stream") => self.handle_stream(&id, request, out),
            Some("reset") => with_session(self, &id, request, |session| {
                match &mut session.engine {
                    Engine::Single { sim, .. } => sim.reset(),
                    Engine::Fabric { fabric, .. } => fabric.reset(),
                }
                session.exit_code = None;
                Ok(Vec::new())
            }),
            Some("snapshot") => with_session(self, &id, request, |session| {
                let Some(sim) = session.single_mut() else {
                    return Err((
                        ErrorCode::Unsupported,
                        "fabric sessions do not support snapshot".to_string(),
                    ));
                };
                match sim.snapshot() {
                    Ok(snap) => {
                        let instructions = snap.instructions();
                        session.snapshot = Some(snap);
                        Ok(vec![("instructions".to_string(), instructions.into())])
                    }
                    Err(e) => Err((ErrorCode::Unsupported, format!("snapshot failed: {e}"))),
                }
            }),
            Some("restore") => with_session(self, &id, request, |session| {
                let Some(snap) = session.snapshot.take() else {
                    return Err((ErrorCode::BadRequest, "no snapshot to restore".to_string()));
                };
                let Some(sim) = session.single_mut() else {
                    return Err((
                        ErrorCode::Unsupported,
                        "fabric sessions do not support restore".to_string(),
                    ));
                };
                let result = sim.restore(&snap);
                let instructions = snap.instructions();
                session.snapshot = Some(snap);
                match result {
                    Ok(()) => {
                        session.exit_code = None;
                        Ok(vec![("instructions".to_string(), instructions.into())])
                    }
                    Err(e) => Err((ErrorCode::Unsupported, format!("restore failed: {e}"))),
                }
            }),
            Some("export") => self.handle_export(&id, request),
            Some("import") => self.handle_import(&id, request),
            // route() only pools the verbs above.
            _ => proto::error_response(id, ErrorCode::BadRequest, "unroutable request", None),
        }
    }
}

impl SimService {
    fn lock_metrics(&self) -> std::sync::MutexGuard<'_, MetricsRegistry> {
        self.metrics.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_spans(&self) -> std::sync::MutexGuard<'_, SpanRing> {
        self.spans.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Records one pool request's span and metrics after it executed.
    ///
    /// The `trace` field is read tolerantly: absent or mistyped (an older
    /// peer, a foreign client) means trace id 0, never an error. All the
    /// work here happens *after* the verb ran, so instrumentation adds
    /// nothing to the request's observable latency beyond two mutex grabs.
    fn record_request(
        &self,
        request: &Value,
        start_us: u64,
        wait_us: u64,
        exec: Duration,
        response: &Value,
    ) {
        let cmd = request.get("cmd").and_then(Value::as_str).unwrap_or("?");
        let exec_us = u64::try_from(exec.as_micros()).unwrap_or(u64::MAX);
        let trace = request.get("trace").and_then(Value::as_u64).unwrap_or(0);
        let session = request.get("name").and_then(Value::as_str).unwrap_or("");
        let ok = response.get("ok").and_then(Value::as_bool).unwrap_or(false);
        let slow = self.config.slow_ms.is_some_and(|t| exec.as_millis() as u64 >= t);
        if slow {
            // One line, one write: structured enough to grep, small enough
            // to never need rotation logic.
            eprintln!(
                "{{\"slow\":true,\"trace\":{trace},\"verb\":\"{}\",\"session\":\"{}\",\
                 \"elapsed_ms\":{},\"queue_us\":{wait_us},\"ok\":{ok}}}",
                crate::telemetry::json_escape(cmd),
                crate::telemetry::json_escape(session),
                exec.as_millis() as u64,
            );
        }
        if !self.config.telemetry {
            return;
        }
        let mut metrics = self.lock_metrics();
        metrics.count("requests.pool", 1);
        if !ok {
            metrics.count("requests.failed", 1);
        }
        if slow {
            metrics.count("slow.logged", 1);
        }
        metrics.record(&format!("verb.{cmd}.latency_us"), exec_us);
        metrics.record("queue.wait_us", wait_us);
        drop(metrics);
        self.lock_spans().push(Span {
            trace,
            kind: SpanKind::Worker,
            verb: cmd.to_string(),
            session: session.to_string(),
            start_us,
            queue_us: wait_us,
            exec_us,
            ok,
        });
    }

    /// `server_metrics`: the full serve-plane registry — verb latencies
    /// and request counters accumulated on the pool, loop health sampled
    /// from [`LoopStats`], and session-table occupancy — as one
    /// deterministic document (`schema_version` first).
    fn server_metrics_response(&self, id: &Value) -> Value {
        let mut reg = if self.config.telemetry {
            self.lock_metrics().clone()
        } else {
            MetricsRegistry::new()
        };
        let ls = &self.loop_stats;
        reg.set_counter("loop.poll_iterations", ls.poll_iterations.load(Ordering::Relaxed));
        reg.set_counter("loop.accepted", ls.accepted.load(Ordering::Relaxed));
        reg.set_counter("loop.refused", ls.refused.load(Ordering::Relaxed));
        reg.set_counter("loop.frames", ls.frames.load(Ordering::Relaxed));
        reg.set_counter("loop.frame_errors", ls.frame_errors.load(Ordering::Relaxed));
        reg.set_gauge("loop.open_conns", ls.open_conns.load(Ordering::Relaxed) as f64);
        reg.set_gauge("loop.queue_depth", ls.queue_depth.load(Ordering::Relaxed) as f64);
        reg.set_gauge("sessions.resident", self.table.len() as f64);
        reg.set_gauge("sessions.capacity", self.config.max_sessions as f64);
        reg.set_gauge("sessions.running", self.running.load(Ordering::SeqCst) as f64);
        reg.set_gauge("uptime_ms", self.started.elapsed().as_millis() as f64);
        {
            let spans = self.lock_spans();
            reg.set_counter("spans.recorded", spans.total());
            reg.set_counter("spans.dropped", spans.dropped());
        }
        let mut fields = vec![(
            "schema_version".to_string(),
            kahrisma_core::STATS_SCHEMA_VERSION.into(),
        )];
        fields.extend(crate::telemetry::registry_to_fields(&reg));
        proto::ok_response(id.clone(), fields)
    }

    /// `trace`: dumps retained spans, optionally filtered to one trace id
    /// (the `filter` field — distinct from `trace`, which on every request
    /// is the *requester's own* propagated trace id).
    fn trace_response(&self, id: &Value, request: &Value) -> Value {
        let filter = request.get("filter").and_then(Value::as_u64).filter(|&t| t != 0);
        let spans = self.lock_spans();
        let rows: Vec<Value> =
            spans.select(filter).iter().map(crate::telemetry::span_to_value).collect();
        proto::ok_response(
            id.clone(),
            vec![
                ("spans".to_string(), Value::Arr(rows)),
                ("spans_total".to_string(), spans.total().into()),
                ("spans_dropped".to_string(), spans.dropped().into()),
            ],
        )
    }

    /// `ping` doubles as the load/health report: protocol version, resident
    /// and running session counts, uptime, the advertised frame cap, and
    /// the drain flag. Older clients read `pong`/`proto_version` and ignore
    /// the rest.
    fn ping_response(&self, id: Value) -> Value {
        proto::ok_response(
            id,
            vec![
                ("pong".to_string(), Value::Bool(true)),
                ("proto_version".to_string(), PROTO_VERSION.into()),
                ("sessions".to_string(), (self.table.len() as u64).into()),
                (
                    "running".to_string(),
                    (self.running.load(Ordering::SeqCst) as u64).into(),
                ),
                (
                    "uptime_ms".to_string(),
                    (self.started.elapsed().as_millis() as u64).into(),
                ),
                ("max_frame".to_string(), (self.config.max_frame as u64).into()),
                (
                    "draining".to_string(),
                    Value::Bool(self.draining.load(Ordering::SeqCst)),
                ),
            ],
        )
    }

    fn list_response(&self, id: &Value) -> Value {
        let rows: Vec<Value> = self
            .table
            .list()
            .into_iter()
            .map(|info| {
                obj([
                    ("name", info.name.into()),
                    ("state", info.state.into()),
                    ("kind", info.kind.into()),
                    ("workload", info.workload.into()),
                    ("isa", info.isa.into()),
                    ("instructions", info.instructions.into()),
                    ("idle_secs", info.idle_secs.into()),
                    ("running_secs", info.running_secs.into()),
                ])
            })
            .collect();
        proto::ok_response(id.clone(), vec![("sessions".to_string(), Value::Arr(rows))])
    }

    fn delete_response(&self, id: &Value, request: &Value) -> Value {
        let Some(name) = request.get("name").and_then(Value::as_str) else {
            return proto::error_response(id.clone(), ErrorCode::BadRequest, "missing `name`", None);
        };
        match self.table.remove(name) {
            Ok(()) => proto::ack(id.clone()),
            Err(e) => table_error(id, name, &e),
        }
    }

    fn handle_create(&self, id: &Value, request: &Value) -> Value {
        let bad = |msg: &str| proto::error_response(id.clone(), ErrorCode::BadRequest, msg, None);
        let Some(name) = request.get("name").and_then(Value::as_str) else {
            return bad("missing `name`");
        };
        if name.is_empty() || name.len() > 64 {
            return bad("`name` must be 1..=64 characters");
        }
        let kind = request.get("kind").and_then(Value::as_str).unwrap_or("single");
        let session = match kind {
            "single" => match create_single(request) {
                Ok(spec) => spec,
                Err(msg) => return bad(&msg),
            },
            "fabric" => match create_fabric(request) {
                Ok(spec) => spec,
                Err(msg) => return bad(&msg),
            },
            other => return bad(&format!("unknown session kind `{other}`")),
        };

        let started = Instant::now();
        let session = match session.build(name) {
            Ok(s) => s,
            Err(e) => return bad(&e),
        };
        match self.table.insert(session) {
            Ok(()) => proto::ok_response(
                id.clone(),
                vec![
                    ("name".to_string(), name.into()),
                    ("kind".to_string(), kind.into()),
                    ("proto_version".to_string(), PROTO_VERSION.into()),
                    ("build_ms".to_string(), (started.elapsed().as_millis() as u64).into()),
                ],
            ),
            Err(TableError::Full) => proto::error_response(
                id.clone(),
                ErrorCode::Overloaded,
                "session table is full of running sessions",
                Some(self.config.retry_after_ms),
            ),
            Err(e) => table_error(id, name, &e),
        }
    }

    /// Executes `run`: budget-sliced `run_for` with deadline and drain
    /// checks between slices. With `loop:true`, a halted program is reset
    /// (decode cache stays warm) and re-run until the instruction budget is
    /// consumed — the sustained-throughput mode `kctl bench` uses.
    ///
    /// When `observer` is set (the `stream` verb), the simulator routes
    /// events through it for the duration of the request.
    fn handle_run(&self, id: &Value, request: &Value, observer: Option<Box<dyn Observer>>) -> Value {
        let Some(name) = request.get("name").and_then(Value::as_str) else {
            return proto::error_response(id.clone(), ErrorCode::BadRequest, "missing `name`", None);
        };
        let budget = request.get("budget").and_then(Value::as_u64).unwrap_or(1_000_000_000);
        let looped = request.get("loop").and_then(Value::as_bool).unwrap_or(false);
        let reset_first = request.get("reset").and_then(Value::as_bool).unwrap_or(false);

        // Admission control: bounded concurrent running sessions.
        let admitted = self
            .running
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < self.config.max_running).then_some(n + 1)
            })
            .is_ok();
        if !admitted {
            if self.config.telemetry {
                self.lock_metrics().count("admission.rejected", 1);
            }
            return proto::error_response(
                id.clone(),
                ErrorCode::Overloaded,
                &format!("{} sessions already running", self.config.max_running),
                Some(self.config.retry_after_ms),
            );
        }
        let response = (|| {
            let mut session = match self.table.checkout(name) {
                Ok(s) => s,
                Err(e) => return table_error(id, name, &e),
            };
            // Single-core-only request shapes fail cleanly before running.
            if matches!(session.engine, Engine::Fabric { .. }) {
                let unsupported = if observer.is_some() {
                    Some("fabric sessions do not support stream")
                } else if looped {
                    Some("fabric sessions do not support loop")
                } else {
                    None
                };
                if let Some(msg) = unsupported {
                    self.table.checkin(session);
                    return proto::error_response(id.clone(), ErrorCode::Unsupported, msg, None);
                }
            }
            if reset_first {
                match &mut session.engine {
                    Engine::Single { sim, .. } => sim.reset(),
                    Engine::Fabric { fabric, .. } => fabric.reset(),
                }
                session.exit_code = None;
            }
            let had_observer = observer.is_some();
            if let Some(o) = observer {
                if let Some(sim) = session.single_mut() {
                    sim.set_observer(o);
                }
            }
            let started = Instant::now();
            let deadline = started + self.config.request_timeout;
            let result = match &mut session.engine {
                Engine::Single { sim, .. } => run_sliced(
                    sim,
                    budget,
                    self.config.slice,
                    looped,
                    deadline,
                    &self.draining,
                )
                .map_err(|e| format!("simulation fault: {e}")),
                Engine::Fabric { fabric, .. } => {
                    run_fabric_sliced(fabric, budget, self.config.slice, deadline, &self.draining)
                }
            };
            let wall = started.elapsed();
            session.busy += wall;
            if had_observer {
                if let Some(sim) = session.single_mut() {
                    let _ = sim.take_observer();
                }
            }
            match result {
                Err(msg) => {
                    // A faulted engine is not safely resumable; drop the
                    // session rather than serving poisoned state.
                    self.table.discard(name);
                    proto::error_response(id.clone(), ErrorCode::SimFault, &msg, None)
                }
                Ok(run) => {
                    session.runs_completed += run.halts;
                    if let Some(code) = run.exit_code {
                        session.exit_code = Some(code);
                    }
                    let mut fields = vec![
                        ("outcome".to_string(), run.outcome.into()),
                        ("instructions".to_string(), run.instructions.into()),
                        ("total_instructions".to_string(), session.instructions().into()),
                        ("runs".to_string(), run.halts.into()),
                        ("wall_ms".to_string(), (wall.as_secs_f64() * 1e3).into()),
                    ];
                    if let Some(code) = run.exit_code {
                        fields.push(("exit_code".to_string(), code.into()));
                    }
                    match &session.engine {
                        Engine::Single { sim, .. } => {
                            if let Some(cycles) = sim.cycle_stats() {
                                fields.push(("cycles".to_string(), cycles.cycles.into()));
                            }
                        }
                        Engine::Fabric { fabric, .. } => {
                            let stats = fabric.stats();
                            fields.push(("cores".to_string(), (stats.cores.len() as u64).into()));
                            fields.push(("quanta".to_string(), stats.quanta.into()));
                        }
                    }
                    self.table.checkin(session);
                    proto::ok_response(id.clone(), fields)
                }
            }
        })();
        self.running.fetch_sub(1, Ordering::SeqCst);
        response
    }

    /// `stream` is `run` with an attached frame-writing observer. The final
    /// response reports how many frames were emitted/dropped.
    fn handle_stream(&self, id: &Value, request: &Value, out: &Arc<ConnOut>) -> Value {
        let Some(name) = request.get("name").and_then(Value::as_str) else {
            return proto::error_response(id.clone(), ErrorCode::BadRequest, "missing `name`", None);
        };
        let limit = request.get("limit").and_then(Value::as_u64).unwrap_or(65_536);
        let counts = Arc::new(Mutex::new(StreamCounts { emitted: 0, dropped: 0 }));
        let observer = Box::new(StreamObserver {
            out: Arc::clone(out),
            counts: Arc::clone(&counts),
            session: name.to_string(),
            limit,
        });
        let mut response = self.handle_run(id, request, Some(observer));
        let (emitted, dropped) = {
            let counts = counts.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            (counts.emitted, counts.dropped)
        };
        if let Value::Obj(fields) = &mut response {
            fields.push(("frames".to_string(), emitted.into()));
            fields.push(("frames_dropped".to_string(), dropped.into()));
        }
        response
    }

    /// `export` serializes a session for migration to another daemon:
    /// either its full portable state (`mode:"state"`, the snapshot wire
    /// codec hex-encoded) or, for cycle-model sessions whose model state
    /// has no portable form, a deterministic replay recipe
    /// (`mode:"replay"`: the spec plus the instruction count to re-execute
    /// on the destination).
    fn handle_export(&self, id: &Value, request: &Value) -> Value {
        with_session(self, id, request, |session| {
            let Engine::Single { spec, sim } = &mut session.engine else {
                return Err((
                    ErrorCode::Unsupported,
                    "fabric sessions do not support export".to_string(),
                ));
            };
            let snap = sim
                .snapshot()
                .map_err(|e| (ErrorCode::Unsupported, format!("export failed: {e}")))?;
            let mut fields = vec![
                ("name".to_string(), session.name.as_str().into()),
                ("spec".to_string(), spec_to_value(spec)),
                ("instructions".to_string(), snap.instructions().into()),
                ("runs_completed".to_string(), session.runs_completed.into()),
            ];
            if let Some(code) = session.exit_code {
                fields.push(("exit_code".to_string(), code.into()));
            }
            if snap.is_portable() {
                let bytes = snap
                    .to_portable_bytes()
                    .map_err(|e| (ErrorCode::Unsupported, format!("export failed: {e}")))?;
                let hex = proto::to_hex(&bytes);
                let saved = session
                    .snapshot
                    .as_ref()
                    .and_then(|s| s.to_portable_bytes().ok())
                    .map(|b| proto::to_hex(&b));
                let payload = hex.len() + saved.as_ref().map_or(0, String::len);
                if payload + 1024 >= self.config.max_frame {
                    return Err((
                        ErrorCode::Unsupported,
                        format!(
                            "exported state ({payload} bytes) exceeds the {}-byte frame cap; \
                             raise --max-frame on both daemons",
                            self.config.max_frame
                        ),
                    ));
                }
                fields.push(("mode".to_string(), "state".into()));
                fields.push(("snapwire".to_string(), Value::Str(hex)));
                if let Some(saved) = saved {
                    fields.push(("saved".to_string(), Value::Str(saved)));
                }
            } else {
                // Cycle-model internals are not portable; the destination
                // recreates the session and replays the same instruction
                // count (the simulator is deterministic, so the replayed
                // state matches the source exactly).
                fields.push(("mode".to_string(), "replay".into()));
            }
            Ok(fields)
        })
    }

    /// `import` is the receiving half of migration: rebuilds the session
    /// from an `export` document and inserts it into the table.
    fn handle_import(&self, id: &Value, request: &Value) -> Value {
        let bad = |msg: &str| proto::error_response(id.clone(), ErrorCode::BadRequest, msg, None);
        let Some(name) = request.get("name").and_then(Value::as_str) else {
            return bad("missing `name`");
        };
        if name.is_empty() || name.len() > 64 {
            return bad("`name` must be 1..=64 characters");
        }
        let Some(spec_value) = request.get("spec") else {
            return bad("missing `spec`");
        };
        let spec = match spec_from_value(spec_value) {
            Ok(spec) => spec,
            Err(msg) => return bad(&msg),
        };
        let mode = request.get("mode").and_then(Value::as_str).unwrap_or("state");
        let mut session = match Session::create(name, spec) {
            Ok(s) => s,
            Err(e) => return bad(&e),
        };
        match mode {
            "state" => {
                let Some(hex) = request.get("snapwire").and_then(Value::as_str) else {
                    return bad("state import needs `snapwire`");
                };
                let Some(bytes) = proto::from_hex(hex) else {
                    return bad("`snapwire` is not valid hex");
                };
                let snap = match Snapshot::from_portable_bytes(&bytes) {
                    Ok(snap) => snap,
                    Err(e) => return bad(&format!("bad `snapwire` payload: {e}")),
                };
                let sim = session.single_mut().expect("imported spec is single-core");
                if let Err(e) = sim.restore(&snap) {
                    return proto::error_response(
                        id.clone(),
                        ErrorCode::Unsupported,
                        &format!("import restore failed: {e}"),
                        None,
                    );
                }
                if let Some(saved_hex) = request.get("saved").and_then(Value::as_str) {
                    let Some(saved_bytes) = proto::from_hex(saved_hex) else {
                        return bad("`saved` is not valid hex");
                    };
                    match Snapshot::from_portable_bytes(&saved_bytes) {
                        Ok(saved) => session.snapshot = Some(saved),
                        Err(e) => return bad(&format!("bad `saved` payload: {e}")),
                    }
                }
            }
            "replay" => {
                let Some(n) = request.get("instructions").and_then(Value::as_u64) else {
                    return bad("replay import needs `instructions`");
                };
                // A replay occupies a run slot like any other execution.
                let admitted = self
                    .running
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |c| {
                        (c < self.config.max_running).then_some(c + 1)
                    })
                    .is_ok();
                if !admitted {
                    return proto::error_response(
                        id.clone(),
                        ErrorCode::Overloaded,
                        &format!("{} sessions already running", self.config.max_running),
                        Some(self.config.retry_after_ms),
                    );
                }
                let result = {
                    let sim = session.single_mut().expect("imported spec is single-core");
                    replay_to(sim, n, self.config.slice)
                };
                self.running.fetch_sub(1, Ordering::SeqCst);
                if let Err((code, msg)) = result {
                    return proto::error_response(id.clone(), code, &msg, None);
                }
            }
            other => return bad(&format!("unknown import mode `{other}`")),
        }
        session.exit_code = request.get("exit_code").and_then(Value::as_u64).map(|c| c as u32);
        session.runs_completed =
            request.get("runs_completed").and_then(Value::as_u64).unwrap_or(0);
        let instructions = session.instructions();
        match self.table.insert(session) {
            Ok(()) => proto::ok_response(
                id.clone(),
                vec![
                    ("name".to_string(), name.into()),
                    ("mode".to_string(), mode.into()),
                    ("instructions".to_string(), instructions.into()),
                ],
            ),
            Err(TableError::Full) => proto::error_response(
                id.clone(),
                ErrorCode::Overloaded,
                "session table is full of running sessions",
                Some(self.config.retry_after_ms),
            ),
            Err(e) => table_error(id, name, &e),
        }
    }
}

/// Re-executes exactly `n` instructions on a fresh simulator (the replay
/// half of `import`).
fn replay_to(sim: &mut Simulator, n: u64, slice: u64) -> Result<(), (ErrorCode, String)> {
    let slice = slice.max(1);
    let mut executed = 0u64;
    while executed < n {
        let before = sim.stats().instructions;
        let outcome = sim
            .run_for((n - executed).min(slice))
            .map_err(|e| (ErrorCode::SimFault, format!("replay fault: {e}")))?;
        let delta = sim.stats().instructions - before;
        executed += delta;
        if matches!(outcome, RunOutcome::Halted { .. }) && executed < n {
            return Err((
                ErrorCode::SimFault,
                format!("replay halted after {executed} of {n} instructions"),
            ));
        }
        if delta == 0 && executed < n {
            return Err((ErrorCode::SimFault, "replay made no progress".to_string()));
        }
    }
    Ok(())
}

fn model_name(model: CycleModelKind) -> &'static str {
    match model {
        CycleModelKind::Ilp => "ilp",
        CycleModelKind::Aie => "aie",
        CycleModelKind::Doe => "doe",
        _ => "unknown",
    }
}

/// Serializes a [`SessionSpec`] into the `spec` object of an `export`
/// document (the same keys `create` accepts).
fn spec_to_value(spec: &SessionSpec) -> Value {
    let mut fields = vec![
        ("workload".to_string(), spec.workload.name().into()),
        ("isa".to_string(), spec.isa.name().into()),
        ("decode_cache".to_string(), Value::Bool(spec.decode_cache)),
        ("prediction".to_string(), Value::Bool(spec.prediction)),
        ("superblocks".to_string(), Value::Bool(spec.superblocks)),
        ("ideal_memory".to_string(), Value::Bool(spec.ideal_memory)),
        (
            "tier".to_string(),
            match spec.tier {
                TierMode::Interp => "interp",
                _ => "ir",
            }
            .into(),
        ),
    ];
    if let Some(model) = spec.model {
        fields.push(("model".to_string(), model_name(model).into()));
    }
    if let Some(g) = spec.geometry {
        fields.push(("l1_lines".to_string(), g.l1_lines.into()));
        fields.push(("line_bytes".to_string(), g.line_bytes.into()));
        fields.push(("l2_ports".to_string(), g.l2_ports.into()));
        fields.push(("mem_delay".to_string(), g.mem_delay.into()));
    }
    Value::Obj(fields)
}

/// Parses the `spec` object of an `import` request (missing flags take the
/// `create` defaults, so older exports stay importable).
fn spec_from_value(value: &Value) -> Result<SessionSpec, String> {
    let Some(workload_name) = value.get("workload").and_then(Value::as_str) else {
        return Err("spec is missing `workload`".to_string());
    };
    let Some(workload) = Workload::ALL.into_iter().find(|w| w.name() == workload_name) else {
        return Err(format!("unknown workload `{workload_name}`"));
    };
    let Some(isa_name) = value.get("isa").and_then(Value::as_str) else {
        return Err("spec is missing `isa`".to_string());
    };
    let Some(isa) = IsaKind::ALL.into_iter().find(|k| k.name() == isa_name) else {
        return Err(format!("unknown isa `{isa_name}`"));
    };
    let mut spec = SessionSpec::new(workload, isa);
    match value.get("model").and_then(Value::as_str) {
        None => {}
        Some("ilp") => spec.model = Some(CycleModelKind::Ilp),
        Some("aie") => spec.model = Some(CycleModelKind::Aie),
        Some("doe") => spec.model = Some(CycleModelKind::Doe),
        Some(other) => return Err(format!("unknown model `{other}`")),
    }
    let flag = |key: &str, default: bool| value.get(key).and_then(Value::as_bool).unwrap_or(default);
    spec.decode_cache = flag("decode_cache", true);
    spec.prediction = flag("prediction", true);
    spec.superblocks = flag("superblocks", true);
    spec.ideal_memory = flag("ideal_memory", false);
    match value.get("tier").and_then(Value::as_str) {
        None | Some("ir") => spec.tier = TierMode::Ir,
        Some("interp") => spec.tier = TierMode::Interp,
        Some(other) => return Err(format!("unknown tier `{other}`")),
    }
    let geom = |key: &str| value.get(key).and_then(Value::as_u64);
    if ["l1_lines", "line_bytes", "l2_ports", "mem_delay"].iter().any(|k| value.get(k).is_some()) {
        let d = kahrisma_core::MemGeometry::default();
        let g = kahrisma_core::MemGeometry {
            l1_lines: geom("l1_lines").map_or(d.l1_lines, |v| v as u32),
            line_bytes: geom("line_bytes").map_or(d.line_bytes, |v| v as u32),
            l2_ports: geom("l2_ports").map_or(d.l2_ports, |v| v as u32),
            mem_delay: geom("mem_delay").unwrap_or(d.mem_delay),
        };
        g.validate()?;
        spec.geometry = Some(g);
    }
    Ok(spec)
}

fn table_error(id: &Value, name: &str, e: &TableError) -> Value {
    let (code, msg) = match e {
        TableError::NotFound => (ErrorCode::NotFound, format!("no session `{name}`")),
        TableError::Busy => (ErrorCode::Busy, format!("session `{name}` is running")),
        TableError::Full => (
            ErrorCode::Overloaded,
            "session table is full of running sessions".to_string(),
        ),
        TableError::Exists => (ErrorCode::BadRequest, format!("session `{name}` already exists")),
    };
    proto::error_response(id.clone(), code, &msg, None)
}

/// Checkout/checkin wrapper for verbs that need exclusive session access.
fn with_session(
    service: &SimService,
    id: &Value,
    request: &Value,
    f: impl FnOnce(&mut Session) -> Result<Vec<(String, Value)>, (ErrorCode, String)>,
) -> Value {
    let Some(name) = request.get("name").and_then(Value::as_str) else {
        return proto::error_response(id.clone(), ErrorCode::BadRequest, "missing `name`", None);
    };
    let mut session = match service.table.checkout(name) {
        Ok(s) => s,
        Err(e) => return table_error(id, name, &e),
    };
    let result = f(&mut session);
    service.table.checkin(session);
    match result {
        Ok(fields) => proto::ok_response(id.clone(), fields),
        Err((code, msg)) => proto::error_response(id.clone(), code, &msg, None),
    }
}

/// A parsed, not-yet-built `create` request.
enum PendingSession {
    Single(SessionSpec),
    Fabric(FabricSpec),
}

impl PendingSession {
    fn build(self, name: &str) -> Result<Box<Session>, String> {
        match self {
            PendingSession::Single(spec) => Session::create(name, spec),
            PendingSession::Fabric(spec) => Session::create_fabric(name, spec),
        }
    }
}

fn create_single(request: &Value) -> Result<PendingSession, String> {
    let spec = spec_from_value(request).map_err(|e| {
        // `create` carries the spec keys at the top level; reuse the spec
        // parser but keep the historical message shapes.
        e.replace("spec is missing", "missing")
    })?;
    Ok(PendingSession::Single(spec))
}

fn create_fabric(request: &Value) -> Result<PendingSession, String> {
    let Some(cores) = request.get("cores").and_then(Value::as_str) else {
        return Err("fabric create needs `cores` (comma-separated workload:isa[:model])".to_string());
    };
    let quantum = request
        .get("quantum")
        .and_then(Value::as_u64)
        .unwrap_or(kahrisma_fabric::DEFAULT_QUANTUM);
    if quantum == 0 {
        return Err("`quantum` must be at least 1".to_string());
    }
    let host_threads = request.get("host_threads").and_then(Value::as_u64).unwrap_or(1);
    if host_threads == 0 {
        return Err("`host_threads` must be at least 1".to_string());
    }
    Ok(PendingSession::Fabric(FabricSpec {
        cores: cores.to_string(),
        quantum,
        host_threads: host_threads as usize,
    }))
}

struct SlicedRun {
    outcome: &'static str,
    instructions: u64,
    halts: u64,
    exit_code: Option<u32>,
}

fn run_sliced(
    sim: &mut Simulator,
    budget: u64,
    slice: u64,
    looped: bool,
    deadline: Instant,
    draining: &AtomicBool,
) -> Result<SlicedRun, kahrisma_core::SimError> {
    let mut executed = 0u64;
    let mut halts = 0u64;
    let mut exit_code = None;
    let slice = slice.max(1);
    loop {
        let remaining = budget.saturating_sub(executed);
        if remaining == 0 {
            return Ok(SlicedRun { outcome: "budget", instructions: executed, halts, exit_code });
        }
        // Per-iteration delta accounting: `loop` mode resets the simulator
        // (zeroing its instruction counter), so the request-level total
        // must accumulate across resets.
        let before = sim.stats().instructions;
        let outcome = sim.run_for(remaining.min(slice))?;
        executed += sim.stats().instructions - before;
        match outcome {
            RunOutcome::Halted { exit_code: code } => {
                halts += 1;
                exit_code = Some(code);
                if !looped {
                    return Ok(SlicedRun {
                        outcome: "halted",
                        instructions: executed,
                        halts,
                        exit_code,
                    });
                }
                if executed >= budget {
                    return Ok(SlicedRun {
                        outcome: "budget",
                        instructions: executed,
                        halts,
                        exit_code,
                    });
                }
                sim.reset();
            }
            RunOutcome::BudgetExhausted => {}
        }
        if draining.load(Ordering::SeqCst) {
            return Ok(SlicedRun { outcome: "draining", instructions: executed, halts, exit_code });
        }
        if Instant::now() >= deadline {
            return Ok(SlicedRun { outcome: "deadline", instructions: executed, halts, exit_code });
        }
    }
}

/// The fabric counterpart of [`run_sliced`]: advances the whole fabric in
/// `slice`-instruction legs (per core) with deadline and drain checks at
/// each leg boundary. As in [`Fabric::run_for`], the request `budget`
/// bounds each *core's* instructions, not the aggregate.
fn run_fabric_sliced(
    fabric: &mut Fabric,
    budget: u64,
    slice: u64,
    deadline: Instant,
    draining: &AtomicBool,
) -> Result<SlicedRun, String> {
    let before = fabric.stats().aggregate.instructions;
    let slice = slice.max(1);
    let mut granted = 0u64;
    let mut halted = false;
    let outcome = loop {
        let remaining = budget.saturating_sub(granted);
        if remaining == 0 {
            break "budget";
        }
        let step = remaining.min(slice);
        match fabric.run_for(step).map_err(|e| format!("simulation fault: {e}"))? {
            FabricOutcome::AllHalted => {
                halted = true;
                break "halted";
            }
            FabricOutcome::BudgetExhausted => {}
        }
        granted += step;
        if draining.load(Ordering::SeqCst) {
            break "draining";
        }
        if Instant::now() >= deadline {
            break "deadline";
        }
    };
    Ok(SlicedRun {
        outcome,
        instructions: fabric.stats().aggregate.instructions - before,
        halts: u64::from(halted),
        exit_code: None,
    })
}

struct StreamCounts {
    emitted: u64,
    dropped: u64,
}

/// An observer that writes capped event frames straight into the
/// connection's outbound buffer (the event loop drains it concurrently),
/// counting overflow drops. The tallies live behind an `Arc` because the
/// observer box itself is consumed by the simulator.
struct StreamObserver {
    out: Arc<ConnOut>,
    counts: Arc<Mutex<StreamCounts>>,
    session: String,
    limit: u64,
}

impl Observer for StreamObserver {
    fn event(&mut self, event: SimEvent) {
        let mut counts = self.counts.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if counts.emitted >= self.limit {
            counts.dropped += 1;
            return;
        }
        counts.emitted += 1;
        // Frame emission cannot fail here: the buffer is in-memory and the
        // loop flushes it best-effort. A dead client never aborts the
        // simulation mid-run (the session survives; the connection closes
        // when its flush fails).
        self.out
            .push_line(&proto::stream_frame(&self.session, &frame::to_json_line(&event)));
    }
}

/// Builds the `stats` response: the unified [`StatsReport`] document
/// (`schema_version` first, canonical counters and ratios in declaration
/// order) flattened into top-level response fields, plus session
/// bookkeeping and, for a fabric, a per-core breakdown.
fn stats_response(session: &Session) -> Vec<(String, Value)> {
    let mut report = StatsReport::new();
    let mut extra: Vec<(String, Value)> = Vec::new();
    match &session.engine {
        Engine::Single { sim, .. } => {
            report.push_str("kind", "single");
            report.counters(sim.stats());
            report.ratios(sim.stats());
            if let Some(cycles) = sim.cycle_stats() {
                report.cycles(&cycles);
            }
        }
        Engine::Fabric { fabric, .. } => {
            let stats = fabric.stats();
            stats.report_into(&mut report);
            let rows: Vec<Value> = stats
                .cores
                .iter()
                .map(|core| {
                    let mut fields = vec![
                        ("name".to_string(), core.name.as_str().into()),
                        ("instructions".to_string(), core.stats.instructions.into()),
                        ("operations".to_string(), core.stats.operations.into()),
                        ("halted".to_string(), core.halted.into()),
                        ("restarts".to_string(), core.restarts.into()),
                    ];
                    if let Some(code) = core.exit_code {
                        fields.push(("exit_code".to_string(), code.into()));
                    }
                    if let Some(cycles) = core.total_cycles {
                        fields.push(("cycles".to_string(), cycles.into()));
                    }
                    Value::Obj(fields)
                })
                .collect();
            extra.push(("core_stats".to_string(), Value::Arr(rows)));
        }
    }
    if let Some(code) = session.exit_code {
        report.push_u64("exit_code", u64::from(code));
    }
    report.push_bool("halted", session.halted());
    report.push_u64("runs_completed", session.runs_completed);
    let mut fields = report_fields(&report);
    fields.extend(extra);
    fields
}

/// Flattens a [`StatsReport`] into wire response fields — the daemon's
/// side of the one-serializer contract for stats documents.
fn report_fields(report: &StatsReport) -> Vec<(String, Value)> {
    report
        .fields()
        .iter()
        .map(|(name, value)| {
            let v = match value {
                StatValue::U64(v) => Value::Num(*v as f64),
                StatValue::F64(v) => Value::Num(if v.is_finite() { *v } else { 0.0 }),
                StatValue::Bool(v) => Value::Bool(*v),
                StatValue::Str(v) => Value::Str(v.clone()),
            };
            (name.clone(), v)
        })
        .collect()
}

/// Folds a single-core session's stats into a deterministic
/// [`MetricsRegistry`] (fabric sessions use [`Fabric::metrics`] instead).
///
/// Deliberately *not* implemented by attaching a `MetricsCollector`
/// observer: an attached observer bypasses the superblock fast path, which
/// would tax every served run. Folding from the counters the fast path
/// already maintains is free and exactly as deterministic.
fn registry_from_stats(session: &Session) -> MetricsRegistry {
    let Engine::Single { sim, .. } = &session.engine else {
        return MetricsRegistry::new();
    };
    let stats = sim.stats();
    let mut r = MetricsRegistry::new();
    r.set_counter("sim.instructions", stats.instructions);
    r.set_counter("sim.operations", stats.operations);
    r.set_counter("sim.nops", stats.nops);
    r.set_counter("decode.detect_decodes", stats.detect_decodes);
    r.set_counter("decode.cache_lookups", stats.cache_lookups);
    r.set_counter("decode.cache_hits", stats.cache_hits);
    r.set_counter("decode.prediction_hits", stats.prediction_hits);
    r.set_counter("superblock.built", stats.superblocks_built);
    r.set_counter("superblock.batches", stats.superblock_batches);
    r.set_counter("mem.reads", stats.mem_reads);
    r.set_counter("mem.writes", stats.mem_writes);
    r.set_counter("isa.switches", stats.isa_switches);
    r.set_counter("libc.simops", stats.simops);
    r.set_counter("branch.taken", stats.taken_branches);
    r.set_counter("session.runs_completed", session.runs_completed);
    r.set_gauge("decode.avoided_ratio", stats.decode_avoided_ratio());
    r.set_gauge("decode.cache_hit_ratio", stats.cache_hit_ratio());
    r.set_gauge("session.busy_secs", session.busy.as_secs_f64());
    if let Some(cycles) = sim.cycle_stats() {
        r.set_counter("cycles.total", cycles.cycles);
        r.set_gauge("cycles.ops_per_cycle", cycles.ops_per_cycle());
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = ServerConfig::default();
        assert!(c.max_sessions >= 1);
        assert!(c.max_running >= 1);
        assert!(c.slice >= 1);
        assert!(c.max_frame >= proto::MAX_FRAME_BYTES, "cap raised beyond the legacy 64 KiB");
        assert!(c.resolved_io_workers() > c.max_running, "slack for non-run verbs");
    }

    #[test]
    fn sliced_run_reports_budget_and_halt() {
        let exe = Workload::Dct.build(IsaKind::Risc).unwrap();
        let mut sim = Simulator::new(&exe, kahrisma_core::SimConfig::default()).unwrap();
        let draining = AtomicBool::new(false);
        let deadline = Instant::now() + Duration::from_secs(60);
        // A tiny budget with a smaller slice: several slices, no halt.
        let run = run_sliced(&mut sim, 1000, 100, false, deadline, &draining).unwrap();
        assert_eq!(run.outcome, "budget");
        assert_eq!(run.instructions, 1000);
        assert_eq!(run.halts, 0);
        // Run to completion.
        let run = run_sliced(&mut sim, u64::MAX, 4_000_000, false, deadline, &draining).unwrap();
        assert_eq!(run.outcome, "halted");
        assert_eq!(run.exit_code, Some(Workload::Dct.expected_exit()));
        assert_eq!(run.halts, 1);
    }

    #[test]
    fn sliced_run_loops_with_warm_cache() {
        let exe = Workload::Dct.build(IsaKind::Risc).unwrap();
        let mut sim = Simulator::new(&exe, kahrisma_core::SimConfig::default()).unwrap();
        let draining = AtomicBool::new(false);
        let deadline = Instant::now() + Duration::from_secs(60);
        let once = run_sliced(&mut sim, u64::MAX, 4_000_000, false, deadline, &draining).unwrap();
        let per_run = once.instructions;
        sim.reset();
        let looped =
            run_sliced(&mut sim, per_run * 3, 4_000_000, true, deadline, &draining).unwrap();
        assert_eq!(looped.outcome, "budget");
        assert_eq!(looped.halts, 3);
        assert_eq!(looped.exit_code, Some(Workload::Dct.expected_exit()));
        // The warm decode cache means the looped runs decode nothing new.
        assert_eq!(sim.stats().detect_decodes, 0);
    }

    #[test]
    fn draining_interrupts_a_sliced_run() {
        let exe = Workload::Dct.build(IsaKind::Risc).unwrap();
        let mut sim = Simulator::new(&exe, kahrisma_core::SimConfig::default()).unwrap();
        let draining = AtomicBool::new(true);
        let deadline = Instant::now() + Duration::from_secs(60);
        let run = run_sliced(&mut sim, u64::MAX, 100, false, deadline, &draining).unwrap();
        assert_eq!(run.outcome, "draining");
        assert_eq!(run.instructions, 100); // exactly one slice ran
    }

    #[test]
    fn registry_fold_is_deterministic() {
        let session = Session::create("t", SessionSpec::new(Workload::Dct, IsaKind::Risc)).unwrap();
        let a = registry_from_stats(&session).to_json();
        let b = registry_from_stats(&session).to_json();
        assert_eq!(a, b);
        kahrisma_observe::json_lint::validate(&a).expect("valid JSON");
    }

    #[test]
    fn spec_round_trips_through_its_wire_form() {
        let mut spec = SessionSpec::new(Workload::Fft, IsaKind::Vliw4);
        spec.model = Some(CycleModelKind::Doe);
        spec.prediction = false;
        spec.ideal_memory = true;
        let parsed = spec_from_value(&spec_to_value(&spec)).unwrap();
        assert_eq!(parsed.workload, spec.workload);
        assert_eq!(parsed.isa, spec.isa);
        assert_eq!(parsed.model, spec.model);
        assert!(!parsed.prediction);
        assert!(parsed.superblocks);
        assert!(parsed.ideal_memory);
        assert_eq!(parsed.tier, TierMode::Ir);
        assert_eq!(parsed.geometry, None);
        assert!(spec_from_value(&Value::Obj(Vec::new())).is_err(), "workload required");
    }

    #[test]
    fn spec_wire_form_carries_tier_and_geometry() {
        let mut spec = SessionSpec::new(Workload::Dct, IsaKind::Risc);
        spec.tier = TierMode::Interp;
        spec.geometry = Some(kahrisma_core::MemGeometry {
            l1_lines: 16,
            line_bytes: 16,
            l2_ports: 2,
            mem_delay: 30,
        });
        let parsed = spec_from_value(&spec_to_value(&spec)).unwrap();
        assert_eq!(parsed.tier, TierMode::Interp);
        assert_eq!(parsed.geometry, spec.geometry);

        // Partial geometry keys fill from the defaults; bad ones error.
        let v = Value::Obj(vec![
            ("workload".to_string(), "dct".into()),
            ("isa".to_string(), "risc".into()),
            ("l1_lines".to_string(), 16u32.into()),
        ]);
        let parsed = spec_from_value(&v).unwrap();
        let g = parsed.geometry.unwrap();
        assert_eq!((g.l1_lines, g.line_bytes, g.l2_ports, g.mem_delay), (16, 32, 1, 18));
        let v = Value::Obj(vec![
            ("workload".to_string(), "dct".into()),
            ("isa".to_string(), "risc".into()),
            ("l1_lines".to_string(), 48u32.into()),
        ]);
        assert!(spec_from_value(&v).unwrap_err().contains("power of two"));
        let v = Value::Obj(vec![
            ("workload".to_string(), "dct".into()),
            ("isa".to_string(), "risc".into()),
            ("tier".to_string(), "jit".into()),
        ]);
        assert_eq!(spec_from_value(&v).unwrap_err(), "unknown tier `jit`");
    }

    #[test]
    fn replay_reaches_the_exact_instruction_count() {
        let exe = Workload::Dct.build(IsaKind::Risc).unwrap();
        let mut source = Simulator::new(&exe, kahrisma_core::SimConfig::default()).unwrap();
        let _ = source.run_for(5_000).unwrap();
        let n = source.stats().instructions;
        // Same slicing as the source: bit-exact portable state.
        let mut dest = Simulator::new(&exe, kahrisma_core::SimConfig::default()).unwrap();
        replay_to(&mut dest, n, n).unwrap();
        assert_eq!(
            dest.snapshot().unwrap().to_portable_bytes().unwrap(),
            source.snapshot().unwrap().to_portable_bytes().unwrap(),
            "replay reproduces the exact portable state"
        );
        // Misaligned slicing still reaches the exact instruction count
        // (batching counters may differ; architectural progress may not).
        let mut sliced = Simulator::new(&exe, kahrisma_core::SimConfig::default()).unwrap();
        replay_to(&mut sliced, n, 1_000).unwrap();
        assert_eq!(sliced.stats().instructions, n);
        assert_eq!(sliced.stats().mem_writes, source.stats().mem_writes);
        // Replaying past a halt is a divergence, not a silent truncation.
        let run = run_sliced(
            &mut source,
            u64::MAX,
            4_000_000,
            false,
            Instant::now() + Duration::from_secs(60),
            &AtomicBool::new(false),
        )
        .unwrap();
        assert_eq!(run.outcome, "halted");
        let total = source.stats().instructions;
        let mut fresh = Simulator::new(&exe, kahrisma_core::SimConfig::default()).unwrap();
        assert!(replay_to(&mut fresh, total + 1, 4_000_000).is_err());
    }
}
