//! Named simulation sessions and the bounded session table.
//!
//! A session owns an [`Engine`] — one [`Simulator`] with a warm decode
//! cache, or an N-core [`Fabric`] — the whole point of the daemon:
//! repeated requests against the same session skip ELF load and
//! decode-cache warmup, which is what makes served throughput competitive
//! with a long-lived local `ksim` process.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use kahrisma_core::{
    CycleModelKind, MemGeometry, MemoryHierarchy, SimConfig, Simulator, Snapshot, TierMode,
};
use kahrisma_fabric::{CoreSpec, Fabric, FabricConfig};
use kahrisma_isa::IsaKind;
use kahrisma_workloads::Workload;

/// What a single-core `create` request specifies (workload × ISA × cycle
/// model plus the decode-cache ladder toggles).
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// The workload to build and simulate.
    pub workload: Workload,
    /// The ISA it is compiled for.
    pub isa: IsaKind,
    /// Optional cycle-approximation model.
    pub model: Option<CycleModelKind>,
    /// Decode-cache toggle (default on).
    pub decode_cache: bool,
    /// Instruction-prediction toggle (default on).
    pub prediction: bool,
    /// Superblock-batching toggle (default on).
    pub superblocks: bool,
    /// Replace the paper memory hierarchy with ideal memory.
    pub ideal_memory: bool,
    /// Execution tier (default: the compiled IR tier).
    pub tier: TierMode,
    /// Explicit cache geometry for the cycle-model memory hierarchy;
    /// `None` keeps the paper default. Takes precedence over
    /// `ideal_memory` when both are given.
    pub geometry: Option<MemGeometry>,
}

impl SessionSpec {
    /// The default spec for a workload/ISA pair: full decode-cache ladder,
    /// no cycle model, paper memory.
    #[must_use]
    pub fn new(workload: Workload, isa: IsaKind) -> Self {
        SessionSpec {
            workload,
            isa,
            model: None,
            decode_cache: true,
            prediction: true,
            superblocks: true,
            ideal_memory: false,
            tier: TierMode::Ir,
            geometry: None,
        }
    }

    /// The simulator configuration the spec prescribes.
    #[must_use]
    pub fn sim_config(&self) -> SimConfig {
        let mut config = SimConfig {
            cycle_model: self.model,
            decode_cache: self.decode_cache,
            prediction: self.prediction && self.decode_cache,
            superblocks: self.superblocks && self.decode_cache,
            tier: self.tier,
            ..SimConfig::default()
        };
        if let Some(geometry) = self.geometry {
            config.memory = geometry.hierarchy();
        } else if self.ideal_memory {
            config.memory = MemoryHierarchy::new().with_memory(0);
        }
        config
    }
}

/// What a fabric `create` request specifies: the core list and scheduling
/// knobs.
#[derive(Debug, Clone)]
pub struct FabricSpec {
    /// Comma-separated `workload:isa[:model]` core specs, as received.
    pub cores: String,
    /// Scheduling quantum: instructions per core per barrier interval.
    pub quantum: u64,
    /// Host worker threads (a performance knob; never affects results).
    pub host_threads: usize,
}

/// The execution engine behind a session.
pub enum Engine {
    /// One simulator core (the classic session kind).
    Single {
        /// The spec the session was created from.
        spec: SessionSpec,
        /// The resident simulator (warm decode cache). Boxed so the enum
        /// stays small regardless of the simulator's inline footprint.
        sim: Box<Simulator>,
    },
    /// An N-core fabric advanced at deterministic quantum barriers.
    Fabric {
        /// The spec the session was created from.
        spec: FabricSpec,
        /// The resident fabric (each core a warm simulator).
        fabric: Box<Fabric>,
    },
}

/// One live session: a named engine plus bookkeeping.
pub struct Session {
    /// The session name (table key).
    pub name: String,
    /// The execution engine (single simulator or multi-core fabric).
    pub engine: Engine,
    /// The most recent snapshot, if any (`snapshot` verb; single-core
    /// sessions only).
    pub snapshot: Option<Snapshot>,
    /// Exit code of the last halted run, if the program has halted.
    pub exit_code: Option<u32>,
    /// Completed (halted) runs, counting `loop` restarts.
    pub runs_completed: u64,
    /// Total wall time spent executing requests.
    pub busy: Duration,
    /// Creation time.
    pub created: Instant,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("name", &self.name)
            .field("kind", &self.kind())
            .field("workload", &self.workload_desc())
            .field("isa", &self.isa_desc())
            .field("instructions", &self.instructions())
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Builds the workload and loads a fresh single-core session.
    ///
    /// # Errors
    ///
    /// Returns a description of the compile/link/load failure.
    pub fn create(name: &str, spec: SessionSpec) -> Result<Box<Session>, String> {
        let exe = spec
            .workload
            .build(spec.isa)
            .map_err(|e| format!("cannot build workload {}: {e}", spec.workload.name()))?;
        let sim = Simulator::new(&exe, spec.sim_config())
            .map(Box::new)
            .map_err(|e| format!("cannot load workload {}: {e}", spec.workload.name()))?;
        Ok(Self::with_engine(name, Engine::Single { spec, sim }))
    }

    /// Builds every core of `spec.cores` and loads a fresh fabric session.
    ///
    /// # Errors
    ///
    /// Returns a description of the first core's spec/compile/load failure.
    pub fn create_fabric(name: &str, spec: FabricSpec) -> Result<Box<Session>, String> {
        let cores = spec
            .cores
            .split(',')
            .map(|s| CoreSpec::parse(s.trim()))
            .collect::<Result<Vec<_>, _>>()?;
        let config = FabricConfig {
            quantum: spec.quantum,
            host_threads: spec.host_threads,
            ..FabricConfig::default()
        };
        let fabric = Box::new(Fabric::new(cores, config)?);
        Ok(Self::with_engine(name, Engine::Fabric { spec, fabric }))
    }

    fn with_engine(name: &str, engine: Engine) -> Box<Session> {
        Box::new(Session {
            name: name.to_string(),
            engine,
            snapshot: None,
            exit_code: None,
            runs_completed: 0,
            busy: Duration::ZERO,
            created: Instant::now(),
        })
    }

    /// `"single"` or `"fabric"` — the wire tag for the session kind.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self.engine {
            Engine::Single { .. } => "single",
            Engine::Fabric { .. } => "fabric",
        }
    }

    /// What the session runs: the workload name, or the fabric's core list.
    #[must_use]
    pub fn workload_desc(&self) -> String {
        match &self.engine {
            Engine::Single { spec, .. } => spec.workload.name().to_string(),
            Engine::Fabric { spec, .. } => spec.cores.clone(),
        }
    }

    /// The ISA name, or `"mixed"` for a fabric (each core carries its own).
    #[must_use]
    pub fn isa_desc(&self) -> String {
        match &self.engine {
            Engine::Single { spec, .. } => spec.isa.name().to_string(),
            Engine::Fabric { .. } => "mixed".to_string(),
        }
    }

    /// Instructions executed so far (aggregate over cores for a fabric).
    #[must_use]
    pub fn instructions(&self) -> u64 {
        match &self.engine {
            Engine::Single { sim, .. } => sim.stats().instructions,
            Engine::Fabric { fabric, .. } => fabric.stats().aggregate.instructions,
        }
    }

    /// `true` when the program (every core, for a fabric) has halted.
    #[must_use]
    pub fn halted(&self) -> bool {
        match &self.engine {
            Engine::Single { sim, .. } => sim.halted(),
            Engine::Fabric { fabric, .. } => {
                fabric.stats().cores.iter().all(|c| c.halted)
            }
        }
    }

    /// The single-core simulator, for verbs that only make sense there
    /// (snapshot, restore, stream).
    pub fn single_mut(&mut self) -> Option<&mut Simulator> {
        match &mut self.engine {
            Engine::Single { sim, .. } => Some(sim.as_mut()),
            Engine::Fabric { .. } => None,
        }
    }
}

/// Why a table operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// No session with that name (never existed, deleted, or evicted).
    NotFound,
    /// The session exists but is executing another request right now.
    Busy,
    /// The table is full and every resident session is running (nothing
    /// idle to evict).
    Full,
    /// A session with that name already exists.
    Exists,
}

enum Slot {
    /// Parked in the table, available for checkout.
    Idle {
        session: Box<Session>,
        last_used: Instant,
    },
    /// Checked out by a request handler.
    Running { since: Instant },
}

/// A summary row for the `list` verb.
#[derive(Debug, Clone)]
pub struct SessionInfo {
    /// Session name.
    pub name: String,
    /// `"idle"` or `"running"`.
    pub state: &'static str,
    /// `"single"` or `"fabric"` (empty while running).
    pub kind: String,
    /// Workload name, or the fabric core list (empty while running — the
    /// spec travels with the checked-out session).
    pub workload: String,
    /// ISA name, or `"mixed"` for a fabric (empty while running).
    pub isa: String,
    /// Instructions executed so far (0 while running).
    pub instructions: u64,
    /// Idle seconds (0 while running).
    pub idle_secs: f64,
    /// Seconds the current request has been executing (0 while idle).
    pub running_secs: f64,
}

/// The bounded, LRU-evicting session table.
///
/// Capacity pressure only ever evicts **idle** sessions (oldest
/// `last_used` first); running sessions are pinned by their request. The
/// idle timeout is applied lazily: [`SessionTable::sweep`] runs at every
/// request, so an unused session disappears the first time anyone talks to
/// the server after the timeout elapses.
pub struct SessionTable {
    slots: Mutex<HashMap<String, Slot>>,
    max_sessions: usize,
    idle_timeout: Duration,
}

impl SessionTable {
    /// Creates a table holding at most `max_sessions` (minimum 1) sessions,
    /// evicting sessions idle longer than `idle_timeout`.
    #[must_use]
    pub fn new(max_sessions: usize, idle_timeout: Duration) -> Self {
        SessionTable {
            slots: Mutex::new(HashMap::new()),
            max_sessions: max_sessions.max(1),
            idle_timeout,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, Slot>> {
        self.slots.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Evicts sessions idle past the timeout; returns how many.
    pub fn sweep(&self) -> usize {
        let now = Instant::now();
        let mut slots = self.lock();
        let before = slots.len();
        slots.retain(|_, slot| match slot {
            Slot::Idle { last_used, .. } => now.duration_since(*last_used) < self.idle_timeout,
            Slot::Running { .. } => true,
        });
        before - slots.len()
    }

    /// Inserts a new idle session, evicting the least-recently-used idle
    /// session if the table is at capacity.
    ///
    /// # Errors
    ///
    /// [`TableError::Exists`] if the name is taken, [`TableError::Full`] if
    /// the table is at capacity with nothing idle to evict.
    pub fn insert(&self, session: Box<Session>) -> Result<(), TableError> {
        let mut slots = self.lock();
        if slots.contains_key(&session.name) {
            return Err(TableError::Exists);
        }
        if slots.len() >= self.max_sessions {
            let victim = slots
                .iter()
                .filter_map(|(name, slot)| match slot {
                    Slot::Idle { last_used, .. } => Some((name.clone(), *last_used)),
                    Slot::Running { .. } => None,
                })
                .min_by_key(|(_, t)| *t)
                .map(|(name, _)| name);
            match victim {
                Some(name) => {
                    slots.remove(&name);
                }
                None => return Err(TableError::Full),
            }
        }
        slots.insert(
            session.name.clone(),
            Slot::Idle { session, last_used: Instant::now() },
        );
        Ok(())
    }

    /// Takes the named session out of the table for exclusive use, leaving
    /// a `Running` marker. Pair with [`SessionTable::checkin`] (or
    /// [`SessionTable::discard`] if the session died).
    ///
    /// # Errors
    ///
    /// [`TableError::NotFound`] / [`TableError::Busy`].
    pub fn checkout(&self, name: &str) -> Result<Box<Session>, TableError> {
        let mut slots = self.lock();
        match slots.get_mut(name) {
            None => Err(TableError::NotFound),
            Some(Slot::Running { .. }) => Err(TableError::Busy),
            Some(slot @ Slot::Idle { .. }) => {
                let taken = std::mem::replace(slot, Slot::Running { since: Instant::now() });
                match taken {
                    Slot::Idle { session, .. } => Ok(session),
                    Slot::Running { .. } => unreachable!(),
                }
            }
        }
    }

    /// Returns a checked-out session to the table, marking it idle.
    pub fn checkin(&self, session: Box<Session>) {
        let mut slots = self.lock();
        slots.insert(
            session.name.clone(),
            Slot::Idle { session, last_used: Instant::now() },
        );
    }

    /// Drops the `Running` marker for a session that will not be returned
    /// (run failed, session deleted mid-flight).
    pub fn discard(&self, name: &str) {
        let mut slots = self.lock();
        if matches!(slots.get(name), Some(Slot::Running { .. })) {
            slots.remove(name);
        }
    }

    /// Removes the named idle session.
    ///
    /// # Errors
    ///
    /// [`TableError::NotFound`] / [`TableError::Busy`].
    pub fn remove(&self, name: &str) -> Result<(), TableError> {
        let mut slots = self.lock();
        match slots.get(name) {
            None => Err(TableError::NotFound),
            Some(Slot::Running { .. }) => Err(TableError::Busy),
            Some(Slot::Idle { .. }) => {
                slots.remove(name);
                Ok(())
            }
        }
    }

    /// Summary of every resident session, sorted by name.
    #[must_use]
    pub fn list(&self) -> Vec<SessionInfo> {
        let now = Instant::now();
        let slots = self.lock();
        let mut rows: Vec<SessionInfo> = slots
            .iter()
            .map(|(name, slot)| match slot {
                Slot::Idle { session, last_used } => SessionInfo {
                    name: name.clone(),
                    state: "idle",
                    kind: session.kind().to_string(),
                    workload: session.workload_desc(),
                    isa: session.isa_desc(),
                    instructions: session.instructions(),
                    idle_secs: now.duration_since(*last_used).as_secs_f64(),
                    running_secs: 0.0,
                },
                Slot::Running { since } => SessionInfo {
                    name: name.clone(),
                    state: "running",
                    kind: String::new(),
                    workload: String::new(),
                    isa: String::new(),
                    instructions: 0,
                    idle_secs: 0.0,
                    running_secs: now.duration_since(*since).as_secs_f64(),
                },
            })
            .collect();
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        rows
    }

    /// Number of resident sessions (idle + running).
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when no session is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// `true` while any session is checked out.
    #[must_use]
    pub fn any_running(&self) -> bool {
        self.lock().values().any(|s| matches!(s, Slot::Running { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(name: &str) -> Box<Session> {
        Session::create(name, SessionSpec::new(Workload::Dct, IsaKind::Risc)).unwrap()
    }

    #[test]
    fn checkout_checkin_cycle() {
        let table = SessionTable::new(4, Duration::from_secs(60));
        table.insert(session("a")).unwrap();
        assert_eq!(table.checkout("missing").unwrap_err(), TableError::NotFound);
        let s = table.checkout("a").unwrap();
        assert_eq!(table.checkout("a").unwrap_err(), TableError::Busy);
        assert!(table.any_running());
        table.checkin(s);
        assert!(!table.any_running());
        assert!(table.checkout("a").is_ok());
    }

    #[test]
    fn insert_rejects_duplicates_and_evicts_lru() {
        let table = SessionTable::new(2, Duration::from_secs(60));
        table.insert(session("a")).unwrap();
        assert_eq!(table.insert(session("a")).unwrap_err(), TableError::Exists);
        std::thread::sleep(Duration::from_millis(5));
        table.insert(session("b")).unwrap();
        // Full: inserting "c" evicts the LRU idle session, "a".
        table.insert(session("c")).unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(table.checkout("a").unwrap_err(), TableError::NotFound);
        assert!(table.checkout("b").is_ok());
    }

    #[test]
    fn full_table_of_running_sessions_rejects_inserts() {
        let table = SessionTable::new(1, Duration::from_secs(60));
        table.insert(session("a")).unwrap();
        let held = table.checkout("a").unwrap();
        assert_eq!(table.insert(session("b")).unwrap_err(), TableError::Full);
        table.checkin(held);
        table.insert(session("b")).unwrap();
    }

    #[test]
    fn sweep_evicts_only_idle_past_timeout() {
        let table = SessionTable::new(4, Duration::from_millis(20));
        table.insert(session("a")).unwrap();
        table.insert(session("b")).unwrap();
        let held = table.checkout("b").unwrap();
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(table.sweep(), 1); // "a" evicted; "b" pinned by checkout
        assert_eq!(table.checkout("a").unwrap_err(), TableError::NotFound);
        table.checkin(held);
        assert_eq!(table.sweep(), 0); // fresh checkin resets idleness
    }

    #[test]
    fn list_reports_states_sorted() {
        let table = SessionTable::new(4, Duration::from_secs(60));
        table.insert(session("b")).unwrap();
        table.insert(session("a")).unwrap();
        let held = table.checkout("b").unwrap();
        let rows = table.list();
        assert_eq!(rows.len(), 2);
        assert_eq!((rows[0].name.as_str(), rows[0].state), ("a", "idle"));
        assert_eq!((rows[1].name.as_str(), rows[1].state), ("b", "running"));
        assert_eq!(rows[0].workload, "dct");
        assert_eq!(rows[0].kind, "single");
        table.checkin(held);
    }

    #[test]
    fn fabric_sessions_create_and_describe_themselves() {
        let spec = FabricSpec {
            cores: "dct:risc, dct:vliw4".to_string(),
            quantum: 10_000,
            host_threads: 2,
        };
        let session = Session::create_fabric("fab", spec).unwrap();
        assert_eq!(session.kind(), "fabric");
        assert_eq!(session.isa_desc(), "mixed");
        assert!(session.workload_desc().contains("dct:vliw4"));
        assert_eq!(session.instructions(), 0);
        assert!(!session.halted());

        let bad = Session::create_fabric(
            "bad",
            FabricSpec { cores: "dct:nope".to_string(), quantum: 1, host_threads: 1 },
        );
        assert!(bad.is_err());
    }
}
