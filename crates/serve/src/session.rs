//! Named simulation sessions and the bounded session table.
//!
//! A session owns a [`Simulator`] with a warm decode cache — the whole
//! point of the daemon: repeated requests against the same session skip
//! ELF load and decode-cache warmup, which is what makes served throughput
//! competitive with a long-lived local `ksim` process.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use kahrisma_core::{
    CycleModelKind, MemoryHierarchy, SimConfig, Simulator, Snapshot,
};
use kahrisma_isa::IsaKind;
use kahrisma_workloads::Workload;

/// What a `create` request specifies (workload × ISA × cycle model plus
/// the decode-cache ladder toggles).
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// The workload to build and simulate.
    pub workload: Workload,
    /// The ISA it is compiled for.
    pub isa: IsaKind,
    /// Optional cycle-approximation model.
    pub model: Option<CycleModelKind>,
    /// Decode-cache toggle (default on).
    pub decode_cache: bool,
    /// Instruction-prediction toggle (default on).
    pub prediction: bool,
    /// Superblock-batching toggle (default on).
    pub superblocks: bool,
    /// Replace the paper memory hierarchy with ideal memory.
    pub ideal_memory: bool,
}

impl SessionSpec {
    /// The default spec for a workload/ISA pair: full decode-cache ladder,
    /// no cycle model, paper memory.
    #[must_use]
    pub fn new(workload: Workload, isa: IsaKind) -> Self {
        SessionSpec {
            workload,
            isa,
            model: None,
            decode_cache: true,
            prediction: true,
            superblocks: true,
            ideal_memory: false,
        }
    }

    /// The simulator configuration the spec prescribes.
    #[must_use]
    pub fn sim_config(&self) -> SimConfig {
        let mut config = SimConfig {
            cycle_model: self.model,
            decode_cache: self.decode_cache,
            prediction: self.prediction && self.decode_cache,
            superblocks: self.superblocks && self.decode_cache,
            ..SimConfig::default()
        };
        if self.ideal_memory {
            config.memory = MemoryHierarchy::new().with_memory(0);
        }
        config
    }
}

/// One live session: a named simulator plus bookkeeping.
pub struct Session {
    /// The session name (table key).
    pub name: String,
    /// The spec it was created from.
    pub spec: SessionSpec,
    /// The resident simulator (warm decode cache).
    pub sim: Simulator,
    /// The most recent snapshot, if any (`snapshot` verb).
    pub snapshot: Option<Snapshot>,
    /// Exit code of the last halted run, if the program has halted.
    pub exit_code: Option<u32>,
    /// Completed (halted) runs, counting `loop` restarts.
    pub runs_completed: u64,
    /// Total wall time spent executing requests.
    pub busy: Duration,
    /// Creation time.
    pub created: Instant,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("name", &self.name)
            .field("workload", &self.spec.workload.name())
            .field("isa", &self.spec.isa.name())
            .field("instructions", &self.sim.stats().instructions)
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Builds the workload and loads a fresh simulator.
    ///
    /// # Errors
    ///
    /// Returns a description of the compile/link/load failure.
    pub fn create(name: &str, spec: SessionSpec) -> Result<Box<Session>, String> {
        let exe = spec
            .workload
            .build(spec.isa)
            .map_err(|e| format!("cannot build workload {}: {e}", spec.workload.name()))?;
        let sim = Simulator::new(&exe, spec.sim_config())
            .map_err(|e| format!("cannot load workload {}: {e}", spec.workload.name()))?;
        Ok(Box::new(Session {
            name: name.to_string(),
            spec,
            sim,
            snapshot: None,
            exit_code: None,
            runs_completed: 0,
            busy: Duration::ZERO,
            created: Instant::now(),
        }))
    }
}

/// Why a table operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// No session with that name (never existed, deleted, or evicted).
    NotFound,
    /// The session exists but is executing another request right now.
    Busy,
    /// The table is full and every resident session is running (nothing
    /// idle to evict).
    Full,
    /// A session with that name already exists.
    Exists,
}

enum Slot {
    /// Parked in the table, available for checkout.
    Idle {
        session: Box<Session>,
        last_used: Instant,
    },
    /// Checked out by a request handler.
    Running { since: Instant },
}

/// A summary row for the `list` verb.
#[derive(Debug, Clone)]
pub struct SessionInfo {
    /// Session name.
    pub name: String,
    /// `"idle"` or `"running"`.
    pub state: &'static str,
    /// Workload name (empty while running — the spec travels with the
    /// checked-out session).
    pub workload: String,
    /// ISA name (empty while running).
    pub isa: String,
    /// Instructions executed so far (0 while running).
    pub instructions: u64,
    /// Idle seconds (0 while running).
    pub idle_secs: f64,
    /// Seconds the current request has been executing (0 while idle).
    pub running_secs: f64,
}

/// The bounded, LRU-evicting session table.
///
/// Capacity pressure only ever evicts **idle** sessions (oldest
/// `last_used` first); running sessions are pinned by their request. The
/// idle timeout is applied lazily: [`SessionTable::sweep`] runs at every
/// request, so an unused session disappears the first time anyone talks to
/// the server after the timeout elapses.
pub struct SessionTable {
    slots: Mutex<HashMap<String, Slot>>,
    max_sessions: usize,
    idle_timeout: Duration,
}

impl SessionTable {
    /// Creates a table holding at most `max_sessions` (minimum 1) sessions,
    /// evicting sessions idle longer than `idle_timeout`.
    #[must_use]
    pub fn new(max_sessions: usize, idle_timeout: Duration) -> Self {
        SessionTable {
            slots: Mutex::new(HashMap::new()),
            max_sessions: max_sessions.max(1),
            idle_timeout,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, Slot>> {
        self.slots.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Evicts sessions idle past the timeout; returns how many.
    pub fn sweep(&self) -> usize {
        let now = Instant::now();
        let mut slots = self.lock();
        let before = slots.len();
        slots.retain(|_, slot| match slot {
            Slot::Idle { last_used, .. } => now.duration_since(*last_used) < self.idle_timeout,
            Slot::Running { .. } => true,
        });
        before - slots.len()
    }

    /// Inserts a new idle session, evicting the least-recently-used idle
    /// session if the table is at capacity.
    ///
    /// # Errors
    ///
    /// [`TableError::Exists`] if the name is taken, [`TableError::Full`] if
    /// the table is at capacity with nothing idle to evict.
    pub fn insert(&self, session: Box<Session>) -> Result<(), TableError> {
        let mut slots = self.lock();
        if slots.contains_key(&session.name) {
            return Err(TableError::Exists);
        }
        if slots.len() >= self.max_sessions {
            let victim = slots
                .iter()
                .filter_map(|(name, slot)| match slot {
                    Slot::Idle { last_used, .. } => Some((name.clone(), *last_used)),
                    Slot::Running { .. } => None,
                })
                .min_by_key(|(_, t)| *t)
                .map(|(name, _)| name);
            match victim {
                Some(name) => {
                    slots.remove(&name);
                }
                None => return Err(TableError::Full),
            }
        }
        slots.insert(
            session.name.clone(),
            Slot::Idle { session, last_used: Instant::now() },
        );
        Ok(())
    }

    /// Takes the named session out of the table for exclusive use, leaving
    /// a `Running` marker. Pair with [`SessionTable::checkin`] (or
    /// [`SessionTable::discard`] if the session died).
    ///
    /// # Errors
    ///
    /// [`TableError::NotFound`] / [`TableError::Busy`].
    pub fn checkout(&self, name: &str) -> Result<Box<Session>, TableError> {
        let mut slots = self.lock();
        match slots.get_mut(name) {
            None => Err(TableError::NotFound),
            Some(Slot::Running { .. }) => Err(TableError::Busy),
            Some(slot @ Slot::Idle { .. }) => {
                let taken = std::mem::replace(slot, Slot::Running { since: Instant::now() });
                match taken {
                    Slot::Idle { session, .. } => Ok(session),
                    Slot::Running { .. } => unreachable!(),
                }
            }
        }
    }

    /// Returns a checked-out session to the table, marking it idle.
    pub fn checkin(&self, session: Box<Session>) {
        let mut slots = self.lock();
        slots.insert(
            session.name.clone(),
            Slot::Idle { session, last_used: Instant::now() },
        );
    }

    /// Drops the `Running` marker for a session that will not be returned
    /// (run failed, session deleted mid-flight).
    pub fn discard(&self, name: &str) {
        let mut slots = self.lock();
        if matches!(slots.get(name), Some(Slot::Running { .. })) {
            slots.remove(name);
        }
    }

    /// Removes the named idle session.
    ///
    /// # Errors
    ///
    /// [`TableError::NotFound`] / [`TableError::Busy`].
    pub fn remove(&self, name: &str) -> Result<(), TableError> {
        let mut slots = self.lock();
        match slots.get(name) {
            None => Err(TableError::NotFound),
            Some(Slot::Running { .. }) => Err(TableError::Busy),
            Some(Slot::Idle { .. }) => {
                slots.remove(name);
                Ok(())
            }
        }
    }

    /// Summary of every resident session, sorted by name.
    #[must_use]
    pub fn list(&self) -> Vec<SessionInfo> {
        let now = Instant::now();
        let slots = self.lock();
        let mut rows: Vec<SessionInfo> = slots
            .iter()
            .map(|(name, slot)| match slot {
                Slot::Idle { session, last_used } => SessionInfo {
                    name: name.clone(),
                    state: "idle",
                    workload: session.spec.workload.name().to_string(),
                    isa: session.spec.isa.name().to_string(),
                    instructions: session.sim.stats().instructions,
                    idle_secs: now.duration_since(*last_used).as_secs_f64(),
                    running_secs: 0.0,
                },
                Slot::Running { since } => SessionInfo {
                    name: name.clone(),
                    state: "running",
                    workload: String::new(),
                    isa: String::new(),
                    instructions: 0,
                    idle_secs: 0.0,
                    running_secs: now.duration_since(*since).as_secs_f64(),
                },
            })
            .collect();
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        rows
    }

    /// Number of resident sessions (idle + running).
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when no session is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// `true` while any session is checked out.
    #[must_use]
    pub fn any_running(&self) -> bool {
        self.lock().values().any(|s| matches!(s, Slot::Running { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(name: &str) -> Box<Session> {
        Session::create(name, SessionSpec::new(Workload::Dct, IsaKind::Risc)).unwrap()
    }

    #[test]
    fn checkout_checkin_cycle() {
        let table = SessionTable::new(4, Duration::from_secs(60));
        table.insert(session("a")).unwrap();
        assert_eq!(table.checkout("missing").unwrap_err(), TableError::NotFound);
        let s = table.checkout("a").unwrap();
        assert_eq!(table.checkout("a").unwrap_err(), TableError::Busy);
        assert!(table.any_running());
        table.checkin(s);
        assert!(!table.any_running());
        assert!(table.checkout("a").is_ok());
    }

    #[test]
    fn insert_rejects_duplicates_and_evicts_lru() {
        let table = SessionTable::new(2, Duration::from_secs(60));
        table.insert(session("a")).unwrap();
        assert_eq!(table.insert(session("a")).unwrap_err(), TableError::Exists);
        std::thread::sleep(Duration::from_millis(5));
        table.insert(session("b")).unwrap();
        // Full: inserting "c" evicts the LRU idle session, "a".
        table.insert(session("c")).unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(table.checkout("a").unwrap_err(), TableError::NotFound);
        assert!(table.checkout("b").is_ok());
    }

    #[test]
    fn full_table_of_running_sessions_rejects_inserts() {
        let table = SessionTable::new(1, Duration::from_secs(60));
        table.insert(session("a")).unwrap();
        let held = table.checkout("a").unwrap();
        assert_eq!(table.insert(session("b")).unwrap_err(), TableError::Full);
        table.checkin(held);
        table.insert(session("b")).unwrap();
    }

    #[test]
    fn sweep_evicts_only_idle_past_timeout() {
        let table = SessionTable::new(4, Duration::from_millis(20));
        table.insert(session("a")).unwrap();
        table.insert(session("b")).unwrap();
        let held = table.checkout("b").unwrap();
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(table.sweep(), 1); // "a" evicted; "b" pinned by checkout
        assert_eq!(table.checkout("a").unwrap_err(), TableError::NotFound);
        table.checkin(held);
        assert_eq!(table.sweep(), 0); // fresh checkin resets idleness
    }

    #[test]
    fn list_reports_states_sorted() {
        let table = SessionTable::new(4, Duration::from_secs(60));
        table.insert(session("b")).unwrap();
        table.insert(session("a")).unwrap();
        let held = table.checkout("b").unwrap();
        let rows = table.list();
        assert_eq!(rows.len(), 2);
        assert_eq!((rows[0].name.as_str(), rows[0].state), ("a", "idle"));
        assert_eq!((rows[1].name.as_str(), rows[1].state), ("b", "running"));
        assert_eq!(rows[0].workload, "dct");
        table.checkin(held);
    }
}
