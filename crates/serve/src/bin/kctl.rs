//! `kctl` — client for the `ksimd` simulation daemon.
//!
//! ```text
//! kctl [--addr HOST:PORT] <command> [args]
//!   ping [--json]
//!   create NAME --workload W --isa I [--model ilp|aie|doe]
//!          [--no-cache] [--no-prediction] [--baseline-cache] [--ideal-memory]
//!   create NAME --cores SPEC[,SPEC...] [--quantum N] [--host-threads N]
//!   run NAME [--budget N] [--reset] [--loop]
//!   stream NAME [--budget N] [--limit N]
//!   snapshot NAME | restore NAME | reset NAME | delete NAME
//!   stats NAME | metrics NAME
//!   list
//!   shutdown
//!   server-metrics
//!   trace ID|all [--perfetto FILE]
//!   top [--interval-ms N] [--iterations N] [--json]
//!   bench [--workload W] [--isa I] [--clients N] [--iterations N]
//!         [--budget N] [--out FILE]
//! ```
//!
//! A fabric core SPEC is `workload:isa[:model]`, e.g.
//! `create grid --cores dct:risc,fft:vliw4:aie`.
//!
//! Every daemon command starts with a protocol handshake: if the daemon
//! advertises a different `proto_version` than this client speaks, `kctl`
//! refuses to proceed and explains the mismatch instead of sending requests
//! the server may misread.
//!
//! All results print as JSON on stdout. Exit code 0 on success, 1 on a
//! server-reported error, 2 on usage errors.

use std::collections::HashMap;
use std::io::IsTerminal as _;
use std::process::ExitCode;
use std::time::Duration;

use kahrisma_core::args::ArgList;
use kahrisma_observe::{perfetto, Span};
use kahrisma_serve::bench::{run_bench, run_sweep, BenchOptions, SweepOptions};
use kahrisma_serve::json::Value;
use kahrisma_serve::{telemetry, Client};

const USAGE: &str = "usage: kctl [--addr HOST:PORT] <command> [args]\n\
     commands: ping [--json] | create NAME --workload W --isa I [--model M] [toggles]\n\
     \x20         | create NAME --cores SPEC[,SPEC] [--quantum N] [--host-threads N]\n\
     \x20         | run NAME [--budget N] [--reset] [--loop]\n\
     \x20         | stream NAME [--budget N] [--limit N]\n\
     \x20         | snapshot NAME | restore NAME | reset NAME | delete NAME\n\
     \x20         | export NAME | stats NAME | metrics NAME | list | shutdown\n\
     \x20         | gate-status | gate-drain WORKER | server-metrics\n\
     \x20         | trace ID|all [--perfetto FILE]\n\
     \x20         | top [--interval-ms N] [--iterations N] [--json]\n\
     \x20         | bench [--workload W] [--isa I] [--clients N] [--iterations N]\n\
     \x20                 [--budget N] [--out FILE]\n\
     \x20         | bench --sweep --ksimd PATH --kgate PATH [--out FILE]\n\
     \x20                 [--sweep-clients N,N,..] [--fleets N,N,..]\n\
     \x20                 [--sweep-budget N] [--requests N]";

/// A fully parsed invocation: daemon address plus one command.
#[derive(Debug)]
struct Invocation {
    addr: String,
    command: Command,
}

#[derive(Debug)]
enum Command {
    Help,
    Ping { json: bool },
    Create(CreateArgs),
    Run { name: String, budget: Option<u64>, reset: bool, looped: bool },
    Stream { name: String, budget: Option<u64>, limit: Option<u64> },
    Verb { verb: String, name: String },
    List,
    Shutdown,
    GateStatus,
    GateDrain { worker: String },
    ServerMetrics,
    Trace { filter: Option<u64>, perfetto: Option<String> },
    Top { interval_ms: u64, iterations: Option<u64>, json: bool },
    Bench { options: BenchOptions, out: Option<String> },
    Sweep { base: BenchOptions, sweep: SweepOptions, out: Option<String> },
}

/// `create` arguments; `cores: Some(..)` selects a fabric session and is
/// mutually exclusive with the single-session spec fields.
#[derive(Debug)]
struct CreateArgs {
    name: String,
    workload: String,
    isa: String,
    cores: Option<String>,
    quantum: Option<u64>,
    host_threads: Option<u64>,
    extra: Vec<(String, Value)>,
}

fn parse(mut args: ArgList) -> Result<Invocation, String> {
    let mut addr = "127.0.0.1:9191".to_string();
    let verb = loop {
        match args.next_arg() {
            Some(flag) if flag == "--addr" => addr = args.value("--addr")?,
            Some(flag) if flag == "--help" || flag == "-h" => break "help".to_string(),
            Some(cmd) => break cmd,
            None => return Err("missing command".to_string()),
        }
    };
    let command = match verb.as_str() {
        "help" => Command::Help,
        "ping" => {
            let mut json = false;
            while let Some(flag) = args.next_arg() {
                match flag.as_str() {
                    "--json" => json = true,
                    other => return Err(format!("unknown flag: {other}")),
                }
            }
            Command::Ping { json }
        }
        "create" => Command::Create(parse_create(&mut args)?),
        "run" => {
            let name = args.value("NAME")?;
            let mut budget = None;
            let mut reset = false;
            let mut looped = false;
            while let Some(flag) = args.next_arg() {
                match flag.as_str() {
                    "--budget" => budget = Some(args.parse_value("--budget")?),
                    "--reset" => reset = true,
                    "--loop" => looped = true,
                    other => return Err(format!("unknown flag: {other}")),
                }
            }
            Command::Run { name, budget, reset, looped }
        }
        "stream" => {
            let name = args.value("NAME")?;
            let mut budget = None;
            let mut limit = None;
            while let Some(flag) = args.next_arg() {
                match flag.as_str() {
                    "--budget" => budget = Some(args.parse_value("--budget")?),
                    "--limit" => limit = Some(args.parse_value("--limit")?),
                    other => return Err(format!("unknown flag: {other}")),
                }
            }
            Command::Stream { name, budget, limit }
        }
        verb @ ("snapshot" | "restore" | "reset" | "delete" | "stats" | "metrics"
        | "export") => {
            let name = args.value("NAME")?;
            finish(&mut args)?;
            Command::Verb { verb: verb.to_string(), name }
        }
        "gate-status" => {
            finish(&mut args)?;
            Command::GateStatus
        }
        "gate-drain" => {
            let worker = args.value("WORKER")?;
            finish(&mut args)?;
            Command::GateDrain { worker }
        }
        "server-metrics" => {
            finish(&mut args)?;
            Command::ServerMetrics
        }
        "trace" => {
            let selector = args.value("ID|all")?;
            let filter = match selector.as_str() {
                "all" => None,
                id => Some(id.parse::<u64>().map_err(|_| {
                    format!("trace expects a numeric id or `all`, got `{id}`")
                })?),
            };
            let mut perfetto = None;
            while let Some(flag) = args.next_arg() {
                match flag.as_str() {
                    "--perfetto" => perfetto = Some(args.value("--perfetto")?),
                    other => return Err(format!("unknown flag: {other}")),
                }
            }
            Command::Trace { filter, perfetto }
        }
        "top" => {
            let mut interval_ms = 1000;
            let mut iterations = None;
            let mut json = false;
            while let Some(flag) = args.next_arg() {
                match flag.as_str() {
                    "--interval-ms" => interval_ms = args.parse_value("--interval-ms")?,
                    "--iterations" => iterations = Some(args.parse_value("--iterations")?),
                    "--json" => json = true,
                    other => return Err(format!("unknown flag: {other}")),
                }
            }
            if interval_ms == 0 {
                return Err("--interval-ms must be at least 1".to_string());
            }
            Command::Top { interval_ms, iterations, json }
        }
        "list" => {
            finish(&mut args)?;
            Command::List
        }
        "shutdown" => {
            finish(&mut args)?;
            Command::Shutdown
        }
        "bench" => {
            let mut options = BenchOptions::default();
            let mut sweep = SweepOptions::default();
            let mut is_sweep = false;
            let mut out = None;
            while let Some(flag) = args.next_arg() {
                match flag.as_str() {
                    "--workload" => {
                        options.workload = args.value("--workload")?;
                        sweep.workload = options.workload.clone();
                    }
                    "--isa" => {
                        options.isa = args.value("--isa")?;
                        sweep.isa = options.isa.clone();
                    }
                    "--clients" => options.clients = args.parse_value("--clients")?,
                    "--iterations" => {
                        options.iterations = args.parse_value("--iterations")?;
                    }
                    "--budget" => options.budget = args.parse_value("--budget")?,
                    "--out" => out = Some(args.value("--out")?),
                    "--sweep" => is_sweep = true,
                    "--ksimd" => sweep.ksimd = args.value("--ksimd")?,
                    "--kgate" => sweep.kgate = args.value("--kgate")?,
                    "--sweep-budget" => sweep.budget = args.parse_value("--sweep-budget")?,
                    "--requests" => {
                        sweep.requests_target = args.parse_value("--requests")?;
                    }
                    "--sweep-clients" => {
                        sweep.clients = parse_list(&args.value("--sweep-clients")?)?;
                    }
                    "--fleets" => sweep.fleets = parse_list(&args.value("--fleets")?)?,
                    other => return Err(format!("unknown flag: {other}")),
                }
            }
            if is_sweep {
                Command::Sweep { base: options, sweep, out }
            } else {
                Command::Bench { options, out }
            }
        }
        other => return Err(format!("unknown command: {other}")),
    };
    Ok(Invocation { addr, command })
}

fn parse_create(args: &mut ArgList) -> Result<CreateArgs, String> {
    let name = args.value("NAME")?;
    let mut create = CreateArgs {
        name,
        workload: String::new(),
        isa: String::new(),
        cores: None,
        quantum: None,
        host_threads: None,
        extra: Vec::new(),
    };
    while let Some(flag) = args.next_arg() {
        match flag.as_str() {
            "--workload" => create.workload = args.value("--workload")?,
            "--isa" => create.isa = args.value("--isa")?,
            "--cores" => create.cores = Some(args.value("--cores")?),
            "--quantum" => create.quantum = Some(args.parse_value("--quantum")?),
            "--host-threads" => {
                create.host_threads = Some(args.parse_value("--host-threads")?);
            }
            "--model" => {
                create.extra.push(("model".to_string(), args.value("--model")?.into()));
            }
            "--no-cache" => create.extra.push(("decode_cache".to_string(), false.into())),
            "--no-prediction" => {
                create.extra.push(("prediction".to_string(), false.into()));
            }
            "--baseline-cache" => {
                create.extra.push(("superblocks".to_string(), false.into()));
            }
            "--ideal-memory" => {
                create.extra.push(("ideal_memory".to_string(), true.into()));
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if create.cores.is_some() {
        if !create.workload.is_empty() || !create.isa.is_empty() || !create.extra.is_empty()
        {
            return Err(
                "create --cores (fabric) cannot be combined with --workload/--isa/--model/toggles"
                    .to_string(),
            );
        }
    } else {
        if create.workload.is_empty() || create.isa.is_empty() {
            return Err(
                "create needs --workload and --isa (or --cores for a fabric session)"
                    .to_string(),
            );
        }
        if create.quantum.is_some() || create.host_threads.is_some() {
            return Err(
                "--quantum/--host-threads only apply to --cores (fabric) sessions"
                    .to_string(),
            );
        }
    }
    Ok(create)
}

/// Parses a comma-separated count list (`"1,2,4"`), rejecting zeros.
fn parse_list(text: &str) -> Result<Vec<usize>, String> {
    let counts: Vec<usize> = text
        .split(',')
        .map(|part| part.trim().parse::<usize>().map_err(|_| format!("bad count `{part}`")))
        .collect::<Result<_, _>>()?;
    if counts.is_empty() || counts.contains(&0) {
        return Err(format!("counts must be positive: `{text}`"));
    }
    Ok(counts)
}

fn finish(args: &mut ArgList) -> Result<(), String> {
    match args.next_arg() {
        Some(extra) => Err(format!("unexpected argument: {extra}")),
        None => Ok(()),
    }
}

/// Connects and performs the protocol handshake; any failure (including a
/// `proto_version` mismatch) is fatal with a clear message.
fn connect(addr: &str) -> Client {
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("kctl: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = client.handshake() {
        eprintln!("kctl: {e}");
        std::process::exit(1);
    }
    client
}

fn report(result: Result<Value, kahrisma_serve::ClientError>) -> ExitCode {
    match result {
        Ok(v) => {
            println!("{}", v.to_json());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("kctl: {e}");
            ExitCode::from(1)
        }
    }
}

fn run(invocation: Invocation) -> ExitCode {
    let addr = invocation.addr;
    match invocation.command {
        Command::Help => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        Command::Ping { json } => {
            let result = connect(&addr).request(vec![("cmd".to_string(), "ping".into())]);
            if json {
                return report(result);
            }
            match result {
                Ok(v) => {
                    print_ping_table(&addr, &v);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("kctl: {e}");
                    ExitCode::from(1)
                }
            }
        }
        Command::Create(create) => {
            let mut client = connect(&addr);
            let result = match &create.cores {
                Some(cores) => client.create_fabric(
                    &create.name,
                    cores,
                    create.quantum,
                    create.host_threads,
                ),
                None => client.create(
                    &create.name,
                    &create.workload,
                    &create.isa,
                    create.extra,
                ),
            };
            report(result)
        }
        Command::Run { name, budget, reset, looped } => {
            report(connect(&addr).run(&name, budget, reset, looped))
        }
        Command::Stream { name, budget, limit } => {
            report(connect(&addr).stream(&name, budget, limit, |frame| {
                println!("{}", frame.to_json());
            }))
        }
        Command::Verb { verb, name } => report(connect(&addr).session_verb(&verb, &name)),
        Command::List => report(connect(&addr).list()),
        Command::GateStatus => {
            report(connect(&addr).request(vec![("cmd".to_string(), "gate_status".into())]))
        }
        Command::GateDrain { worker } => {
            // A numeric selector is a fleet index; anything else is an
            // address.
            let selector: Value = match worker.parse::<u64>() {
                Ok(index) => index.into(),
                Err(_) => worker.as_str().into(),
            };
            report(connect(&addr).request(vec![
                ("cmd".to_string(), "gate_drain".into()),
                ("worker".to_string(), selector),
            ]))
        }
        Command::ServerMetrics => report(connect(&addr).server_metrics()),
        Command::Trace { filter, perfetto } => run_trace(&addr, filter, perfetto.as_deref()),
        Command::Top { interval_ms, iterations, json } => {
            run_top(&addr, interval_ms, iterations, json)
        }
        Command::Shutdown => match connect(&addr).shutdown() {
            Ok(()) => {
                println!("{{\"ok\":true,\"draining\":true}}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("kctl: {e}");
                ExitCode::from(1)
            }
        },
        Command::Bench { mut options, out } => {
            options.addr = addr;
            emit_bench(run_bench(&options).map(|r| r.to_json()), out)
        }
        Command::Sweep { base, sweep, out } => {
            emit_bench(run_sweep(&base, &sweep).map(|r| r.to_json()), out)
        }
    }
}

/// Renders the extended `ping` load report as an aligned two-column table.
fn print_ping_table(addr: &str, response: &Value) {
    let field = |key: &str| {
        response.get(key).map_or_else(|| "-".to_string(), |v| match v {
            Value::Str(s) => s.clone(),
            other => other.to_json(),
        })
    };
    let uptime_ms = response.get("uptime_ms").and_then(Value::as_u64).unwrap_or(0);
    let rows = [
        ("addr", addr.to_string()),
        ("proto_version", field("proto_version")),
        ("sessions", field("sessions")),
        ("running", field("running")),
        ("uptime", format!("{:.1}s", uptime_ms as f64 / 1e3)),
        ("max_frame", field("max_frame")),
        ("draining", field("draining")),
    ];
    for (k, v) in rows {
        println!("{k:<14} {v}");
    }
}

/// `kctl trace` — prints the span dump and optionally renders it as a
/// Perfetto fleet timeline.
fn run_trace(addr: &str, filter: Option<u64>, perfetto_out: Option<&str>) -> ExitCode {
    let response = match connect(addr).trace_spans(filter) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("kctl: {e}");
            return ExitCode::from(1);
        }
    };
    println!("{}", response.to_json());
    let Some(path) = perfetto_out else { return ExitCode::SUCCESS };
    let parse_rows = |v: Option<&Value>| -> Vec<Span> {
        v.and_then(Value::as_arr)
            .map(|rows| rows.iter().filter_map(telemetry::span_from_value).collect())
            .unwrap_or_default()
    };
    // One track for the answering process, one per worker sub-report (a
    // gateway's trace response fans out to its fleet).
    let workers = response.get("workers").and_then(Value::as_arr);
    let own_label = if workers.is_some() { "gate".to_string() } else { addr.to_string() };
    let mut tracks: Vec<(String, Vec<Span>)> =
        vec![(own_label, parse_rows(response.get("spans")))];
    for worker in workers.unwrap_or_default() {
        let label = worker.get("addr").and_then(Value::as_str).unwrap_or("worker");
        tracks.push((format!("worker {label}"), parse_rows(worker.get("spans"))));
    }
    let refs: Vec<(&str, &[Span])> =
        tracks.iter().map(|(l, s)| (l.as_str(), s.as_slice())).collect();
    match std::fs::write(path, perfetto::fleet_trace_json(&refs)) {
        Ok(()) => {
            eprintln!("kctl: wrote Perfetto trace to {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("kctl: cannot write {path}: {e}");
            ExitCode::from(1)
        }
    }
}

/// One rendered `top` row, extracted from a metrics report.
struct TopRow {
    label: String,
    sessions: u64,
    running: u64,
    queue: u64,
    requests: u64,
    p50_us: Option<u64>,
    p99_us: Option<u64>,
}

fn top_row(label: &str, report: &Value) -> TopRow {
    let reg = telemetry::registry_from_value(report);
    let gauge = |k: &str| reg.gauge(k).unwrap_or(0.0).max(0.0) as u64;
    let run_latency = reg.histogram("verb.run.latency_us");
    TopRow {
        label: label.to_string(),
        sessions: gauge("sessions.resident"),
        running: gauge("sessions.running"),
        queue: gauge("loop.queue_depth"),
        requests: reg.counter("requests.pool"),
        p50_us: run_latency.and_then(|h| h.quantile(0.5)),
        p99_us: run_latency.and_then(|h| h.quantile(0.99)),
    }
}

/// `kctl top` — polls `server_metrics` and renders a refreshing per-worker
/// load table (requests/s from counter deltas, latency quantiles from the
/// log2 histograms).
fn run_top(addr: &str, interval_ms: u64, iterations: Option<u64>, json: bool) -> ExitCode {
    let mut client = connect(addr);
    let mut prev_requests: HashMap<String, u64> = HashMap::new();
    let clear = !json && std::io::stdout().is_terminal();
    let mut iteration = 0u64;
    loop {
        let response = match client.server_metrics() {
            Ok(v) => v,
            Err(e) => {
                eprintln!("kctl: {e}");
                return ExitCode::from(1);
            }
        };
        if json {
            println!("{}", response.to_json());
        } else {
            let mut rows = Vec::new();
            let workers = response.get("workers").and_then(Value::as_arr);
            let own_label = if workers.is_some() { "fleet" } else { addr };
            rows.push(top_row(own_label, &response));
            for worker in workers.unwrap_or_default() {
                let label = worker.get("addr").and_then(Value::as_str).unwrap_or("worker");
                rows.push(top_row(label, worker));
            }
            if clear {
                print!("\x1b[2J\x1b[H");
            }
            println!(
                "{:<24} {:>5} {:>4} {:>6} {:>8} {:>10} {:>10}",
                "WORKER", "SESS", "RUN", "QUEUE", "REQ/S", "p50(run)us", "p99(run)us"
            );
            for row in rows {
                let rate = prev_requests.get(&row.label).map(|&prev| {
                    row.requests.saturating_sub(prev) as f64 * 1e3 / interval_ms as f64
                });
                let fmt_opt =
                    |v: Option<u64>| v.map_or_else(|| "-".to_string(), |n| n.to_string());
                println!(
                    "{:<24} {:>5} {:>4} {:>6} {:>8} {:>10} {:>10}",
                    row.label,
                    row.sessions,
                    row.running,
                    row.queue,
                    rate.map_or_else(|| "-".to_string(), |r| format!("{r:.1}")),
                    fmt_opt(row.p50_us),
                    fmt_opt(row.p99_us),
                );
                prev_requests.insert(row.label, row.requests);
            }
        }
        iteration += 1;
        if iterations.is_some_and(|n| iteration >= n) {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}

fn emit_bench(result: Result<String, String>, out: Option<String>) -> ExitCode {
    match result {
        Ok(json) => {
            print!("{json}");
            if let Some(path) = out {
                if let Err(e) = std::fs::write(&path, &json) {
                    eprintln!("kctl: cannot write {path}: {e}");
                    return ExitCode::from(1);
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("kctl: bench failed: {e}");
            ExitCode::from(1)
        }
    }
}

fn main() -> ExitCode {
    match parse(ArgList::from_env()) {
        Ok(invocation) => run(invocation),
        Err(message) => {
            eprintln!("kctl: {message}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(items: &[&str]) -> Result<Invocation, String> {
        parse(ArgList::new(items.iter().map(|s| (*s).to_string()).collect()))
    }

    #[test]
    fn addr_defaults_and_overrides() {
        let inv = parsed(&["ping"]).unwrap();
        assert_eq!(inv.addr, "127.0.0.1:9191");
        assert!(matches!(inv.command, Command::Ping { json: false }));
        let inv = parsed(&["ping", "--json"]).unwrap();
        assert!(matches!(inv.command, Command::Ping { json: true }));
        let inv = parsed(&["--addr", "10.0.0.1:7", "list"]).unwrap();
        assert_eq!(inv.addr, "10.0.0.1:7");
        assert!(matches!(inv.command, Command::List));
    }

    #[test]
    fn create_single_collects_spec_and_toggles() {
        let inv = parsed(&[
            "create", "s1", "--workload", "dct", "--isa", "risc", "--model", "doe",
            "--no-cache",
        ])
        .unwrap();
        let Command::Create(create) = inv.command else { panic!("expected create") };
        assert_eq!(create.name, "s1");
        assert_eq!(create.workload, "dct");
        assert_eq!(create.isa, "risc");
        assert!(create.cores.is_none());
        assert_eq!(create.extra.len(), 2);
        assert_eq!(create.extra[0].0, "model");
        assert_eq!(create.extra[1].0, "decode_cache");
    }

    #[test]
    fn create_fabric_takes_cores_quantum_and_threads() {
        let inv = parsed(&[
            "create", "grid", "--cores", "dct:risc,fft:vliw4:aie", "--quantum", "25000",
            "--host-threads", "4",
        ])
        .unwrap();
        let Command::Create(create) = inv.command else { panic!("expected create") };
        assert_eq!(create.name, "grid");
        assert_eq!(create.cores.as_deref(), Some("dct:risc,fft:vliw4:aie"));
        assert_eq!(create.quantum, Some(25_000));
        assert_eq!(create.host_threads, Some(4));
    }

    #[test]
    fn create_rejects_mixed_and_incomplete_specs() {
        let err = parsed(&["create", "x", "--cores", "dct:risc", "--isa", "risc"])
            .unwrap_err();
        assert!(err.contains("cannot be combined"), "{err}");
        let err = parsed(&["create", "x", "--workload", "dct"]).unwrap_err();
        assert!(err.contains("--workload and --isa"), "{err}");
        let err = parsed(&["create", "x", "--workload", "dct", "--isa", "risc",
            "--quantum", "5"])
        .unwrap_err();
        assert!(err.contains("only apply to --cores"), "{err}");
    }

    #[test]
    fn run_parses_budget_and_toggles() {
        let inv = parsed(&["run", "s", "--budget", "5000", "--reset", "--loop"]).unwrap();
        let Command::Run { name, budget, reset, looped } = inv.command else {
            panic!("expected run")
        };
        assert_eq!(name, "s");
        assert_eq!(budget, Some(5000));
        assert!(reset && looped);
        let err = parsed(&["run", "s", "--budget", "lots"]).unwrap_err();
        assert!(err.starts_with("invalid value for --budget"), "{err}");
    }

    #[test]
    fn bad_input_is_a_parse_error_not_a_panic() {
        assert!(parsed(&[]).unwrap_err().contains("missing command"));
        assert!(parsed(&["frobnicate"]).unwrap_err().contains("unknown command"));
        assert!(parsed(&["ping", "extra"]).unwrap_err().contains("unknown flag"));
        assert!(parsed(&["list", "extra"]).unwrap_err().contains("unexpected argument"));
        assert!(parsed(&["run", "s", "--frob"]).unwrap_err().contains("unknown flag"));
        assert!(parsed(&["--addr"]).unwrap_err().contains("expects a value"));
    }

    #[test]
    fn gate_commands_parse() {
        let inv = parsed(&["gate-status"]).unwrap();
        assert!(matches!(inv.command, Command::GateStatus));
        let inv = parsed(&["gate-drain", "0"]).unwrap();
        let Command::GateDrain { worker } = inv.command else { panic!("expected drain") };
        assert_eq!(worker, "0");
        let inv = parsed(&["export", "s1"]).unwrap();
        let Command::Verb { verb, name } = inv.command else { panic!("expected verb") };
        assert_eq!((verb.as_str(), name.as_str()), ("export", "s1"));
        assert!(parsed(&["gate-drain"]).is_err());
    }

    #[test]
    fn observability_commands_parse() {
        let inv = parsed(&["server-metrics"]).unwrap();
        assert!(matches!(inv.command, Command::ServerMetrics));

        let inv = parsed(&["trace", "all"]).unwrap();
        let Command::Trace { filter, perfetto } = inv.command else { panic!("expected trace") };
        assert_eq!(filter, None);
        assert_eq!(perfetto, None);
        let inv = parsed(&["trace", "42", "--perfetto", "t.json"]).unwrap();
        let Command::Trace { filter, perfetto } = inv.command else { panic!("expected trace") };
        assert_eq!(filter, Some(42));
        assert_eq!(perfetto.as_deref(), Some("t.json"));
        assert!(parsed(&["trace", "nope"]).is_err());
        assert!(parsed(&["trace"]).is_err());

        let inv = parsed(&["top"]).unwrap();
        let Command::Top { interval_ms, iterations, json } = inv.command else {
            panic!("expected top")
        };
        assert_eq!(interval_ms, 1000);
        assert_eq!(iterations, None);
        assert!(!json);
        let inv = parsed(&["top", "--interval-ms", "250", "--iterations", "3", "--json"])
            .unwrap();
        let Command::Top { interval_ms, iterations, json } = inv.command else {
            panic!("expected top")
        };
        assert_eq!(interval_ms, 250);
        assert_eq!(iterations, Some(3));
        assert!(json);
        assert!(parsed(&["top", "--interval-ms", "0"]).is_err());
    }

    #[test]
    fn bench_sweep_parses_ladder_and_fleet_lists() {
        let inv = parsed(&[
            "bench", "--sweep", "--ksimd", "/bin/ksimd", "--kgate", "/bin/kgate",
            "--sweep-clients", "1,10,100", "--fleets", "2,4", "--sweep-budget", "50000",
            "--requests", "64", "--workload", "fft", "--out", "s.json",
        ])
        .unwrap();
        let Command::Sweep { sweep, out, .. } = inv.command else { panic!("expected sweep") };
        assert_eq!(sweep.ksimd, "/bin/ksimd");
        assert_eq!(sweep.kgate, "/bin/kgate");
        assert_eq!(sweep.clients, vec![1, 10, 100]);
        assert_eq!(sweep.fleets, vec![2, 4]);
        assert_eq!(sweep.budget, 50_000);
        assert_eq!(sweep.requests_target, 64);
        assert_eq!(sweep.workload, "fft");
        assert_eq!(out.as_deref(), Some("s.json"));
        assert!(parsed(&["bench", "--sweep-clients", "1,0"]).is_err());
        assert!(parsed(&["bench", "--fleets", "two"]).is_err());
    }

    #[test]
    fn bench_fills_options_and_output_path() {
        let inv = parsed(&[
            "bench", "--workload", "fft", "--clients", "3", "--iterations", "7",
            "--budget", "9000", "--out", "b.json",
        ])
        .unwrap();
        let Command::Bench { options, out } = inv.command else { panic!("expected bench") };
        assert_eq!(options.workload, "fft");
        assert_eq!(options.clients, 3);
        assert_eq!(options.iterations, 7);
        assert_eq!(options.budget, 9000);
        assert_eq!(out.as_deref(), Some("b.json"));
    }
}
