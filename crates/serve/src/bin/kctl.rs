//! `kctl` — client for the `ksimd` simulation daemon.
//!
//! ```text
//! kctl [--addr HOST:PORT] <command> [args]
//!   ping
//!   create NAME --workload W --isa I [--model ilp|aie|doe]
//!          [--no-cache] [--no-prediction] [--baseline-cache] [--ideal-memory]
//!   run NAME [--budget N] [--reset] [--loop]
//!   stream NAME [--budget N] [--limit N]
//!   snapshot NAME | restore NAME | reset NAME | delete NAME
//!   stats NAME | metrics NAME
//!   list
//!   shutdown
//!   bench [--workload W] [--isa I] [--clients N] [--iterations N]
//!         [--budget N] [--out FILE]
//! ```
//!
//! All results print as JSON on stdout. Exit code 0 on success, 1 on a
//! server-reported error, 2 on usage errors.

use std::process::ExitCode;

use kahrisma_serve::bench::{run_bench, BenchOptions};
use kahrisma_serve::json::Value;
use kahrisma_serve::Client;

fn usage() -> ! {
    eprintln!(
        "usage: kctl [--addr HOST:PORT] <command> [args]\n\
         commands: ping | create NAME --workload W --isa I [--model M] [toggles]\n\
         \x20         | run NAME [--budget N] [--reset] [--loop]\n\
         \x20         | stream NAME [--budget N] [--limit N]\n\
         \x20         | snapshot NAME | restore NAME | reset NAME | delete NAME\n\
         \x20         | stats NAME | metrics NAME | list | shutdown\n\
         \x20         | bench [--workload W] [--isa I] [--clients N] [--iterations N]\n\
         \x20                 [--budget N] [--out FILE]"
    );
    std::process::exit(2);
}

struct Args {
    items: Vec<String>,
    pos: usize,
}

impl Args {
    fn next(&mut self) -> Option<String> {
        let item = self.items.get(self.pos).cloned();
        if item.is_some() {
            self.pos += 1;
        }
        item
    }

    fn value(&mut self, flag: &str) -> String {
        self.next().unwrap_or_else(|| {
            eprintln!("kctl: {flag} expects a value");
            usage()
        })
    }
}

fn connect(addr: &str) -> Client {
    match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("kctl: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    }
}

fn report(result: Result<Value, kahrisma_serve::ClientError>) -> ExitCode {
    match result {
        Ok(v) => {
            println!("{}", v.to_json());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("kctl: {e}");
            ExitCode::from(1)
        }
    }
}

fn main() -> ExitCode {
    let mut args = Args { items: std::env::args().skip(1).collect(), pos: 0 };
    let mut addr = "127.0.0.1:9191".to_string();
    let command = loop {
        match args.next() {
            Some(flag) if flag == "--addr" => addr = args.value("--addr"),
            Some(flag) if flag == "--help" || flag == "-h" => usage(),
            Some(cmd) => break cmd,
            None => usage(),
        }
    };
    match command.as_str() {
        "ping" => report(connect(&addr).request(vec![("cmd".to_string(), "ping".into())])),
        "create" => {
            let name = args.value("NAME");
            let mut workload = String::new();
            let mut isa = String::new();
            let mut extra: Vec<(String, Value)> = Vec::new();
            while let Some(flag) = args.next() {
                match flag.as_str() {
                    "--workload" => workload = args.value("--workload"),
                    "--isa" => isa = args.value("--isa"),
                    "--model" => {
                        extra.push(("model".to_string(), args.value("--model").into()));
                    }
                    "--no-cache" => extra.push(("decode_cache".to_string(), false.into())),
                    "--no-prediction" => {
                        extra.push(("prediction".to_string(), false.into()));
                    }
                    "--baseline-cache" => {
                        extra.push(("superblocks".to_string(), false.into()));
                    }
                    "--ideal-memory" => {
                        extra.push(("ideal_memory".to_string(), true.into()));
                    }
                    _ => usage(),
                }
            }
            if workload.is_empty() || isa.is_empty() {
                eprintln!("kctl: create needs --workload and --isa");
                return ExitCode::from(2);
            }
            report(connect(&addr).create(&name, &workload, &isa, extra))
        }
        "run" => {
            let name = args.value("NAME");
            let mut budget = None;
            let mut reset = false;
            let mut looped = false;
            while let Some(flag) = args.next() {
                match flag.as_str() {
                    "--budget" => {
                        budget = Some(args.value("--budget").parse().unwrap_or_else(|_| {
                            eprintln!("kctl: bad --budget");
                            std::process::exit(2);
                        }));
                    }
                    "--reset" => reset = true,
                    "--loop" => looped = true,
                    _ => usage(),
                }
            }
            report(connect(&addr).run(&name, budget, reset, looped))
        }
        "stream" => {
            let name = args.value("NAME");
            let mut budget = None;
            let mut limit = None;
            while let Some(flag) = args.next() {
                match flag.as_str() {
                    "--budget" => budget = args.value("--budget").parse().ok(),
                    "--limit" => limit = args.value("--limit").parse().ok(),
                    _ => usage(),
                }
            }
            report(connect(&addr).stream(&name, budget, limit, |frame| {
                println!("{}", frame.to_json());
            }))
        }
        verb @ ("snapshot" | "restore" | "reset" | "delete" | "stats" | "metrics") => {
            let name = args.value("NAME");
            report(connect(&addr).session_verb(verb, &name))
        }
        "list" => report(connect(&addr).list()),
        "shutdown" => {
            let mut client = connect(&addr);
            match client.shutdown() {
                Ok(()) => {
                    println!("{{\"ok\":true,\"draining\":true}}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("kctl: {e}");
                    ExitCode::from(1)
                }
            }
        }
        "bench" => {
            let mut options = BenchOptions { addr: addr.clone(), ..BenchOptions::default() };
            let mut out = None;
            while let Some(flag) = args.next() {
                match flag.as_str() {
                    "--workload" => options.workload = args.value("--workload"),
                    "--isa" => options.isa = args.value("--isa"),
                    "--clients" => {
                        options.clients =
                            args.value("--clients").parse().unwrap_or_else(|_| usage());
                    }
                    "--iterations" => {
                        options.iterations =
                            args.value("--iterations").parse().unwrap_or_else(|_| usage());
                    }
                    "--budget" => {
                        options.budget =
                            args.value("--budget").parse().unwrap_or_else(|_| usage());
                    }
                    "--out" => out = Some(args.value("--out")),
                    _ => usage(),
                }
            }
            match run_bench(&options) {
                Ok(report) => {
                    let json = report.to_json();
                    print!("{json}");
                    if let Some(path) = out {
                        if let Err(e) = std::fs::write(&path, &json) {
                            eprintln!("kctl: cannot write {path}: {e}");
                            return ExitCode::from(1);
                        }
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("kctl: bench failed: {e}");
                    ExitCode::from(1)
                }
            }
        }
        _ => usage(),
    }
}
