//! `ksimd` — the KAHRISMA simulation daemon.
//!
//! ```text
//! ksimd [options]
//!   --addr HOST:PORT        listen address (default 127.0.0.1:9191; port 0 = ephemeral)
//!   --max-sessions N        session-table capacity (default 32)
//!   --max-running N         concurrent running sessions (default 4)
//!   --idle-timeout-ms N     idle-session eviction (default 300000)
//!   --request-timeout-ms N  per-request run deadline (default 30000)
//!   --slice N               instructions per run_for slice (default 4000000)
//! ```
//!
//! Prints `ksimd listening on ADDR` to stdout once bound (scripts parse
//! this to learn an ephemeral port). Stop it with `kctl shutdown`: the
//! daemon drains — running requests finish, new work is refused — and the
//! process exits. (std has no signal handling, so SIGTERM is an abrupt
//! stop; use the `shutdown` verb for graceful drain.)

use std::process::ExitCode;
use std::time::Duration;

use kahrisma_serve::{Daemon, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: ksimd [--addr HOST:PORT] [--max-sessions N] [--max-running N]\n\
         \x20            [--idle-timeout-ms N] [--request-timeout-ms N] [--slice N]"
    );
    std::process::exit(2);
}

fn parse_config(args: impl Iterator<Item = String>) -> Result<ServerConfig, String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:9191".to_string(),
        ..ServerConfig::default()
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut value = || -> Result<String, String> {
            args.next().ok_or_else(|| format!("{arg} expects a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = value()?,
            "--max-sessions" => {
                config.max_sessions =
                    value()?.parse().map_err(|_| "bad --max-sessions".to_string())?;
            }
            "--max-running" => {
                config.max_running =
                    value()?.parse().map_err(|_| "bad --max-running".to_string())?;
            }
            "--idle-timeout-ms" => {
                config.idle_timeout = Duration::from_millis(
                    value()?.parse().map_err(|_| "bad --idle-timeout-ms".to_string())?,
                );
            }
            "--request-timeout-ms" => {
                config.request_timeout = Duration::from_millis(
                    value()?.parse().map_err(|_| "bad --request-timeout-ms".to_string())?,
                );
            }
            "--slice" => {
                config.slice = value()?.parse().map_err(|_| "bad --slice".to_string())?;
            }
            "--help" | "-h" => usage(),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if config.max_sessions == 0 {
        return Err("--max-sessions must be at least 1".to_string());
    }
    if config.max_running == 0 {
        return Err("--max-running must be at least 1".to_string());
    }
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse_config(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ksimd: {e}");
            return ExitCode::from(2);
        }
    };
    let daemon = match Daemon::bind(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("ksimd: cannot bind: {e}");
            return ExitCode::from(1);
        }
    };
    match daemon.local_addr() {
        Ok(addr) => {
            // Scripts parse this line to find an ephemeral port.
            println!("ksimd listening on {addr}");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("ksimd: {e}");
            return ExitCode::from(1);
        }
    }
    match daemon.run() {
        Ok(()) => {
            eprintln!("ksimd: drained, exiting");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ksimd: accept loop failed: {e}");
            ExitCode::from(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> std::vec::IntoIter<String> {
        s.iter().map(ToString::to_string).collect::<Vec<_>>().into_iter()
    }

    #[test]
    fn parses_all_flags() {
        let c = parse_config(args(&[
            "--addr", "127.0.0.1:0", "--max-sessions", "8", "--max-running", "2",
            "--idle-timeout-ms", "1000", "--request-timeout-ms", "500", "--slice", "1000",
        ]))
        .unwrap();
        assert_eq!(c.addr, "127.0.0.1:0");
        assert_eq!(c.max_sessions, 8);
        assert_eq!(c.max_running, 2);
        assert_eq!(c.idle_timeout, Duration::from_secs(1));
        assert_eq!(c.request_timeout, Duration::from_millis(500));
        assert_eq!(c.slice, 1000);
    }

    #[test]
    fn rejects_zero_limits_and_unknown_flags() {
        assert!(parse_config(args(&["--max-sessions", "0"])).is_err());
        assert!(parse_config(args(&["--max-running", "0"])).is_err());
        assert!(parse_config(args(&["--bogus"])).is_err());
        assert!(parse_config(args(&["--addr"])).is_err());
    }
}
