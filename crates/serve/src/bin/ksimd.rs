//! `ksimd` — the KAHRISMA simulation daemon.
//!
//! ```text
//! ksimd [options]
//!   --addr HOST:PORT        listen address (default 127.0.0.1:9191; port 0 = ephemeral)
//!   --max-sessions N        session-table capacity (default 32)
//!   --max-running N         concurrent running sessions (default 4)
//!   --idle-timeout-ms N     idle-session eviction (default 300000)
//!   --request-timeout-ms N  per-request run deadline (default 30000)
//!   --slice N               instructions per run_for slice (default 4000000)
//!   --max-frame BYTES       request-frame cap, advertised in ping (default 8388608)
//!   --io-workers N          blocking worker threads (default 0 = auto)
//!   --slow-ms N             log a JSON line to stderr for verbs slower than N ms
//!   --no-telemetry          disable spans + serve-plane metrics (ablation runs)
//! ```
//!
//! Prints `ksimd listening on ADDR` to stdout once bound (scripts parse
//! this to learn an ephemeral port). Stop it with `kctl shutdown`: the
//! daemon drains — running requests finish, new work is refused — and the
//! process exits. (std has no signal handling, so SIGTERM is an abrupt
//! stop; use the `shutdown` verb for graceful drain.)

use std::process::ExitCode;
use std::time::Duration;

use kahrisma_core::args::ArgList;
use kahrisma_serve::{Daemon, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: ksimd [--addr HOST:PORT] [--max-sessions N] [--max-running N]\n\
         \x20            [--idle-timeout-ms N] [--request-timeout-ms N] [--slice N]\n\
         \x20            [--max-frame BYTES] [--io-workers N] [--slow-ms N] [--no-telemetry]"
    );
    std::process::exit(2);
}

fn parse_config(mut args: ArgList) -> Result<ServerConfig, String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:9191".to_string(),
        ..ServerConfig::default()
    };
    while let Some(arg) = args.next_arg() {
        match arg.as_str() {
            "--addr" => config.addr = args.value("--addr")?,
            "--max-sessions" => config.max_sessions = args.parse_value("--max-sessions")?,
            "--max-running" => config.max_running = args.parse_value("--max-running")?,
            "--idle-timeout-ms" => {
                config.idle_timeout =
                    Duration::from_millis(args.parse_value("--idle-timeout-ms")?);
            }
            "--request-timeout-ms" => {
                config.request_timeout =
                    Duration::from_millis(args.parse_value("--request-timeout-ms")?);
            }
            "--slice" => config.slice = args.parse_value("--slice")?,
            "--max-frame" => config.max_frame = args.parse_value("--max-frame")?,
            "--io-workers" => config.io_workers = args.parse_value("--io-workers")?,
            "--slow-ms" => config.slow_ms = Some(args.parse_value("--slow-ms")?),
            "--no-telemetry" => config.telemetry = false,
            "--help" | "-h" => usage(),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if config.max_sessions == 0 {
        return Err("--max-sessions must be at least 1".to_string());
    }
    if config.max_running == 0 {
        return Err("--max-running must be at least 1".to_string());
    }
    if config.max_frame < 1024 {
        return Err("--max-frame must be at least 1024 bytes".to_string());
    }
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse_config(ArgList::from_env()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ksimd: {e}");
            return ExitCode::from(2);
        }
    };
    let daemon = match Daemon::bind(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("ksimd: cannot bind: {e}");
            return ExitCode::from(1);
        }
    };
    match daemon.local_addr() {
        Ok(addr) => {
            // Scripts parse this line to find an ephemeral port.
            println!("ksimd listening on {addr}");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("ksimd: {e}");
            return ExitCode::from(1);
        }
    }
    match daemon.run() {
        Ok(()) => {
            eprintln!("ksimd: drained, exiting");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ksimd: event loop failed: {e}");
            ExitCode::from(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> ArgList {
        ArgList::new(s.iter().map(ToString::to_string).collect())
    }

    #[test]
    fn parses_all_flags() {
        let c = parse_config(args(&[
            "--addr", "127.0.0.1:0", "--max-sessions", "8", "--max-running", "2",
            "--idle-timeout-ms", "1000", "--request-timeout-ms", "500", "--slice", "1000",
            "--max-frame", "65536", "--io-workers", "7", "--slow-ms", "250", "--no-telemetry",
        ]))
        .unwrap();
        assert_eq!(c.addr, "127.0.0.1:0");
        assert_eq!(c.max_sessions, 8);
        assert_eq!(c.max_running, 2);
        assert_eq!(c.idle_timeout, Duration::from_secs(1));
        assert_eq!(c.request_timeout, Duration::from_millis(500));
        assert_eq!(c.slice, 1000);
        assert_eq!(c.max_frame, 65536);
        assert_eq!(c.io_workers, 7);
        assert_eq!(c.slow_ms, Some(250));
        assert!(!c.telemetry);
    }

    #[test]
    fn defaults_match_server_config() {
        let c = parse_config(args(&[])).unwrap();
        let d = ServerConfig::default();
        assert_eq!(c.addr, "127.0.0.1:9191");
        assert_eq!(c.max_frame, d.max_frame);
        assert_eq!(c.io_workers, d.io_workers);
        assert_eq!(c.max_sessions, d.max_sessions);
        assert!(c.telemetry, "telemetry is on by default");
        assert_eq!(c.slow_ms, None, "slow logging is opt-in");
    }

    #[test]
    fn rejects_zero_limits_and_unknown_flags() {
        assert!(parse_config(args(&["--max-sessions", "0"])).is_err());
        assert!(parse_config(args(&["--max-running", "0"])).is_err());
        assert!(parse_config(args(&["--max-frame", "16"])).is_err());
        assert!(parse_config(args(&["--bogus"])).is_err());
        assert!(parse_config(args(&["--addr"])).is_err());
        assert!(parse_config(args(&["--io-workers", "many"])).is_err());
    }
}
