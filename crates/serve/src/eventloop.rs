//! A nonblocking readiness loop serving newline-delimited JSON framing.
//!
//! The loop owns every socket: one acceptor plus N connection state
//! machines (read-accumulate → parse frame → dispatch → write-drain), all
//! driven by a single thread over std nonblocking `TcpListener`/`TcpStream`
//! (poll-style, no external event APIs). Connections are decoupled from
//! request execution: light verbs are answered inline on the loop thread,
//! heavy verbs run on a small blocking worker pool, and (for `kgate`)
//! whole requests can be relayed to an upstream connection without ever
//! tying up a thread. One thread therefore multiplexes 1000+ concurrent
//! clients while the pool bounds actual CPU concurrency.
//!
//! Per-connection invariant: **one request in flight at a time**. The loop
//! stops extracting frames from a connection while its current request
//! executes, which preserves response ordering, applies natural
//! backpressure to pipelining clients, and lets a streaming request
//! interleave event frames without interception.
//!
//! The loop is generic over a [`Service`], so `ksimd` (simulation verbs)
//! and `kgate` (routing/proxying verbs) share every byte of socket
//! machinery.

use std::collections::VecDeque;
use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::json::{self, Value};
use crate::proto::{self, ErrorCode};

/// Sleep floor between ticks when nothing progressed.
const MIN_SLEEP: Duration = Duration::from_micros(200);
/// Sleep ceiling: bounds added latency for a quiet server.
const MAX_SLEEP: Duration = Duration::from_millis(1);
/// Per-tick read chunk size.
const READ_CHUNK: usize = 64 * 1024;

/// Event-loop tuning knobs.
#[derive(Debug, Clone)]
pub struct LoopConfig {
    /// Blocking worker threads executing [`Service::perform`] jobs.
    pub workers: usize,
    /// Upper bound on one request frame, in bytes.
    pub max_frame: usize,
    /// Upper bound on concurrent connections; excess accepts are dropped.
    pub max_conns: usize,
    /// Shared serve-plane counters, updated by the loop as it runs. The
    /// service keeps a clone of this `Arc` so `server_metrics` can report
    /// loop health without a channel back into the loop thread.
    pub stats: Arc<LoopStats>,
}

impl Default for LoopConfig {
    fn default() -> Self {
        LoopConfig {
            workers: 4,
            max_frame: proto::DEFAULT_MAX_FRAME_BYTES,
            max_conns: 4096,
            stats: Arc::new(LoopStats::default()),
        }
    }
}

/// Serve-plane health counters maintained by the event loop.
///
/// All fields are monotonic counters except the gauges noted. Relaxed
/// ordering everywhere: these are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct LoopStats {
    /// Loop iterations (poll ticks) since start.
    pub poll_iterations: AtomicU64,
    /// Connections accepted.
    pub accepted: AtomicU64,
    /// Connections refused because `max_conns` was reached.
    pub refused: AtomicU64,
    /// Gauge: currently open connections.
    pub open_conns: AtomicU64,
    /// Request frames parsed and dispatched.
    pub frames: AtomicU64,
    /// Frames rejected before dispatch (oversized, non-UTF-8, malformed,
    /// or not a JSON object).
    pub frame_errors: AtomicU64,
    /// Gauge: jobs queued or executing on the worker pool.
    pub queue_depth: AtomicU64,
}

/// How the loop should execute one parsed request.
pub enum Dispatch {
    /// The response is ready; the loop writes it out directly.
    Reply(Value),
    /// Run [`Service::perform`] on the worker pool (blocking verbs).
    Pool,
    /// Relay the request to an upstream connection, forwarding frames
    /// until the final (id-bearing) response arrives (`kgate` fast path).
    Proxy(ProxyTicket),
}

/// What a [`Dispatch::Proxy`] needs: an established upstream connection
/// and the frame to forward verbatim.
pub struct ProxyTicket {
    /// The upstream socket (blocking; the loop flips it to nonblocking).
    pub upstream: TcpStream,
    /// The request line to forward, without the trailing newline.
    pub request_line: String,
    /// The client request id, for synthesizing an error response when the
    /// upstream dies mid-request.
    pub client_id: Value,
    /// Abandon the relay and fail the request after this instant.
    pub deadline: Option<Instant>,
    /// Called exactly once when the relay finishes (or fails).
    pub on_done: Box<dyn FnOnce(ProxyOutcome) + Send>,
}

/// Delivered to [`ProxyTicket::on_done`] when the relay completes.
pub struct ProxyOutcome {
    /// The parsed final response, when one arrived.
    pub response: Option<Value>,
    /// The upstream socket, healthy, synchronized, and back in blocking
    /// mode — suitable for connection pooling. `None` when the upstream
    /// failed or timed out.
    pub upstream: Option<TcpStream>,
}

/// Request interpreter plugged into the loop.
pub trait Service: Send + Sync + 'static {
    /// Classifies (and possibly answers) one request. Called on the loop
    /// thread — must not block. `raw` is the exact frame text, for
    /// services that forward requests verbatim.
    fn route(&self, request: &Value, raw: &str) -> Dispatch;

    /// Executes a [`Dispatch::Pool`] request on a worker thread. May block
    /// and may push interleaved frames into `out` before returning the
    /// final response. `wait_us` is how long the job sat in the pool queue
    /// before a worker picked it up, for the service's telemetry.
    fn perform(&self, request: &Value, out: &Arc<ConnOut>, wait_us: u64) -> Value;

    /// Whether the connection should close after `cmd`'s response flushes.
    fn closes_connection(&self, cmd: &str) -> bool {
        cmd == "shutdown"
    }
}

/// Outbound frame buffer shared between the loop (which drains it to the
/// socket) and frame producers (the loop itself, pool workers, streaming
/// observers).
pub struct ConnOut {
    bytes: Mutex<Vec<u8>>,
}

impl ConnOut {
    fn new() -> Arc<ConnOut> {
        Arc::new(ConnOut { bytes: Mutex::new(Vec::new()) })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<u8>> {
        self.bytes.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Appends one frame (a newline is added).
    pub fn push_line(&self, line: &str) {
        let mut bytes = self.lock();
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
    }

    /// Appends one response object as a frame.
    pub fn push_response(&self, response: &Value) {
        self.push_line(&response.to_json());
    }

    fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Takes up to `max` buffered bytes for writing.
    fn take_chunk(&self, max: usize) -> Vec<u8> {
        let mut bytes = self.lock();
        let n = bytes.len().min(max);
        bytes.drain(..n).collect()
    }

    /// Returns unwritten bytes to the front after a short write.
    fn unshift(&self, rest: &[u8]) {
        let mut bytes = self.lock();
        bytes.splice(..0, rest.iter().copied());
    }
}

struct Job {
    request: Value,
    out: Arc<ConnOut>,
    busy: Arc<AtomicBool>,
    enqueued: Instant,
}

struct PoolInner {
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    live: AtomicBool,
    /// Jobs queued or executing (the drain-exit barrier).
    active: AtomicUsize,
}

/// The blocking worker pool behind [`Dispatch::Pool`].
struct Pool {
    inner: Arc<PoolInner>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    fn start<S: Service>(workers: usize, service: &Arc<S>) -> Pool {
        let inner = Arc::new(PoolInner {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            live: AtomicBool::new(true),
            active: AtomicUsize::new(0),
        });
        let handles = (0..workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                let service = Arc::clone(service);
                std::thread::spawn(move || worker_loop(&inner, &*service))
            })
            .collect();
        Pool { inner, handles }
    }

    fn submit(&self, job: Job) {
        self.inner.active.fetch_add(1, Ordering::SeqCst);
        let mut queue = self.inner.queue.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        queue.push_back(job);
        drop(queue);
        self.inner.cv.notify_one();
    }

    fn idle(&self) -> bool {
        self.inner.active.load(Ordering::SeqCst) == 0
    }

    fn stop(self) {
        self.inner.live.store(false, Ordering::SeqCst);
        self.inner.cv.notify_all();
        for h in self.handles {
            let _ = h.join();
        }
    }
}

fn worker_loop<S: Service>(inner: &PoolInner, service: &S) {
    loop {
        let job = {
            let mut queue =
                inner.queue.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if !inner.live.load(Ordering::SeqCst) {
                    return;
                }
                queue = inner
                    .cv
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .0;
            }
        };
        let wait_us = u64::try_from(job.enqueued.elapsed().as_micros()).unwrap_or(u64::MAX);
        let response = service.perform(&job.request, &job.out, wait_us);
        job.out.push_response(&response);
        job.busy.store(false, Ordering::SeqCst);
        inner.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// An in-flight upstream relay (see [`Dispatch::Proxy`]).
struct ProxyState {
    upstream: TcpStream,
    to_upstream: Vec<u8>,
    from_upstream: Vec<u8>,
    scanned: usize,
    client_id: Value,
    deadline: Option<Instant>,
    on_done: Option<Box<dyn FnOnce(ProxyOutcome) + Send>>,
}

impl ProxyState {
    fn finish(&mut self, response: Option<Value>, healthy: bool) {
        if let Some(done) = self.on_done.take() {
            let upstream = if healthy && self.from_upstream.is_empty() {
                let _ = self.upstream.set_nonblocking(false);
                self.upstream.try_clone().ok()
            } else {
                None
            };
            done(ProxyOutcome { response, upstream });
        }
    }
}

/// One connection state machine.
struct Conn {
    stream: TcpStream,
    out: Arc<ConnOut>,
    busy: Arc<AtomicBool>,
    inbound: Vec<u8>,
    /// How far `inbound` has been scanned for a newline (avoids O(n²)
    /// rescans while a large or slow frame accumulates).
    scanned: usize,
    /// Discarding an oversized frame until its newline (already rejected).
    skipping: bool,
    eof: bool,
    dead: bool,
    close_after_flush: bool,
    proxy: Option<ProxyState>,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            out: ConnOut::new(),
            busy: Arc::new(AtomicBool::new(false)),
            inbound: Vec::new(),
            scanned: 0,
            skipping: false,
            eof: false,
            dead: false,
            close_after_flush: false,
            proxy: None,
        }
    }

    fn is_busy(&self) -> bool {
        self.busy.load(Ordering::SeqCst)
    }

    /// Drives the state machine one step. Returns `(keep, progress)`.
    fn tick<S: Service>(
        &mut self,
        service: &S,
        pool: &Pool,
        config: &LoopConfig,
        draining: bool,
        scratch: &mut [u8],
    ) -> (bool, bool) {
        let mut progress = false;
        if self.proxy.is_some() {
            progress |= self.pump_proxy(config, scratch);
        }
        progress |= self.flush();
        if self.dead {
            self.abort_proxy();
            return (false, true);
        }
        // Read only while no request is in flight: single-request
        // discipline doubles as backpressure.
        if !self.is_busy() && !self.eof && !draining {
            progress |= self.fill_inbound(scratch);
        }
        while !self.is_busy() && !self.dead {
            if !self.step_frames(service, pool, config) {
                break;
            }
            progress = true;
        }
        progress |= self.flush();
        let quiesced = !self.is_busy() && self.out.is_empty() && self.proxy.is_none();
        if self.dead
            || (quiesced
                && (self.close_after_flush
                    || draining
                    || (self.eof && !self.has_complete_frame())))
        {
            self.abort_proxy();
            return (false, true);
        }
        (true, progress)
    }

    fn abort_proxy(&mut self) {
        if let Some(mut proxy) = self.proxy.take() {
            proxy.finish(None, false);
            self.busy.store(false, Ordering::SeqCst);
        }
    }

    /// Drains buffered output to the socket; returns whether bytes moved.
    fn flush(&mut self) -> bool {
        let mut progress = false;
        loop {
            let chunk = self.out.take_chunk(READ_CHUNK);
            if chunk.is_empty() {
                return progress;
            }
            match self.stream.write(&chunk) {
                Ok(0) => {
                    self.dead = true;
                    return true;
                }
                Ok(n) => {
                    progress = true;
                    if n < chunk.len() {
                        self.out.unshift(&chunk[n..]);
                        return progress;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.out.unshift(&chunk);
                    return progress;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                    self.out.unshift(&chunk);
                }
                Err(_) => {
                    self.dead = true;
                    return true;
                }
            }
        }
    }

    /// Reads available bytes into the inbound buffer (up to one chunk per
    /// tick, so one firehose client cannot starve the loop).
    fn fill_inbound(&mut self, scratch: &mut [u8]) -> bool {
        match self.stream.read(scratch) {
            Ok(0) => {
                self.eof = true;
                true
            }
            Ok(n) => {
                self.inbound.extend_from_slice(&scratch[..n]);
                true
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::Interrupted
                ) =>
            {
                false
            }
            Err(_) => {
                self.dead = true;
                true
            }
        }
    }

    fn has_complete_frame(&self) -> bool {
        self.inbound.contains(&b'\n')
    }

    /// Extracts and dispatches at most one frame; returns whether one was
    /// consumed (call again) or the buffer has no complete frame yet.
    fn step_frames<S: Service>(
        &mut self,
        service: &S,
        pool: &Pool,
        config: &LoopConfig,
    ) -> bool {
        if self.skipping {
            // Discard the remainder of an already-rejected oversized frame.
            match self.inbound.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    self.inbound.drain(..=i);
                    self.scanned = 0;
                    self.skipping = false;
                    return true;
                }
                None => {
                    self.inbound.clear();
                    self.scanned = 0;
                    return false;
                }
            }
        }
        let newline = self.inbound[self.scanned..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|i| self.scanned + i);
        let Some(end) = newline else {
            self.scanned = self.inbound.len();
            if self.inbound.len() >= config.max_frame {
                // Oversized frame: reject once now, discard to its newline.
                config.stats.frame_errors.fetch_add(1, Ordering::Relaxed);
                self.out.push_response(&oversized(config.max_frame));
                self.inbound.clear();
                self.scanned = 0;
                self.skipping = true;
            }
            return false;
        };
        let frame: Vec<u8> = self.inbound.drain(..=end).collect();
        self.scanned = 0;
        let frame = &frame[..frame.len() - 1];
        if frame.len() >= config.max_frame {
            config.stats.frame_errors.fetch_add(1, Ordering::Relaxed);
            self.out.push_response(&oversized(config.max_frame));
            return true;
        }
        let Ok(text) = std::str::from_utf8(frame) else {
            config.stats.frame_errors.fetch_add(1, Ordering::Relaxed);
            self.out.push_response(&proto::error_response(
                Value::Null,
                ErrorCode::BadFrame,
                "frame is not UTF-8",
                None,
            ));
            return true;
        };
        let text = text.trim();
        if text.is_empty() {
            return true; // blank keep-alive lines are legal
        }
        let request = match json::parse(text) {
            Ok(v @ Value::Obj(_)) => v,
            Ok(_) => {
                config.stats.frame_errors.fetch_add(1, Ordering::Relaxed);
                self.out.push_response(&proto::error_response(
                    Value::Null,
                    ErrorCode::BadFrame,
                    "frame must be a JSON object",
                    None,
                ));
                return true;
            }
            Err(e) => {
                // Malformed frame: report and recover at the next newline.
                config.stats.frame_errors.fetch_add(1, Ordering::Relaxed);
                self.out.push_response(&proto::error_response(
                    Value::Null,
                    ErrorCode::BadFrame,
                    &format!("malformed frame: {e}"),
                    None,
                ));
                return true;
            }
        };
        config.stats.frames.fetch_add(1, Ordering::Relaxed);
        let cmd = request.get("cmd").and_then(Value::as_str).unwrap_or("").to_string();
        match service.route(&request, text) {
            Dispatch::Reply(response) => {
                self.out.push_response(&response);
                if service.closes_connection(&cmd) {
                    self.close_after_flush = true;
                }
            }
            Dispatch::Pool => {
                self.busy.store(true, Ordering::SeqCst);
                pool.submit(Job {
                    request,
                    out: Arc::clone(&self.out),
                    busy: Arc::clone(&self.busy),
                    enqueued: Instant::now(),
                });
            }
            Dispatch::Proxy(ticket) => {
                self.busy.store(true, Ordering::SeqCst);
                self.start_proxy(ticket);
            }
        }
        true
    }

    fn start_proxy(&mut self, ticket: ProxyTicket) {
        if ticket.upstream.set_nonblocking(true).is_err() {
            self.out.push_response(&proto::error_response(
                ticket.client_id.clone(),
                ErrorCode::Unavailable,
                "cannot prepare upstream connection",
                None,
            ));
            (ticket.on_done)(ProxyOutcome { response: None, upstream: None });
            self.busy.store(false, Ordering::SeqCst);
            return;
        }
        let mut to_upstream = ticket.request_line.into_bytes();
        to_upstream.push(b'\n');
        self.proxy = Some(ProxyState {
            upstream: ticket.upstream,
            to_upstream,
            from_upstream: Vec::new(),
            scanned: 0,
            client_id: ticket.client_id,
            deadline: ticket.deadline,
            on_done: Some(ticket.on_done),
        });
    }

    fn proxy_failed(&mut self, why: &str) -> bool {
        let Some(mut proxy) = self.proxy.take() else { return false };
        self.out.push_response(&proto::error_response(
            proxy.client_id.clone(),
            ErrorCode::Unavailable,
            why,
            None,
        ));
        proxy.finish(None, false);
        self.busy.store(false, Ordering::SeqCst);
        true
    }

    /// Advances an upstream relay; returns whether bytes moved.
    fn pump_proxy(&mut self, config: &LoopConfig, scratch: &mut [u8]) -> bool {
        let mut progress = false;
        if let Some(deadline) = self.proxy.as_ref().and_then(|p| p.deadline) {
            if Instant::now() >= deadline {
                return self.proxy_failed("upstream worker timed out");
            }
        }
        // Forward the request.
        loop {
            let Some(proxy) = self.proxy.as_mut() else { return progress };
            if proxy.to_upstream.is_empty() {
                break;
            }
            match proxy.upstream.write(&proxy.to_upstream) {
                Ok(0) => return self.proxy_failed("upstream connection lost"),
                Ok(n) => {
                    proxy.to_upstream.drain(..n);
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return self.proxy_failed("upstream connection lost"),
            }
        }
        // Relay response frames until the final (id-bearing) one.
        loop {
            let Some(proxy) = self.proxy.as_mut() else { return progress };
            // Drain complete lines already buffered.
            while let Some(end) = proxy.from_upstream[proxy.scanned..]
                .iter()
                .position(|&b| b == b'\n')
                .map(|i| proxy.scanned + i)
            {
                let line: Vec<u8> = proxy.from_upstream.drain(..=end).collect();
                proxy.scanned = 0;
                let Ok(text) = std::str::from_utf8(&line[..line.len() - 1]) else {
                    continue;
                };
                let text = text.trim();
                if text.is_empty() {
                    continue;
                }
                // Forward verbatim; a frame carrying `id` is the final
                // response (stream frames have none).
                self.out.push_line(text);
                progress = true;
                let parsed = json::parse(text).ok();
                let is_final = parsed.as_ref().is_some_and(|v| v.get("id").is_some());
                if is_final {
                    let Some(mut proxy) = self.proxy.take() else { return progress };
                    proxy.finish(parsed, true);
                    self.busy.store(false, Ordering::SeqCst);
                    return true;
                }
            }
            proxy.scanned = proxy.from_upstream.len();
            if proxy.from_upstream.len() > config.max_frame.saturating_mul(2) {
                return self.proxy_failed("upstream frame exceeds the relay cap");
            }
            match proxy.upstream.read(scratch) {
                Ok(0) => return self.proxy_failed("upstream connection lost"),
                Ok(n) => {
                    proxy.from_upstream.extend_from_slice(&scratch[..n]);
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return progress,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return self.proxy_failed("upstream connection lost"),
            }
        }
    }
}

fn oversized(max_frame: usize) -> Value {
    proto::error_response(
        Value::Null,
        ErrorCode::BadFrame,
        &format!("frame exceeds {max_frame} bytes"),
        None,
    )
}

/// The readiness loop: an acceptor plus connection state machines plus the
/// worker pool, driven from [`EventLoop::run`]'s calling thread.
pub struct EventLoop<S: Service> {
    listener: TcpListener,
    service: Arc<S>,
    draining: Arc<AtomicBool>,
    config: LoopConfig,
}

impl<S: Service> EventLoop<S> {
    /// Wraps a bound listener. `draining` is the shared drain flag: once
    /// set (by the service or an external handle), the loop stops
    /// accepting, finishes in-flight requests, flushes, and returns.
    pub fn new(
        listener: TcpListener,
        service: Arc<S>,
        draining: Arc<AtomicBool>,
        config: LoopConfig,
    ) -> EventLoop<S> {
        EventLoop { listener, service, draining, config }
    }

    /// Runs until drained. See the module docs for the tick structure.
    ///
    /// # Errors
    ///
    /// Propagates listener setup failures (per-connection I/O errors only
    /// terminate that connection).
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let pool = Pool::start(self.config.workers, &self.service);
        let mut conns: Vec<Conn> = Vec::new();
        let mut scratch = vec![0u8; READ_CHUNK];
        let mut sleep = MIN_SLEEP;
        let stats = Arc::clone(&self.config.stats);
        loop {
            let draining = self.draining.load(Ordering::SeqCst);
            stats.poll_iterations.fetch_add(1, Ordering::Relaxed);
            let mut progress = false;
            if !draining {
                loop {
                    match self.listener.accept() {
                        Ok((stream, _)) => {
                            progress = true;
                            if conns.len() >= self.config.max_conns {
                                stats.refused.fetch_add(1, Ordering::Relaxed);
                                drop(stream); // over the guard: refuse
                                continue;
                            }
                            let _ = stream.set_nonblocking(true);
                            let _ = stream.set_nodelay(true);
                            stats.accepted.fetch_add(1, Ordering::Relaxed);
                            conns.push(Conn::new(stream));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => break,
                    }
                }
            }
            let mut i = 0;
            while i < conns.len() {
                let (keep, p) =
                    conns[i].tick(&*self.service, &pool, &self.config, draining, &mut scratch);
                progress |= p;
                if keep {
                    i += 1;
                } else {
                    conns.swap_remove(i);
                    progress = true;
                }
            }
            stats.open_conns.store(conns.len() as u64, Ordering::Relaxed);
            stats
                .queue_depth
                .store(pool.inner.active.load(Ordering::SeqCst) as u64, Ordering::Relaxed);
            if draining && conns.is_empty() && pool.idle() {
                pool.stop();
                return Ok(());
            }
            if progress {
                sleep = MIN_SLEEP;
            } else {
                std::thread::sleep(sleep);
                sleep = (sleep * 2).min(MAX_SLEEP);
            }
        }
    }
}
