//! Serving the KAHRISMA simulator: a multi-session daemon and its client.
//!
//! Every existing entry point (`ksim`, `kbatch`) is a cold-start batch
//! process: each invocation pays ELF load plus decode-cache warmup before
//! the first useful instruction. The paper's simulator design — an
//! interpretation-based core with an address-keyed decode cache (§V-A) —
//! rewards exactly the opposite shape: a long-lived resident simulator
//! whose cache stays warm across requests. This crate provides it:
//!
//! * [`eventloop`] — the nonblocking readiness loop every daemon runs on:
//!   one thread multiplexing thousands of connection state machines over a
//!   small blocking worker pool (and, for gateways, zero-thread request
//!   relaying to upstream daemons),
//! * [`server`] — the `ksimd` daemon: a bounded table of named sessions
//!   (each a [`kahrisma_core::Simulator`]), budget-sliced request
//!   execution, LRU + idle-timeout eviction, admission control with
//!   `retry_after_ms` back-pressure, session `export`/`import` migration,
//!   and graceful drain,
//! * [`proto`] — the newline-delimited-JSON wire protocol,
//! * [`json`] — the dependency-free nested JSON parser/serializer behind
//!   it,
//! * [`session`] — sessions and the concurrency-safe session table,
//! * [`telemetry`] — wire conversions for request spans and metrics
//!   reports (the `trace` / `server_metrics` verbs and their aggregation),
//! * [`client`] — the typed client used by `kctl` and `kbatch --daemon`,
//! * [`mod@bench`] — the `kctl bench` serving benchmark (latency percentiles,
//!   served vs. direct throughput).
//!
//! Everything is std-only: TCP + threads, no external dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod client;
pub mod eventloop;
pub mod json;
pub mod proto;
pub mod server;
pub mod session;
pub mod telemetry;

pub use client::{Client, ClientError, ServerLoad};
pub use server::{Daemon, DaemonHandle, ServerConfig};
pub use session::{Session, SessionSpec, SessionTable};
