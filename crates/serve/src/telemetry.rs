//! Wire conversions for serve-plane telemetry.
//!
//! [`Span`]s and [`MetricsRegistry`] reports cross the fleet as JSON — a
//! worker answers `trace` / `server_metrics`, the gate re-parses those
//! responses to merge them, and `kctl` parses the merged report to render
//! `top`. This module holds both directions of that conversion so the
//! three processes agree on the shape: spans as flat objects, registries
//! as the `{"schema_version":N,"counters":…,"gauges":…,"histograms":…}`
//! document [`MetricsRegistry::write_json`] emits.

use kahrisma_observe::{Histogram, MetricsRegistry, Span, SpanKind};

use crate::json::{self, Value};

/// Escapes a string for interpolation into a hand-built JSON document
/// (the daemon's structured slow-request log line).
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Builds the wire object for one span — the row shape the `trace` verb
/// returns (see [`Span::to_json`] for the field list).
#[must_use]
pub fn span_to_value(span: &Span) -> Value {
    json::obj([
        ("trace", Value::Num(span.trace as f64)),
        ("kind", Value::Str(span.kind.as_str().to_string())),
        ("verb", Value::Str(span.verb.clone())),
        ("session", Value::Str(span.session.clone())),
        ("start_us", Value::Num(span.start_us as f64)),
        ("queue_us", Value::Num(span.queue_us as f64)),
        ("exec_us", Value::Num(span.exec_us as f64)),
        ("ok", Value::Bool(span.ok)),
    ])
}

/// Parses one span row back from the wire. Returns `None` when a required
/// field is missing or mistyped (a malformed or foreign row is skipped,
/// not an error — trace data is best-effort).
#[must_use]
pub fn span_from_value(v: &Value) -> Option<Span> {
    Some(Span {
        trace: v.get("trace").and_then(Value::as_u64)?,
        kind: SpanKind::parse(v.get("kind").and_then(Value::as_str)?)?,
        verb: v.get("verb").and_then(Value::as_str)?.to_string(),
        session: v.get("session").and_then(Value::as_str).unwrap_or("").to_string(),
        start_us: v.get("start_us").and_then(Value::as_u64)?,
        queue_us: v.get("queue_us").and_then(Value::as_u64).unwrap_or(0),
        exec_us: v.get("exec_us").and_then(Value::as_u64).unwrap_or(0),
        ok: v.get("ok").and_then(Value::as_bool).unwrap_or(true),
    })
}

/// The `counters` / `gauges` / `histograms` fields of a serialized
/// registry, as wire values ready to splice into a response object.
/// Parsing our own serializer's output cannot fail, so this returns the
/// three fields directly.
#[must_use]
pub fn registry_to_fields(registry: &MetricsRegistry) -> Vec<(String, Value)> {
    let parsed = json::parse(&registry.to_json()).expect("registry JSON is valid");
    let Value::Obj(fields) = parsed else { unreachable!("registry serializes an object") };
    fields.into_iter().filter(|(k, _)| k != "schema_version").collect()
}

/// Rebuilds a [`MetricsRegistry`] from a wire report carrying `counters`,
/// `gauges`, and `histograms` fields (a worker's `server_metrics`
/// response). Unknown or mistyped entries are skipped: a newer worker
/// must not break an older aggregator.
#[must_use]
pub fn registry_from_value(v: &Value) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    if let Some(Value::Obj(counters)) = v.get("counters") {
        for (k, c) in counters {
            if let Some(n) = c.as_u64() {
                reg.count(k, n);
            }
        }
    }
    if let Some(Value::Obj(gauges)) = v.get("gauges") {
        for (k, g) in gauges {
            if let Some(n) = g.as_f64() {
                reg.set_gauge(k, n);
            }
        }
    }
    if let Some(Value::Obj(histograms)) = v.get("histograms") {
        for (k, h) in histograms {
            if let Some(parsed) = histogram_from_value(h) {
                reg.set_histogram(k, parsed);
            }
        }
    }
    reg
}

/// Parses one serialized histogram (`{"count":…,"sum":…,"min":…,"max":…,
/// "buckets":[[lo,c],…]}`) back into a [`Histogram`].
#[must_use]
pub fn histogram_from_value(v: &Value) -> Option<Histogram> {
    let count = v.get("count").and_then(Value::as_u64)?;
    let sum = v.get("sum").and_then(Value::as_u64).unwrap_or(0);
    let min = v.get("min").and_then(Value::as_u64).unwrap_or(0);
    let max = v.get("max").and_then(Value::as_u64).unwrap_or(0);
    let mut buckets = Vec::new();
    if let Some(rows) = v.get("buckets").and_then(Value::as_arr) {
        for row in rows {
            let pair = row.as_arr()?;
            if pair.len() != 2 {
                return None;
            }
            buckets.push((pair[0].as_u64()?, pair[1].as_u64()?));
        }
    }
    Some(Histogram::from_parts(count, sum, min, max, &buckets))
}
