//! The `ksimd` wire protocol: newline-delimited JSON frames.
//!
//! Every request is one single-line JSON object terminated by `\n`:
//!
//! ```text
//! {"id":1,"cmd":"create","name":"a","workload":"dct","isa":"risc"}
//! {"id":2,"cmd":"run","name":"a","budget":4000000}
//! ```
//!
//! Every response echoes the request `id` and carries `ok`:
//!
//! ```text
//! {"id":2,"ok":true,"outcome":"halted","instructions":123456,...}
//! {"id":2,"ok":false,"code":"overloaded","error":"...","retry_after_ms":250}
//! ```
//!
//! A `stream` request additionally interleaves event frames (no `id`,
//! tagged `"stream"`) before its final response. Malformed lines produce a
//! `bad_frame` error response with `id:null` and do **not** close the
//! connection — like the campaign manifest reader, the server recovers at
//! the next newline.

use crate::json::{obj, Value};

/// The historical frame cap from protocol v1's first daemon. Kept for
/// clients that want a conservative bound; the daemon's actual cap is
/// configurable (`ksimd --max-frame`) and advertised in `ping`.
pub const MAX_FRAME_BYTES: usize = 64 * 1024;

/// Default upper bound on one request line, in bytes (DoS guard). Sized so
/// an `export`ed snapshot of a typical session (registers + touched pages,
/// hex-encoded) fits in one frame.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 8 * 1024 * 1024;

/// Version of this wire protocol. Advertised in every `ping` and `create`
/// response as `proto_version`; clients refuse to proceed on a mismatch
/// (see `Client::handshake`). Bump on any incompatible change to request
/// or response shapes.
pub const PROTO_VERSION: u64 = 1;

/// Machine-readable error category carried in `code`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid single-line JSON (or was oversized).
    BadFrame,
    /// The frame was valid JSON but not a valid request.
    BadRequest,
    /// The named session does not exist (possibly evicted).
    NotFound,
    /// The named session is currently executing another request.
    Busy,
    /// Admission control rejected the request; retry after
    /// `retry_after_ms`.
    Overloaded,
    /// The server is draining and accepts no new work.
    Draining,
    /// The simulation itself failed (fault in the simulated program).
    SimFault,
    /// The request was valid but could not be honored (e.g. snapshot of an
    /// unsupported model).
    Unsupported,
    /// A gateway could not reach (or lost) the upstream worker owning the
    /// session; the request may be retried.
    Unavailable,
}

impl ErrorCode {
    /// Every code, in wire-tag order (for exhaustive client handling).
    pub const ALL: [ErrorCode; 9] = [
        ErrorCode::BadFrame,
        ErrorCode::BadRequest,
        ErrorCode::NotFound,
        ErrorCode::Busy,
        ErrorCode::Overloaded,
        ErrorCode::Draining,
        ErrorCode::SimFault,
        ErrorCode::Unsupported,
        ErrorCode::Unavailable,
    ];

    /// The wire tag.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadFrame => "bad_frame",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::NotFound => "not_found",
            ErrorCode::Busy => "busy",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Draining => "draining",
            ErrorCode::SimFault => "sim_fault",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::Unavailable => "unavailable",
        }
    }

    /// Parses a wire tag back into a code (client side).
    #[must_use]
    pub fn parse(tag: &str) -> Option<ErrorCode> {
        ErrorCode::ALL.into_iter().find(|c| c.as_str() == tag)
    }
}

/// Builds a success response carrying the request id and extra fields.
#[must_use]
pub fn ok_response(id: Value, fields: Vec<(String, Value)>) -> Value {
    let mut all = vec![("id".to_string(), id), ("ok".to_string(), Value::Bool(true))];
    all.extend(fields);
    Value::Obj(all)
}

/// Builds an error response; `retry_after_ms` is attached for
/// [`ErrorCode::Overloaded`] so clients can back off.
#[must_use]
pub fn error_response(
    id: Value,
    code: ErrorCode,
    message: &str,
    retry_after_ms: Option<u64>,
) -> Value {
    let mut fields = vec![
        ("id".to_string(), id),
        ("ok".to_string(), Value::Bool(false)),
        ("code".to_string(), Value::Str(code.as_str().to_string())),
        ("error".to_string(), Value::Str(message.to_string())),
    ];
    if let Some(ms) = retry_after_ms {
        fields.push(("retry_after_ms".to_string(), Value::Num(ms as f64)));
    }
    Value::Obj(fields)
}

/// Wraps an event-frame JSON line (from `kahrisma_observe::frame`) in a
/// stream frame for `session`.
#[must_use]
pub fn stream_frame(session: &str, event_json: &str) -> String {
    let mut line = String::with_capacity(event_json.len() + session.len() + 16);
    line.push_str("{\"stream\":");
    line.push_str(&Value::Str(session.to_string()).to_json());
    line.push_str(",\"event\":");
    line.push_str(event_json);
    line.push('}');
    line
}

/// `true` when a received frame is a stream event rather than a response.
#[must_use]
pub fn is_stream_frame(frame: &Value) -> bool {
    frame.get("stream").is_some()
}

/// Shorthand: a minimal `{id, ok:true}` response.
#[must_use]
pub fn ack(id: Value) -> Value {
    obj([("id", id), ("ok", Value::Bool(true))])
}

/// Lowercase hex encoding for binary payloads carried inside JSON string
/// fields (`export`/`import` snapshot bytes).
#[must_use]
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit(u32::from(b >> 4), 16).expect("nibble"));
        out.push(char::from_digit(u32::from(b & 0xF), 16).expect("nibble"));
    }
    out
}

/// Decodes [`to_hex`] output (case-insensitive). `None` on odd length or a
/// non-hex digit.
#[must_use]
pub fn from_hex(text: &str) -> Option<Vec<u8>> {
    if !text.len().is_multiple_of(2) {
        return None;
    }
    let digits = text.as_bytes();
    let mut out = Vec::with_capacity(digits.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn responses_echo_id_and_carry_code() {
        let r = error_response(Value::Num(9.0), ErrorCode::Overloaded, "full", Some(250));
        let text = r.to_json();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("id").unwrap().as_u64(), Some(9));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("code").unwrap().as_str(), Some("overloaded"));
        assert_eq!(v.get("retry_after_ms").unwrap().as_u64(), Some(250));
    }

    #[test]
    fn error_codes_round_trip_through_wire_tags() {
        for code in ErrorCode::ALL {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::parse("no_such_code"), None);
    }

    #[test]
    fn hex_round_trips_and_rejects_junk() {
        let bytes: Vec<u8> = (0..=255).collect();
        let hex = to_hex(&bytes);
        assert_eq!(from_hex(&hex).as_deref(), Some(&bytes[..]));
        assert_eq!(from_hex(&hex.to_uppercase()).as_deref(), Some(&bytes[..]));
        assert_eq!(from_hex("abc"), None, "odd length");
        assert_eq!(from_hex("zz"), None, "non-hex digit");
        assert_eq!(from_hex("").as_deref(), Some(&[][..]));
    }

    #[test]
    fn stream_frames_parse_and_are_distinguishable() {
        let line = stream_frame("sess-1", r#"{"event":"cache_hit","addr":4}"#);
        let v = parse(&line).unwrap();
        assert!(is_stream_frame(&v));
        assert_eq!(v.get("stream").unwrap().as_str(), Some("sess-1"));
        assert_eq!(v.get("event").unwrap().get("addr").unwrap().as_u64(), Some(4));
        assert!(!is_stream_frame(&ack(Value::Num(1.0))));
    }
}
