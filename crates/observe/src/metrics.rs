//! Named counters, gauges, and log2-bucketed histograms with deterministic
//! JSON serialization.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A log2-bucketed histogram of unsigned samples.
///
/// Bucket `0` holds the value `0`; bucket `i > 0` holds values in
/// `[2^(i-1), 2^i)`. Sixty-five buckets cover the full `u64` range, so
/// recording never saturates or reallocates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; 65], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = if value == 0 { 0 } else { 64 - value.leading_zeros() as usize };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean of recorded samples, `0.0` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Occupied buckets as `(lower_bound, count)` pairs, ascending.
    pub fn occupied_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|&(_, &c)| c > 0).map(|(i, &c)| {
            let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
            (lo, c)
        })
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) from the log2 buckets: the
    /// lower bound of the bucket holding the `ceil(q·count)`-th sample,
    /// clamped into the recorded `[min, max]` range. `None` when empty.
    ///
    /// The estimate is conservative (a bucket lower bound), which is the
    /// right bias for latency reporting: p99 never reads *higher* than the
    /// data supports.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * count), at least 1 so q=0 reads the min bucket.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                return Some(lo.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Reconstructs a histogram from its serialized summary — the
    /// `(count, sum, min, max)` header plus occupied `(lower_bound, count)`
    /// bucket pairs, exactly the shape a serialized registry carries. The
    /// receiving half of a wire metrics report (`kgate` rebuilding worker
    /// histograms before a fleet merge).
    #[must_use]
    pub fn from_parts(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        buckets: &[(u64, u64)],
    ) -> Histogram {
        let mut h = Histogram::new();
        for &(lo, c) in buckets {
            let bucket = if lo == 0 { 0 } else { 64 - lo.leading_zeros() as usize };
            h.buckets[bucket] += c;
        }
        h.count = count;
        h.sum = sum;
        h.min = if count == 0 { u64::MAX } else { min };
        h.max = max;
        h
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"buckets\":[",
            self.count,
            self.sum,
            self.min().unwrap_or(0),
            self.max().unwrap_or(0),
            fmt_f64(self.mean()),
        );
        let mut first = true;
        for (lo, c) in self.occupied_buckets() {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "[{lo},{c}]");
        }
        out.push_str("]}");
    }
}

/// Formats an `f64` as a JSON number; non-finite values become `0`.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() { format!("{v}") } else { "0".into() }
}

/// Escapes a string for inclusion in a JSON document.
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A registry of named counters, gauges, and histograms.
///
/// Keys are stored in [`BTreeMap`]s, so serialization order — and therefore
/// the emitted JSON — is deterministic: the same recorded values always
/// produce byte-identical output, regardless of insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to counter `name` (creating it at zero).
    pub fn count(&mut self, name: &str, delta: u64) {
        *self.entry_counter(name) += delta;
    }

    /// Sets counter `name` to an absolute value.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        *self.entry_counter(name) = value;
    }

    /// Sets gauge `name`; non-finite values are recorded as `0.0` so the
    /// serialized document is always valid, NaN-free JSON.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        let v = if value.is_finite() { value } else { 0.0 };
        match self.gauges.get_mut(name) {
            Some(g) => *g = v,
            None => {
                self.gauges.insert(name.to_owned(), v);
            }
        }
    }

    /// Installs `histogram` under `name`, replacing any existing one. The
    /// receiving half of a wire report: an aggregator reconstructs each
    /// histogram with [`Histogram::from_parts`] and installs it here
    /// before merging fleet-wide.
    pub fn set_histogram(&mut self, name: &str, histogram: Histogram) {
        self.histograms.insert(name.to_owned(), histogram);
    }

    /// Records `value` into histogram `name` (creating it empty).
    pub fn record(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::new();
            h.record(value);
            self.histograms.insert(name.to_owned(), h);
        }
    }

    fn entry_counter(&mut self, name: &str) -> &mut u64 {
        if !self.counters.contains_key(name) {
            self.counters.insert(name.to_owned(), 0);
        }
        self.counters.get_mut(name).expect("just inserted")
    }

    /// The value of counter `name`, 0 when absent.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The value of gauge `name`, if set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The histogram `name`, if any sample was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merges another registry: counters add, gauges take the maximum,
    /// histograms merge bucket-wise.
    ///
    /// These semantics make `merge` commutative and associative with the
    /// empty registry as identity (see the workspace property tests), so a
    /// fleet aggregator (`kgate`) can fold worker reports in any order and
    /// always emit the same document.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            self.count(k, *v);
        }
        for (k, v) in &other.gauges {
            let merged = self.gauge(k).map_or(*v, |mine| mine.max(*v));
            self.set_gauge(k, merged);
        }
        for (k, h) in &other.histograms {
            if let Some(mine) = self.histograms.get_mut(k) {
                mine.merge(h);
            } else {
                self.histograms.insert(k.clone(), h.clone());
            }
        }
    }

    /// Serializes the registry as a compact JSON object with the fixed
    /// shape `{"schema_version":N,"counters":{…},"gauges":{…},"histograms":{…}}`,
    /// keys sorted. The version is [`kahrisma_core::STATS_SCHEMA_VERSION`],
    /// shared with every other JSON artifact the workspace emits.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        self.write_json(&mut out);
        out
    }

    /// Serializes into an existing buffer (see [`MetricsRegistry::to_json`]).
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"schema_version\":{},",
            kahrisma_core::STATS_SCHEMA_VERSION
        );
        out.push_str("\"counters\":{");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            escape(k, out);
            let _ = write!(out, "\":{v}");
        }
        out.push_str("},\"gauges\":{");
        first = true;
        for (k, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            escape(k, out);
            out.push_str("\":");
            out.push_str(&fmt_f64(*v));
        }
        out.push_str("},\"histograms\":{");
        first = true;
        for (k, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            escape(k, out);
            out.push_str("\":");
            h.write_json(out);
        }
        out.push_str("}}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        let buckets: Vec<(u64, u64)> = h.occupied_buckets().collect();
        // 0 → [0]; 1 → [1,2); 2,3 → [2,4); 4,7 → [4,8); 8 → [8,16); 1024 → [1024,2048)
        assert_eq!(buckets, vec![(0, 1), (1, 1), (2, 2), (4, 2), (8, 1), (1024, 1)]);
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1024));
        assert_eq!(h.sum(), 1049);
    }

    #[test]
    fn histogram_handles_extremes() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), u64::MAX); // saturating
        let buckets: Vec<(u64, u64)> = h.occupied_buckets().collect();
        assert_eq!(buckets, vec![(1u64 << 63, 2)]);
    }

    #[test]
    fn registry_json_is_deterministic_and_sorted() {
        let mut a = MetricsRegistry::new();
        a.count("zebra", 1);
        a.count("alpha", 2);
        a.set_gauge("mips", 12.5);
        a.record("len", 3);
        let mut b = MetricsRegistry::new();
        b.record("len", 3);
        b.set_gauge("mips", 12.5);
        b.count("alpha", 2);
        b.count("zebra", 1);
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.to_json().find("alpha").unwrap() < a.to_json().find("zebra").unwrap());
        crate::json_lint::validate(&a.to_json()).expect("valid JSON");
    }

    #[test]
    fn gauges_sanitize_non_finite() {
        let mut r = MetricsRegistry::new();
        r.set_gauge("a", f64::NAN);
        r.set_gauge("b", f64::INFINITY);
        assert_eq!(r.gauge("a"), Some(0.0));
        assert_eq!(r.gauge("b"), Some(0.0));
        assert!(!r.to_json().contains("NaN"));
        assert!(!r.to_json().contains("inf"));
        crate::json_lint::validate(&r.to_json()).expect("valid JSON");
    }

    #[test]
    fn merge_combines() {
        let mut a = MetricsRegistry::new();
        a.count("c", 1);
        a.record("h", 2);
        a.set_gauge("g", 3.0);
        let mut b = MetricsRegistry::new();
        b.count("c", 3);
        b.record("h", 4);
        b.record("only_b", 5);
        b.set_gauge("g", 1.5);
        a.merge(&b);
        assert_eq!(a.counter("c"), 4);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.histogram("only_b").unwrap().count(), 1);
        assert_eq!(a.gauge("g"), Some(3.0), "gauges take the max");
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = MetricsRegistry::new();
        a.count("c", 7);
        a.set_gauge("g", 2.0);
        a.record("h", 100);
        let mut b = MetricsRegistry::new();
        b.count("c", 5);
        b.set_gauge("g", 9.0);
        b.record("h", 3);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.to_json(), ba.to_json());
    }

    #[test]
    fn quantiles_read_bucket_lower_bounds() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 4, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(4), "3rd of 5 samples sits in [4,8)");
        assert_eq!(h.quantile(0.99), Some(512), "p99 bucket floor, clamped by max later");
        assert_eq!(h.quantile(1.0), Some(512));
        assert_eq!(Histogram::new().quantile(0.5), None);
        let mut one = Histogram::new();
        one.record(42);
        assert_eq!(one.quantile(0.5), Some(42), "clamped into [min,max]");
    }

    #[test]
    fn histogram_round_trips_through_its_wire_parts() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 7, 7, 4096] {
            h.record(v);
        }
        let buckets: Vec<(u64, u64)> = h.occupied_buckets().collect();
        let back = Histogram::from_parts(h.count(), h.sum(), h.min().unwrap(), h.max().unwrap(), &buckets);
        assert_eq!(back, h);
        assert_eq!(Histogram::from_parts(0, 0, 0, 0, &[]), Histogram::new());
    }
}
