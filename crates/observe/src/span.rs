//! Request spans: the serving plane's trace records.
//!
//! Where [`crate::EventRing`] captures what a *simulator* did, a [`Span`]
//! captures what one *wire request* cost: where it entered (gate or
//! worker), how long it waited for a pool slot, and how long the verb ran.
//! Every process on a request's path (the `kgate` front door and the
//! `ksimd` worker it lands on) records one span into a bounded
//! [`SpanRing`], keyed by the request's trace id, so `kctl trace` can
//! stitch the hop timings back together and the Perfetto exporter
//! ([`crate::perfetto::fleet_trace_json`]) can render a fleet timeline.

use std::collections::VecDeque;
use std::fmt::Write as _;

/// Which process recorded a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A `kgate` hop: `exec_us` is the upstream round-trip time.
    Gate,
    /// A `ksimd` worker execution: `queue_us` is pool-queue wait,
    /// `exec_us` is verb execution.
    Worker,
}

impl SpanKind {
    /// The wire tag (`"gate"` / `"worker"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Gate => "gate",
            SpanKind::Worker => "worker",
        }
    }

    /// Parses a wire tag back into a kind.
    #[must_use]
    pub fn parse(tag: &str) -> Option<SpanKind> {
        match tag {
            "gate" => Some(SpanKind::Gate),
            "worker" => Some(SpanKind::Worker),
            _ => None,
        }
    }
}

/// One request's timing record in one process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// The request's trace id (0 when the peer sent none).
    pub trace: u64,
    /// Who recorded the span.
    pub kind: SpanKind,
    /// The protocol verb (`run`, `create`, …).
    pub verb: String,
    /// The session the verb addressed (empty for sessionless verbs).
    pub session: String,
    /// Microseconds since the recording process started, at request
    /// dispatch.
    pub start_us: u64,
    /// Microseconds spent waiting in the worker-pool queue before
    /// execution (0 for gate fast-path relays, which never queue).
    pub queue_us: u64,
    /// Microseconds spent executing the verb (worker) or waiting on the
    /// upstream round trip (gate).
    pub exec_us: u64,
    /// Whether the response carried `ok:true`.
    pub ok: bool,
}

impl Span {
    /// Serializes the span as one compact JSON object — the `trace` verb's
    /// wire row shape.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"trace\":{},\"kind\":\"{}\",\"verb\":\"{}\",\"session\":\"{}\",\
             \"start_us\":{},\"queue_us\":{},\"exec_us\":{},\"ok\":{}}}",
            self.trace,
            self.kind.as_str(),
            escape(&self.verb),
            escape(&self.session),
            self.start_us,
            self.queue_us,
            self.exec_us,
            self.ok,
        );
        out
    }
}

pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A bounded ring of [`Span`]s: the newest `capacity` request records,
/// with a drop counter — the per-process trace store behind the `trace`
/// verb. Same retention discipline as [`crate::EventRing`].
#[derive(Debug)]
pub struct SpanRing {
    buf: VecDeque<Span>,
    capacity: usize,
    total: u64,
    dropped: u64,
}

impl SpanRing {
    /// Creates a ring holding at most `capacity` spans (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> SpanRing {
        let capacity = capacity.max(1);
        SpanRing { buf: VecDeque::with_capacity(capacity), capacity, total: 0, dropped: 0 }
    }

    /// Records one span, evicting the oldest when full.
    pub fn push(&mut self, span: Span) {
        self.total += 1;
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(span);
    }

    /// The retained spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.buf.iter()
    }

    /// Retained spans matching `trace` (or all when `trace` is `None`),
    /// oldest first.
    #[must_use]
    pub fn select(&self, trace: Option<u64>) -> Vec<Span> {
        self.buf
            .iter()
            .filter(|s| trace.is_none_or(|t| s.trace == t))
            .cloned()
            .collect()
    }

    /// Number of retained spans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total spans ever pushed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Spans evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, verb: &str) -> Span {
        Span {
            trace,
            kind: SpanKind::Worker,
            verb: verb.to_string(),
            session: "s".to_string(),
            start_us: 10,
            queue_us: 2,
            exec_us: 30,
            ok: true,
        }
    }

    #[test]
    fn ring_keeps_newest_and_filters_by_trace() {
        let mut r = SpanRing::new(3);
        for i in 0..5u64 {
            r.push(span(i % 2, "run"));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total(), 5);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.select(None).len(), 3);
        // Retained traces are 0, 1, 0 (pushes 2..5 of the alternation).
        assert_eq!(r.select(Some(0)).len(), 2);
        assert_eq!(r.select(Some(1)).len(), 1);
        assert_eq!(r.select(Some(9)).len(), 0);
    }

    #[test]
    fn span_json_is_valid_and_escaped() {
        let mut s = span(7, "run");
        s.session = "a\"b".to_string();
        let json = s.to_json();
        crate::json_lint::validate(&json).expect("valid JSON");
        assert!(json.contains("\"trace\":7"));
        assert!(json.contains("\"kind\":\"worker\""));
        assert!(json.contains("a\\\"b"));
    }

    #[test]
    fn kind_tags_round_trip() {
        for kind in [SpanKind::Gate, SpanKind::Worker] {
            assert_eq!(SpanKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(SpanKind::parse("proxy"), None);
    }
}
