//! `kjson_lint` — offline JSON validity checker.
//!
//! ```text
//! kjson_lint FILE [FILE...]    validate each file
//! kjson_lint -                 validate stdin
//! ```
//!
//! Runs the same dependency-free validator the exporter tests use
//! (`kahrisma_observe::json_lint`) against emitted artifacts — metrics
//! reports, Perfetto traces — so CI can assert well-formedness without a
//! Python or jq dependency. Exit code 0 when every input is valid JSON,
//! 1 on the first failure (reported as `file:line:col`), 2 on usage or
//! I/O errors.

use std::io::Read as _;
use std::process::ExitCode;

use kahrisma_observe::json_lint;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: kjson_lint FILE [FILE...]   (use `-` for stdin)");
        return ExitCode::from(2);
    }
    for path in &args {
        let text = if path == "-" {
            let mut buf = String::new();
            match std::io::stdin().read_to_string(&mut buf) {
                Ok(_) => buf,
                Err(e) => {
                    eprintln!("kjson_lint: cannot read stdin: {e}");
                    return ExitCode::from(2);
                }
            }
        } else {
            match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("kjson_lint: cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        };
        if let Err(e) = json_lint::validate(&text) {
            eprintln!("kjson_lint: {path}: {e}");
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}
