//! Bounded event ring buffer.

use std::collections::VecDeque;

use kahrisma_core::observe::{Observer, SimEvent};

/// A bounded ring buffer of [`SimEvent`]s.
///
/// Keeps the most recent `capacity` events; older events are dropped and
/// counted. Steady-state operation performs no allocation (the backing
/// storage is reserved up front), which keeps always-on observation cheap
/// even on long runs.
#[derive(Debug)]
pub struct EventRing {
    buf: VecDeque<SimEvent>,
    capacity: usize,
    total: u64,
    dropped: u64,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventRing { buf: VecDeque::with_capacity(capacity), capacity, total: 0, dropped: 0 }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &SimEvent> {
        self.buf.iter()
    }

    /// The retained events as a contiguous vector, oldest first.
    #[must_use]
    pub fn to_vec(&self) -> Vec<SimEvent> {
        self.buf.iter().copied().collect()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when no event has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever pushed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Maximum number of retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Observer for EventRing {
    fn event(&mut self, event: SimEvent) {
        self.total += 1;
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_newest_and_counts_drops() {
        let mut r = EventRing::new(3);
        for addr in 0..5u32 {
            r.event(SimEvent::CacheHit { addr });
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total(), 5);
        assert_eq!(r.dropped(), 2);
        let addrs: Vec<u32> = r
            .events()
            .map(|e| match e {
                SimEvent::CacheHit { addr } => *addr,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(addrs, vec![2, 3, 4]);
    }

    #[test]
    fn exact_capacity_fill_drops_nothing() {
        // The wraparound boundary: exactly `capacity` pushes must retain
        // every event in order with a zero drop count.
        let mut r = EventRing::new(4);
        for addr in 0..4u32 {
            r.event(SimEvent::CacheHit { addr });
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.total(), 4);
        assert_eq!(r.dropped(), 0);
        let addrs: Vec<u32> = r
            .events()
            .map(|e| match e {
                SimEvent::CacheHit { addr } => *addr,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(addrs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn one_past_capacity_evicts_exactly_the_oldest() {
        // capacity + 1 pushes: one drop, the oldest event gone, the rest
        // intact and in order.
        let mut r = EventRing::new(4);
        for addr in 0..5u32 {
            r.event(SimEvent::CacheHit { addr });
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.total(), 5);
        assert_eq!(r.dropped(), 1);
        let addrs: Vec<u32> = r
            .events()
            .map(|e| match e {
                SimEvent::CacheHit { addr } => *addr,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(addrs, vec![1, 2, 3, 4]);
        assert_eq!(r.to_vec().len(), r.len());
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = EventRing::new(0);
        r.event(SimEvent::CacheMiss { addr: 8 });
        r.event(SimEvent::CacheMiss { addr: 12 });
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
    }
}
