//! Observability for the KAHRISMA simulator.
//!
//! The paper names trace-file generation and dynamic program analysis as
//! first-class simulator goals (§V, goals 2 and 3). This crate provides the
//! modern tooling around the structured event stream that
//! `kahrisma-core::observe` emits:
//!
//! * [`EventRing`] — a bounded, allocation-free-steady-state ring buffer of
//!   [`SimEvent`]s with a drop counter, for always-on capture,
//! * [`MetricsRegistry`] — named counters, gauges, and log2-bucketed
//!   [`Histogram`]s with deterministic JSON serialization,
//! * [`MetricsCollector`] — an [`Observer`] that folds the event stream
//!   into a registry (superblock lengths, operation delays and stalls,
//!   decode-probe distances, windowed MIPS),
//! * [`Collector`] — ring + metrics behind one observer,
//! * [`Shared`] — a clonable, thread-safe (`Arc<Mutex<_>>`) observer
//!   handle, so the caller keeps access to a collector after boxing it
//!   into the simulator — including from another thread,
//! * [`frame`] — one-line JSON frame serialization of [`SimEvent`]s, the
//!   `kahrisma-serve` streaming wire format,
//! * [`perfetto`] — Chrome trace-event / Perfetto JSON export with one
//!   track per DOE issue slot plus a functional-instruction track, and a
//!   fleet-timeline export for serving-plane [`Span`]s,
//! * [`Span`] / [`SpanRing`] — per-request trace records for the serving
//!   plane (gate hop + worker execution timings keyed by trace id),
//! * [`flame`] — flamegraph-ready collapsed-stack dumps from the function
//!   profiler,
//! * [`json_lint`] — a dependency-free JSON validity checker used by the
//!   exporter tests and CI smoke checks (also available offline as the
//!   `kjson_lint` binary).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flame;
pub mod frame;
pub mod json_lint;
pub mod perfetto;
pub mod span;

mod collector;
mod metrics;
mod ring;

pub use collector::{Collector, MetricsCollector, Shared};
pub use metrics::{Histogram, MetricsRegistry};
pub use ring::EventRing;
pub use span::{Span, SpanKind, SpanRing};

pub use kahrisma_core::observe::{Observer, SimEvent};
