//! Chrome trace-event / Perfetto JSON export.
//!
//! Serializes a captured [`SimEvent`] timeline into the JSON object format
//! understood by `chrome://tracing` and [ui.perfetto.dev]: a
//! `{"traceEvents":[…]}` document with
//!
//! * one *functional-instruction* track (`tid 0`) holding a complete-event
//!   per retired instruction plus instant markers for ISA switches and
//!   `simop` libc calls, and
//! * one track per DOE issue slot (`tid 1 + slot`) holding a
//!   complete-event per issued operation, spanning issue → completion, with
//!   its dependency stall in the event arguments.
//!
//! Single-core exports ([`trace_json`]) place everything under one process
//! (`pid 1`); fabric exports ([`fabric_trace_json`]) give every core its
//! own process (`pid 1 + core index`, named after the core), so an N-core
//! run renders as N side-by-side track groups.
//!
//! Timestamps are cycle-model cycles when a model was attached (every
//! `Instr` event then carries a non-zero cycle), otherwise the functional
//! retire sequence; the unit is declared via `displayTimeUnit: "ns"` so
//! one cycle renders as one nanosecond.
//!
//! [ui.perfetto.dev]: https://ui.perfetto.dev

use std::collections::BTreeSet;

use kahrisma_core::observe::SimEvent;

use crate::span::Span;

/// Serializes `events` into a Perfetto-loadable JSON string.
#[must_use]
pub fn trace_json(events: &[SimEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 512);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    write_process(&mut out, &mut first, 1, "kahrisma-sim", events);
    out.push_str("]}");
    out
}

/// Serializes one timeline per fabric core — `(core label, events)` pairs
/// in core-index order — into a single Perfetto document with one process
/// (`pid 1 + index`) per core.
#[must_use]
pub fn fabric_trace_json(cores: &[(&str, &[SimEvent])]) -> String {
    fabric_trace_json_with_counters(cores, &[])
}

/// A named counter track attached to one core's process: a timeline of
/// `(timestamp, values)` samples, where each sample carries one value per
/// named series. Perfetto renders every series of a `ph:"C"` event as a
/// stacked area chart under the process, so cumulative coherence counters
/// (misses, invalidations, stall cycles, …) appear right below the core's
/// instruction track.
#[derive(Debug, Clone)]
pub struct CounterTrack<'a> {
    /// Track name, e.g. `"coherence"`.
    pub name: &'a str,
    /// `(timestamp, (series label, value) pairs)` in ascending time order.
    pub samples: Vec<(u64, Vec<(&'a str, u64)>)>,
}

/// Like [`fabric_trace_json`], with per-core counter tracks appended:
/// `counters[i]` holds core `i`'s tracks (shorter slices leave the
/// remaining cores without counters).
#[must_use]
pub fn fabric_trace_json_with_counters(
    cores: &[(&str, &[SimEvent])],
    counters: &[Vec<CounterTrack<'_>>],
) -> String {
    let total: usize = cores.iter().map(|(_, e)| e.len()).sum();
    let mut out = String::with_capacity(total * 96 + 512 * cores.len().max(1));
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    for (index, (name, events)) in cores.iter().enumerate() {
        let pid = index as u32 + 1;
        write_process(&mut out, &mut first, pid, &format!("core{index}: {name}"), events);
        for track in counters.get(index).map_or(&[][..], Vec::as_slice) {
            write_counter_track(&mut out, &mut first, pid, track);
        }
    }
    out.push_str("]}");
    out
}

/// Emits one `ph:"C"` event per sample of a counter track.
fn write_counter_track(out: &mut String, first: &mut bool, pid: u32, track: &CounterTrack<'_>) {
    for (ts, values) in &track.samples {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&format!(
            "{{\"ph\":\"C\",\"pid\":{pid},\"ts\":{ts},\"name\":\"{}\",\"args\":{{",
            crate::span::escape(track.name),
        ));
        for (i, (label, value)) in values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{value}", crate::span::escape(label)));
        }
        out.push_str("}}");
    }
}

/// Serializes serving-plane [`Span`]s into a single Perfetto document:
/// one process (`pid 1`, "kahrisma fleet") with one named track per
/// `(label, spans)` pair — by convention the gate track first, then one
/// track per worker — so a saturation sweep through `kgate` renders as a
/// readable fleet timeline.
///
/// Span timestamps are microseconds since each recording *process*
/// started, so tracks from different processes share a unit but not an
/// epoch; within a track, relative spacing and span widths are exact.
/// Each complete event carries the trace id, queue wait, and execution
/// time in its arguments.
#[must_use]
pub fn fleet_trace_json(tracks: &[(&str, &[Span])]) -> String {
    let total: usize = tracks.iter().map(|(_, s)| s.len()).sum();
    let mut out = String::with_capacity(total * 128 + 512);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut emit = |out: &mut String, ev: &str| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(ev);
    };
    emit(
        &mut out,
        "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\
         \"args\":{\"name\":\"kahrisma fleet\"}}",
    );
    for (tid, (label, _)) in tracks.iter().enumerate() {
        emit(
            &mut out,
            &format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                crate::span::escape(label),
            ),
        );
    }
    for (tid, (_, spans)) in tracks.iter().enumerate() {
        for span in *spans {
            let dur = span.queue_us.saturating_add(span.exec_us).max(1);
            emit(
                &mut out,
                &format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"dur\":{dur},\
                     \"name\":\"{} {}\",\"args\":{{\"trace\":{},\"kind\":\"{}\",\
                     \"queue_us\":{},\"exec_us\":{},\"ok\":{}}}}}",
                    span.start_us,
                    crate::span::escape(&span.verb),
                    crate::span::escape(&span.session),
                    span.trace,
                    span.kind.as_str(),
                    span.queue_us,
                    span.exec_us,
                    span.ok,
                ),
            );
        }
    }
    out.push_str("]}");
    out
}

/// Emits one process's worth of metadata and events (the shared body of
/// [`trace_json`] and [`fabric_trace_json`]).
fn write_process(out: &mut String, first: &mut bool, pid: u32, process_name: &str, events: &[SimEvent]) {
    // With a cycle model attached the Instr events carry model time; use
    // it for the functional track so both track families share one clock.
    let has_cycles =
        events.iter().any(|e| matches!(e, SimEvent::Instr { cycle, .. } if *cycle > 0));
    let mut slots: BTreeSet<u8> = BTreeSet::new();
    for e in events {
        if let SimEvent::OpIssue { slot, .. } = e {
            slots.insert(*slot);
        }
    }

    let mut emit = |out: &mut String, ev: &str| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(ev);
    };

    emit(
        out,
        &format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
             \"args\":{{\"name\":\"{process_name}\"}}}}"
        ),
    );
    emit(
        out,
        &format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"functional instructions\"}}}}"
        ),
    );
    for &slot in &slots {
        emit(
            out,
            &format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"issue slot {slot}\"}}}}",
                u32::from(slot) + 1,
            ),
        );
    }

    for e in events {
        match e {
            SimEvent::Instr { seq, addr, isa, width, ops, cycle } => {
                let ts = if has_cycles { *cycle } else { *seq };
                emit(
                    out,
                    &format!(
                        "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":0,\"ts\":{ts},\"dur\":1,\
                         \"name\":\"{addr:#x}\",\"args\":{{\"seq\":{seq},\"isa\":{isa},\
                         \"width\":{width},\"ops\":{ops}}}}}"
                    ),
                );
            }
            SimEvent::OpIssue { addr, slot, name, issue, completion, stall } => {
                let dur = completion.saturating_sub(*issue).max(1);
                let tid = u32::from(*slot) + 1;
                emit(
                    out,
                    &format!(
                        "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{issue},\
                         \"dur\":{dur},\"name\":\"{name}\",\
                         \"args\":{{\"addr\":\"{addr:#x}\",\"stall\":{stall}}}}}"
                    ),
                );
            }
            SimEvent::IsaSwitch { addr, from, to } => {
                emit(
                    out,
                    &format!(
                        "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":0,\"ts\":0,\"s\":\"p\",\
                         \"name\":\"switchtarget {from}->{to}\",\
                         \"args\":{{\"addr\":\"{addr:#x}\"}}}}"
                    ),
                );
            }
            SimEvent::SimOp { addr, code } => {
                emit(
                    out,
                    &format!(
                        "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":0,\"ts\":0,\"s\":\"p\",\
                         \"name\":\"simop {code}\",\"args\":{{\"addr\":\"{addr:#x}\"}}}}"
                    ),
                );
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_tracks_and_valid_json() {
        let events = [
            SimEvent::Instr { seq: 0, addr: 0x1000, isa: 0, width: 4, ops: 2, cycle: 3 },
            SimEvent::OpIssue {
                addr: 0x1000,
                slot: 0,
                name: "add",
                issue: 0,
                completion: 1,
                stall: 0,
            },
            SimEvent::OpIssue {
                addr: 0x1004,
                slot: 2,
                name: "mul",
                issue: 1,
                completion: 4,
                stall: 1,
            },
            SimEvent::IsaSwitch { addr: 0x1008, from: 0, to: 2 },
            SimEvent::SimOp { addr: 0x100C, code: 7 },
        ];
        let json = trace_json(&events);
        crate::json_lint::validate(&json).expect("valid JSON");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("functional instructions"));
        assert!(json.contains("issue slot 0"));
        assert!(json.contains("issue slot 2"));
        assert!(!json.contains("issue slot 1"), "unused slot must have no track");
        assert!(json.contains("\"name\":\"mul\""));
        assert!(json.contains("\"stall\":1"));
        // Cycle timestamps are used because Instr carried a cycle.
        assert!(json.contains("\"ts\":3"));
    }

    #[test]
    fn falls_back_to_sequence_time_without_model() {
        let events = [
            SimEvent::Instr { seq: 5, addr: 0x10, isa: 0, width: 1, ops: 1, cycle: 0 },
            SimEvent::Instr { seq: 6, addr: 0x14, isa: 0, width: 1, ops: 1, cycle: 0 },
        ];
        let json = trace_json(&events);
        crate::json_lint::validate(&json).expect("valid JSON");
        assert!(json.contains("\"ts\":5"));
        assert!(json.contains("\"ts\":6"));
    }

    #[test]
    fn empty_input_is_still_a_valid_document() {
        let json = trace_json(&[]);
        crate::json_lint::validate(&json).expect("valid JSON");
        assert!(json.contains("traceEvents"));
    }

    #[test]
    fn fleet_export_gives_each_worker_a_track() {
        use crate::span::{Span, SpanKind};
        let gate = [Span {
            trace: 11,
            kind: SpanKind::Gate,
            verb: "run".to_string(),
            session: "gw".to_string(),
            start_us: 5,
            queue_us: 0,
            exec_us: 900,
            ok: true,
        }];
        let worker = [Span {
            trace: 11,
            kind: SpanKind::Worker,
            verb: "run".to_string(),
            session: "gw".to_string(),
            start_us: 40,
            queue_us: 12,
            exec_us: 850,
            ok: true,
        }];
        let json = fleet_trace_json(&[("gate", &gate), ("worker0 127.0.0.1:9", &worker)]);
        crate::json_lint::validate(&json).expect("valid JSON");
        assert!(json.contains("\"name\":\"kahrisma fleet\""));
        assert!(json.contains("\"name\":\"gate\""));
        assert!(json.contains("\"name\":\"worker0 127.0.0.1:9\""));
        assert!(json.contains("\"trace\":11"));
        assert!(json.contains("\"queue_us\":12"));
        assert!(json.contains("\"tid\":1"));
        // Empty input still renders a loadable document.
        crate::json_lint::validate(&fleet_trace_json(&[])).expect("valid JSON");
    }

    #[test]
    fn counter_tracks_attach_to_the_right_core_process() {
        let a = [SimEvent::Instr { seq: 0, addr: 0x10, isa: 0, width: 1, ops: 1, cycle: 0 }];
        let b = [SimEvent::Instr { seq: 0, addr: 0x20, isa: 0, width: 1, ops: 1, cycle: 0 }];
        let tracks = vec![
            Vec::new(), // core 0: no counters
            vec![CounterTrack {
                name: "coherence",
                samples: vec![
                    (10, vec![("misses", 2), ("mem_cycles", 40)]),
                    (25, vec![("misses", 5), ("mem_cycles", 90)]),
                ],
            }],
        ];
        let json =
            fabric_trace_json_with_counters(&[("dct:risc", &a), ("dct:risc", &b)], &tracks);
        crate::json_lint::validate(&json).expect("valid JSON");
        assert!(json.contains("{\"ph\":\"C\",\"pid\":2,\"ts\":10,\"name\":\"coherence\",\"args\":{\"misses\":2,\"mem_cycles\":40}}"));
        assert!(json.contains("\"ts\":25"));
        assert!(!json.contains("{\"ph\":\"C\",\"pid\":1"), "core 0 has no counter track");
        // The plain fabric export stays counter-free.
        assert!(!fabric_trace_json(&[("dct:risc", &a)]).contains("\"ph\":\"C\""));
    }

    #[test]
    fn fabric_export_gives_each_core_its_own_process() {
        let a = [SimEvent::Instr { seq: 0, addr: 0x10, isa: 0, width: 1, ops: 1, cycle: 0 }];
        let b = [
            SimEvent::Instr { seq: 0, addr: 0x20, isa: 2, width: 4, ops: 3, cycle: 0 },
            SimEvent::OpIssue {
                addr: 0x20,
                slot: 1,
                name: "sub",
                issue: 0,
                completion: 2,
                stall: 0,
            },
        ];
        let json = fabric_trace_json(&[("dct:risc", &a), ("aes:vliw4", &b)]);
        crate::json_lint::validate(&json).expect("valid JSON");
        assert!(json.contains("\"name\":\"core0: dct:risc\""));
        assert!(json.contains("\"name\":\"core1: aes:vliw4\""));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"pid\":2"));
        // The issue-slot track belongs to core 1's process only.
        assert!(json.contains("{\"ph\":\"M\",\"pid\":2,\"tid\":2,\"name\":\"thread_name\",\"args\":{\"name\":\"issue slot 1\"}}"));
    }
}
