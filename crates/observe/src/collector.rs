//! Observers that fold the event stream into metrics, and the shared
//! handle that keeps collectors accessible after boxing.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use kahrisma_core::observe::{Observer, SimEvent};

use crate::metrics::MetricsRegistry;
use crate::ring::EventRing;

/// Instructions per throughput window (see `throughput.window_mips`).
const WINDOW_INSTRUCTIONS: u64 = 100_000;

/// Folds the structured event stream into a [`MetricsRegistry`]:
/// decode-cache counters and probe distances, superblock build/batch
/// length histograms, operation delay/stall histograms, ISA-switch and
/// `simop` counters, and a windowed-MIPS histogram (wall-clock per
/// 100 000 retired instructions).
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    registry: MetricsRegistry,
    window_instrs: u64,
    window_start: Instant,
}

impl Default for MetricsCollector {
    fn default() -> Self {
        MetricsCollector::new()
    }
}

impl MetricsCollector {
    /// Creates a collector with an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsCollector {
            registry: MetricsRegistry::new(),
            window_instrs: 0,
            window_start: Instant::now(),
        }
    }

    /// The accumulated registry.
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Consumes the collector, returning the registry.
    #[must_use]
    pub fn into_registry(self) -> MetricsRegistry {
        self.registry
    }
}

impl Observer for MetricsCollector {
    fn event(&mut self, event: SimEvent) {
        let r = &mut self.registry;
        match event {
            SimEvent::PredictionHit { .. } => {
                r.count("decode.prediction_hits", 1);
                r.record("decode.probe_distance", 0);
            }
            SimEvent::CacheHit { .. } => {
                r.count("decode.cache_hits", 1);
                r.record("decode.probe_distance", 1);
            }
            SimEvent::CacheMiss { .. } => {
                r.count("decode.cache_misses", 1);
                r.record("decode.probe_distance", 2);
            }
            SimEvent::SuperblockBuild { len, .. } => {
                r.count("superblock.built", 1);
                r.record("superblock.build_len", u64::from(len));
            }
            SimEvent::SuperblockBatch { len, .. } => {
                r.count("superblock.batches", 1);
                r.record("superblock.batch_len", u64::from(len));
            }
            SimEvent::TierPromote { ops, .. } => {
                r.count("tier.promotions", 1);
                r.record("tier.block_ops", u64::from(ops));
            }
            SimEvent::TierInvalidate { .. } => r.count("tier.invalidations", 1),
            SimEvent::IsaSwitch { .. } => r.count("isa.switches", 1),
            SimEvent::SimOp { .. } => r.count("libc.simops", 1),
            SimEvent::SnapshotTaken { .. } => r.count("snapshot.taken", 1),
            SimEvent::Restored { .. } => r.count("snapshot.restored", 1),
            SimEvent::Reset { .. } => r.count("sim.resets", 1),
            SimEvent::Instr { width, ops, .. } => {
                r.count("instr.retired", 1);
                r.record("instr.width", u64::from(width));
                r.record("instr.ops", u64::from(ops));
                self.window_instrs += 1;
                if self.window_instrs >= WINDOW_INSTRUCTIONS {
                    let secs = self.window_start.elapsed().as_secs_f64();
                    let mips = if secs > 0.0 {
                        self.window_instrs as f64 / secs / 1e6
                    } else {
                        0.0
                    };
                    let r = &mut self.registry;
                    r.record("throughput.window_mips", mips.max(0.0) as u64);
                    r.set_gauge("throughput.last_window_mips", mips);
                    self.window_instrs = 0;
                    self.window_start = Instant::now();
                }
            }
            SimEvent::OpIssue { issue, completion, stall, .. } => {
                r.count("op.issued", 1);
                r.record("op.delay", completion.saturating_sub(issue));
                r.record("op.stall", u64::from(stall));
            }
            _ => {}
        }
    }
}

/// Ring buffer and metrics behind a single observer: retains the most
/// recent events for timeline export while folding every event into the
/// registry.
#[derive(Debug)]
pub struct Collector {
    /// The bounded event timeline.
    pub ring: EventRing,
    /// The metrics fold.
    pub metrics: MetricsCollector,
}

impl Collector {
    /// Creates a collector retaining at most `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Collector { ring: EventRing::new(capacity), metrics: MetricsCollector::new() }
    }
}

impl Observer for Collector {
    fn event(&mut self, event: SimEvent) {
        self.ring.event(event);
        self.metrics.event(event);
    }
}

/// A clonable shared handle around an observer (or any value).
///
/// [`kahrisma_core::Simulator::set_observer`] takes a `Box<dyn Observer>`,
/// which cannot be downcast back to its concrete type. Wrapping the
/// collector in `Shared` lets the caller box one handle into the simulator
/// and keep another to read results out afterwards. The handle is
/// `Arc<Mutex<_>>`-backed so it satisfies the `Observer: Send` bound and
/// works across threads (the serving daemon reads a session's collector
/// from whichever connection thread holds the session).
#[derive(Debug, Default)]
pub struct Shared<T>(Arc<Mutex<T>>);

impl<T> Shared<T> {
    /// Wraps `inner` in a shared handle.
    #[must_use]
    pub fn new(inner: T) -> Self {
        Shared(Arc::new(Mutex::new(inner)))
    }

    /// Another handle to the same inner value.
    #[must_use]
    pub fn handle(&self) -> Self {
        Shared(Arc::clone(&self.0))
    }

    /// Locks the inner value for access.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder panicked while holding the lock
    /// (poisoning); event delivery never panics in normal operation.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Self {
        self.handle()
    }
}

impl<T: Observer> Observer for Shared<T> {
    fn event(&mut self, event: SimEvent) {
        self.lock().event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_collector_folds_events() {
        let mut c = MetricsCollector::new();
        c.event(SimEvent::PredictionHit { addr: 0 });
        c.event(SimEvent::CacheHit { addr: 4 });
        c.event(SimEvent::CacheMiss { addr: 8 });
        c.event(SimEvent::SuperblockBuild { head: 0, len: 5 });
        c.event(SimEvent::SuperblockBatch { head: 0, len: 5 });
        c.event(SimEvent::TierPromote { head: 0, len: 5, ops: 4 });
        c.event(SimEvent::TierInvalidate { head: 0 });
        c.event(SimEvent::Instr { seq: 0, addr: 0, isa: 0, width: 4, ops: 2, cycle: 1 });
        c.event(SimEvent::OpIssue {
            addr: 0,
            slot: 1,
            name: "add",
            issue: 3,
            completion: 7,
            stall: 2,
        });
        let r = c.registry();
        assert_eq!(r.counter("decode.prediction_hits"), 1);
        assert_eq!(r.counter("decode.cache_hits"), 1);
        assert_eq!(r.counter("decode.cache_misses"), 1);
        assert_eq!(r.counter("superblock.built"), 1);
        assert_eq!(r.counter("tier.promotions"), 1);
        assert_eq!(r.counter("tier.invalidations"), 1);
        assert_eq!(r.histogram("tier.block_ops").unwrap().sum(), 4);
        assert_eq!(r.counter("instr.retired"), 1);
        assert_eq!(r.counter("op.issued"), 1);
        assert_eq!(r.histogram("op.delay").unwrap().max(), Some(4));
        assert_eq!(r.histogram("op.stall").unwrap().max(), Some(2));
        assert_eq!(r.histogram("superblock.batch_len").unwrap().sum(), 5);
        assert_eq!(r.histogram("decode.probe_distance").unwrap().count(), 3);
        crate::json_lint::validate(&r.to_json()).expect("valid JSON");
    }

    #[test]
    fn shared_handle_reads_after_boxing() {
        let shared = Shared::new(Collector::new(16));
        let mut boxed: Box<dyn Observer> = Box::new(shared.handle());
        boxed.event(SimEvent::CacheHit { addr: 4 });
        boxed.event(SimEvent::Instr { seq: 0, addr: 4, isa: 0, width: 1, ops: 1, cycle: 0 });
        let c = shared.lock();
        assert_eq!(c.ring.len(), 2);
        assert_eq!(c.metrics.registry().counter("instr.retired"), 1);
    }
}
