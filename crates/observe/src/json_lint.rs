//! A minimal, dependency-free JSON validity checker.
//!
//! The exporters in this crate hand-serialize their documents; the tests
//! (and the CI smoke check) use this recursive-descent validator to assert
//! the output is well-formed JSON without pulling in a parser dependency
//! (the build environment is offline).

/// Validates that `input` is exactly one well-formed JSON value.
///
/// # Errors
///
/// Returns a human-readable description (with byte offset) of the first
/// syntax error.
pub fn validate(input: &str) -> Result<(), String> {
    let b = input.as_bytes();
    let mut pos = skip_ws(b, 0);
    pos = value(b, pos)?;
    pos = skip_ws(b, pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn err(pos: usize, what: &str) -> String {
    format!("{what} at byte {pos}")
}

fn skip_ws(b: &[u8], mut pos: usize) -> usize {
    while pos < b.len() && matches!(b[pos], b' ' | b'\t' | b'\n' | b'\r') {
        pos += 1;
    }
    pos
}

fn value(b: &[u8], pos: usize) -> Result<usize, String> {
    match b.get(pos) {
        None => Err(err(pos, "unexpected end of input")),
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => number(b, pos),
        Some(c) => Err(err(pos, &format!("unexpected byte {c:#x}"))),
    }
}

fn literal(b: &[u8], pos: usize, lit: &str) -> Result<usize, String> {
    if b[pos..].starts_with(lit.as_bytes()) {
        Ok(pos + lit.len())
    } else {
        Err(err(pos, &format!("expected `{lit}`")))
    }
}

fn object(b: &[u8], mut pos: usize) -> Result<usize, String> {
    pos = skip_ws(b, pos + 1); // past '{'
    if b.get(pos) == Some(&b'}') {
        return Ok(pos + 1);
    }
    loop {
        if b.get(pos) != Some(&b'"') {
            return Err(err(pos, "expected object key"));
        }
        pos = string(b, pos)?;
        pos = skip_ws(b, pos);
        if b.get(pos) != Some(&b':') {
            return Err(err(pos, "expected `:`"));
        }
        pos = skip_ws(b, pos + 1);
        pos = value(b, pos)?;
        pos = skip_ws(b, pos);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b'}') => return Ok(pos + 1),
            _ => return Err(err(pos, "expected `,` or `}`")),
        }
    }
}

fn array(b: &[u8], mut pos: usize) -> Result<usize, String> {
    pos = skip_ws(b, pos + 1); // past '['
    if b.get(pos) == Some(&b']') {
        return Ok(pos + 1);
    }
    loop {
        pos = value(b, pos)?;
        pos = skip_ws(b, pos);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b']') => return Ok(pos + 1),
            _ => return Err(err(pos, "expected `,` or `]`")),
        }
    }
}

fn string(b: &[u8], mut pos: usize) -> Result<usize, String> {
    pos += 1; // past '"'
    while let Some(&c) = b.get(pos) {
        match c {
            b'"' => return Ok(pos + 1),
            b'\\' => match b.get(pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => pos += 2,
                Some(b'u') => {
                    let hex = b.get(pos + 2..pos + 6).ok_or_else(|| err(pos, "short \\u"))?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(err(pos, "bad \\u escape"));
                    }
                    pos += 6;
                }
                _ => return Err(err(pos, "bad escape")),
            },
            0x00..=0x1F => return Err(err(pos, "raw control character in string")),
            _ => pos += 1,
        }
    }
    Err(err(pos, "unterminated string"))
}

fn number(b: &[u8], mut pos: usize) -> Result<usize, String> {
    let start = pos;
    if b.get(pos) == Some(&b'-') {
        pos += 1;
    }
    let digits = |b: &[u8], mut p: usize| -> usize {
        while p < b.len() && b[p].is_ascii_digit() {
            p += 1;
        }
        p
    };
    let int_end = digits(b, pos);
    if int_end == pos {
        return Err(err(pos, "expected digit"));
    }
    if b[pos] == b'0' && int_end > pos + 1 {
        return Err(err(start, "leading zero"));
    }
    pos = int_end;
    if b.get(pos) == Some(&b'.') {
        let frac_end = digits(b, pos + 1);
        if frac_end == pos + 1 {
            return Err(err(pos, "expected fraction digits"));
        }
        pos = frac_end;
    }
    if matches!(b.get(pos), Some(b'e' | b'E')) {
        pos += 1;
        if matches!(b.get(pos), Some(b'+' | b'-')) {
            pos += 1;
        }
        let exp_end = digits(b, pos);
        if exp_end == pos {
            return Err(err(pos, "expected exponent digits"));
        }
        pos = exp_end;
    }
    Ok(pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "-0.5e+10",
            r#"{"a":[1,2,{"b":"x\ny"}],"c":true,"d":null}"#,
            r#"  [ 1 , "two" , { } ]  "#,
            r#""é""#,
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "01",
            "1.",
            "NaN",
            "nul",
            "\"unterminated",
            "{} extra",
            "\"bad \\q escape\"",
        ] {
            assert!(validate(doc).is_err(), "{doc} wrongly accepted");
        }
    }
}
