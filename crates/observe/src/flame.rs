//! Flamegraph-ready collapsed-stack dumps from the function profiler.
//!
//! The simulator's [`Profiler`](kahrisma_core::Profiler) attributes
//! instructions, operations, and approximated cycles to functions (paper
//! §V, goal 2). This module renders that report in Brendan Gregg's
//! *collapsed stack* format — one `frames weight` line per function — which
//! `flamegraph.pl` and [speedscope] consume directly.
//!
//! [speedscope]: https://www.speedscope.app

use std::fmt::Write as _;

use kahrisma_core::FunctionProfile;

/// Which accumulator of the profile weights the flamegraph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlameWeight {
    /// Weight by attributed cycle-model cycles.
    Cycles,
    /// Weight by attributed instructions.
    Instructions,
    /// Weight by attributed non-`nop` operations.
    Operations,
}

/// Renders `profile` as collapsed stacks under a `kahrisma` root frame,
/// weighted by `weight`; zero-weight functions are omitted. Lines are
/// emitted in profile order (hottest first, as produced by
/// [`kahrisma_core::Simulator::function_profile`]).
#[must_use]
pub fn collapsed_stacks(profile: &[FunctionProfile], weight: FlameWeight) -> String {
    let mut out = String::with_capacity(profile.len() * 32);
    for f in profile {
        let w = match weight {
            FlameWeight::Cycles => f.cycles,
            FlameWeight::Instructions => f.instructions,
            FlameWeight::Operations => f.operations,
        };
        if w == 0 {
            continue;
        }
        // Semicolons separate stack frames in the collapsed format, and a
        // space separates the stack from the weight; scrub both out of
        // function names so each name stays a single frame.
        let name: String = f
            .name
            .chars()
            .map(|c| if c == ';' || c.is_whitespace() { '_' } else { c })
            .collect();
        let _ = writeln!(out, "kahrisma;{name} {w}");
    }
    out
}

/// Picks the most informative weight available: cycles when a cycle model
/// contributed any, otherwise instructions.
#[must_use]
pub fn default_weight(profile: &[FunctionProfile]) -> FlameWeight {
    if profile.iter().any(|f| f.cycles > 0) {
        FlameWeight::Cycles
    } else {
        FlameWeight::Instructions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> Vec<FunctionProfile> {
        vec![
            FunctionProfile {
                name: "main".into(),
                instructions: 100,
                operations: 120,
                cycles: 400,
            },
            FunctionProfile {
                name: "bad name;x".into(),
                instructions: 10,
                operations: 10,
                cycles: 0,
            },
        ]
    }

    #[test]
    fn renders_one_line_per_function() {
        let out = collapsed_stacks(&profile(), FlameWeight::Instructions);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines, vec!["kahrisma;main 100", "kahrisma;bad_name_x 10"]);
    }

    #[test]
    fn zero_weight_functions_are_omitted() {
        let out = collapsed_stacks(&profile(), FlameWeight::Cycles);
        assert_eq!(out.lines().count(), 1);
        assert!(out.starts_with("kahrisma;main 400"));
    }

    #[test]
    fn default_weight_prefers_cycles() {
        assert_eq!(default_weight(&profile()), FlameWeight::Cycles);
        let no_cycles: Vec<FunctionProfile> = profile()
            .into_iter()
            .map(|f| FunctionProfile { cycles: 0, ..f })
            .collect();
        assert_eq!(default_weight(&no_cycles), FlameWeight::Instructions);
    }
}
