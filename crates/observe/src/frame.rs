//! Event → wire-frame serialization: one [`SimEvent`] as one line of JSON.
//!
//! This is the streaming format the `kahrisma-serve` daemon writes on a
//! `stream` subscription: every frame is a single-line JSON object with an
//! `event` tag and the variant's fields, terminated by `\n`, so clients can
//! parse frames with any line reader and any JSON parser. Field order is
//! fixed (tag first), making the output deterministic and diff-friendly.

use std::fmt::Write as _;

use kahrisma_core::observe::SimEvent;

/// Serializes one event as a single-line JSON object (no trailing newline).
///
/// Unknown future variants (the enum is `#[non_exhaustive]`) serialize as
/// `{"event":"unknown"}` rather than panicking, so a newer core streaming
/// through an older observe crate degrades instead of killing the
/// connection.
#[must_use]
pub fn to_json_line(event: &SimEvent) -> String {
    let mut s = String::with_capacity(96);
    match *event {
        SimEvent::CacheHit { addr } => {
            let _ = write!(s, r#"{{"event":"cache_hit","addr":{addr}}}"#);
        }
        SimEvent::CacheMiss { addr } => {
            let _ = write!(s, r#"{{"event":"cache_miss","addr":{addr}}}"#);
        }
        SimEvent::PredictionHit { addr } => {
            let _ = write!(s, r#"{{"event":"prediction_hit","addr":{addr}}}"#);
        }
        SimEvent::SuperblockBuild { head, len } => {
            let _ = write!(s, r#"{{"event":"superblock_build","head":{head},"len":{len}}}"#);
        }
        SimEvent::SuperblockBatch { head, len } => {
            let _ = write!(s, r#"{{"event":"superblock_batch","head":{head},"len":{len}}}"#);
        }
        SimEvent::TierPromote { head, len, ops } => {
            let _ = write!(s, r#"{{"event":"tier_promote","head":{head},"len":{len},"ops":{ops}}}"#);
        }
        SimEvent::TierInvalidate { head } => {
            let _ = write!(s, r#"{{"event":"tier_invalidate","head":{head}}}"#);
        }
        SimEvent::IsaSwitch { addr, from, to } => {
            let _ = write!(s, r#"{{"event":"isa_switch","addr":{addr},"from":{from},"to":{to}}}"#);
        }
        SimEvent::SimOp { addr, code } => {
            let _ = write!(s, r#"{{"event":"simop","addr":{addr},"code":{code}}}"#);
        }
        SimEvent::SnapshotTaken { instructions } => {
            let _ = write!(s, r#"{{"event":"snapshot","instructions":{instructions}}}"#);
        }
        SimEvent::Restored { instructions } => {
            let _ = write!(s, r#"{{"event":"restored","instructions":{instructions}}}"#);
        }
        SimEvent::Reset { instructions } => {
            let _ = write!(s, r#"{{"event":"reset","instructions":{instructions}}}"#);
        }
        SimEvent::Instr { seq, addr, isa, width, ops, cycle } => {
            let _ = write!(
                s,
                r#"{{"event":"instr","seq":{seq},"addr":{addr},"isa":{isa},"width":{width},"ops":{ops},"cycle":{cycle}}}"#
            );
        }
        SimEvent::OpIssue { addr, slot, name, issue, completion, stall } => {
            // Mnemonics are static identifiers ([a-z0-9._]), but escape
            // defensively: a frame must never emit invalid JSON.
            let _ = write!(
                s,
                r#"{{"event":"op_issue","addr":{addr},"slot":{slot},"name":"{}","issue":{issue},"completion":{completion},"stall":{stall}}}"#,
                escape(name)
            );
        }
        _ => s.push_str(r#"{"event":"unknown"}"#),
    }
    s
}

/// Escapes a string for embedding in a JSON string literal.
fn escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_serializes_to_valid_one_line_json() {
        let events = [
            SimEvent::CacheHit { addr: 4 },
            SimEvent::CacheMiss { addr: 8 },
            SimEvent::PredictionHit { addr: 12 },
            SimEvent::SuperblockBuild { head: 0, len: 7 },
            SimEvent::SuperblockBatch { head: 0, len: 7 },
            SimEvent::TierPromote { head: 0, len: 7, ops: 11 },
            SimEvent::TierInvalidate { head: 0 },
            SimEvent::IsaSwitch { addr: 16, from: 0, to: 2 },
            SimEvent::SimOp { addr: 20, code: 3 },
            SimEvent::SnapshotTaken { instructions: 10 },
            SimEvent::Restored { instructions: 10 },
            SimEvent::Reset { instructions: 42 },
            SimEvent::Instr { seq: 0, addr: 0, isa: 1, width: 4, ops: 2, cycle: 9 },
            SimEvent::OpIssue {
                addr: 4,
                slot: 1,
                name: "add",
                issue: 3,
                completion: 7,
                stall: 2,
            },
        ];
        for e in events {
            let line = to_json_line(&e);
            assert!(!line.contains('\n'), "{line}");
            crate::json_lint::validate(&line).unwrap_or_else(|err| panic!("{line}: {err}"));
        }
    }

    #[test]
    fn frames_carry_the_variant_fields() {
        let line = to_json_line(&SimEvent::Instr {
            seq: 5,
            addr: 0x100,
            isa: 2,
            width: 4,
            ops: 3,
            cycle: 77,
        });
        assert_eq!(
            line,
            r#"{"event":"instr","seq":5,"addr":256,"isa":2,"width":4,"ops":3,"cycle":77}"#
        );
        let line = to_json_line(&SimEvent::Reset { instructions: u64::MAX });
        assert_eq!(line, format!(r#"{{"event":"reset","instructions":{}}}"#, u64::MAX));
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape("x\ny"), "x\\u000ay");
    }
}
