//! Parity between the line-oriented trace (paper §V) and the structured
//! event stream: both views of one run must describe the same execution.

use std::sync::{Arc, Mutex};

use kahrisma_asm::build;
use kahrisma_core::observe::{Observer, SimEvent};
use kahrisma_core::{
    CycleModelKind, RunOutcome, SimConfig, Simulator, TraceRecord, TraceSink,
};
use kahrisma_observe::perfetto;

/// Mixed-ISA workload with a loop, libc call, and ISA round trip.
const WORKLOAD: &str = "
    .isa risc
    .text
    .global main
    .func main
    main:
        addi sp, sp, -8
        sw ra, 0(sp)
        li t0, 25
        li a0, 0
    loop:
        addi a0, a0, 3
        switchtarget vliw4
        jal bump_v4
        .isa vliw4
        { switchtarget risc | nop | nop | nop }
        .isa risc
        addi t0, t0, -1
        bne t0, zero, loop
        jal print_int
        mv rv, a0
        lw ra, 0(sp)
        addi sp, sp, 8
        jr ra
    .endfunc

    .isa vliw4
    .global bump_v4
    .func bump_v4
    bump_v4:
        { addi a0, a0, 1 | nop | nop | nop }
        { jr ra | nop | nop | nop }
    .endfunc
";

struct SharedTrace(Arc<Mutex<Vec<TraceRecord>>>);
impl TraceSink for SharedTrace {
    fn record(&mut self, r: TraceRecord) {
        self.0.lock().unwrap().push(r);
    }
}

struct SharedEvents(Arc<Mutex<Vec<SimEvent>>>);
impl Observer for SharedEvents {
    fn event(&mut self, e: SimEvent) {
        self.0.lock().unwrap().push(e);
    }
}

/// Runs the workload with both a trace sink and an observer attached.
fn run_both(config: SimConfig) -> (Simulator, Vec<TraceRecord>, Vec<SimEvent>) {
    let exe = build(&[("w.s", WORKLOAD)]).expect("assemble");
    let mut sim = Simulator::new(&exe, config).expect("load");
    let trace = Arc::new(Mutex::new(Vec::new()));
    let events = Arc::new(Mutex::new(Vec::new()));
    sim.set_trace_sink(Box::new(SharedTrace(trace.clone())));
    sim.set_observer(Box::new(SharedEvents(events.clone())));
    let outcome = sim.run(1_000_000).expect("run");
    assert!(matches!(outcome, RunOutcome::Halted { .. }));
    let trace = trace.lock().unwrap().clone();
    let events = events.lock().unwrap().clone();
    (sim, trace, events)
}

#[test]
fn trace_and_events_agree_on_operations() {
    let (sim, trace, events) = run_both(SimConfig::default());

    // The trace records every slot including nop fillers; OpIssue events
    // exist only under a per-operation cycle model. The functional views
    // that must agree: instruction count and non-`nop` operation stream.
    let traced_ops: Vec<(u32, &'static str)> = trace
        .iter()
        .filter(|r| r.opcode != "nop")
        .map(|r| (r.addr, r.opcode))
        .collect();
    assert_eq!(traced_ops.len() as u64, sim.stats().operations);

    let instr_events =
        events.iter().filter(|e| matches!(e, SimEvent::Instr { .. })).count() as u64;
    assert_eq!(instr_events, sim.stats().instructions);

    // ISA switches appear in both streams, at the same addresses.
    let traced_switches: Vec<u32> =
        trace.iter().filter(|r| r.opcode == "switchtarget").map(|r| r.addr).collect();
    let event_switches: Vec<u32> = events
        .iter()
        .filter_map(|e| match e {
            SimEvent::IsaSwitch { addr, .. } => Some(*addr),
            _ => None,
        })
        .collect();
    assert_eq!(traced_switches, event_switches);

    // Simops likewise.
    let traced_simops =
        trace.iter().filter(|r| r.opcode == "simop").count();
    let event_simops =
        events.iter().filter(|e| matches!(e, SimEvent::SimOp { .. })).count();
    assert_eq!(traced_simops, event_simops);
}

#[test]
fn doe_issue_events_match_trace_operations() {
    let (sim, trace, events) = run_both(SimConfig::with_model(CycleModelKind::Doe));

    // The trace and the issue-event stream describe the same operations:
    // identical (address, opcode) sequences. (The trace's `cycle` field is
    // the functional retire index; the model's issue cycle lives only in
    // the OpIssue events, so the timing columns are intentionally
    // different views.)
    let traced: Vec<(u32, &'static str)> =
        trace.iter().filter(|r| r.opcode != "nop").map(|r| (r.addr, r.opcode)).collect();
    let issued: Vec<(u32, &'static str)> = events
        .iter()
        .filter_map(|e| match e {
            SimEvent::OpIssue { addr, name, .. } => Some((*addr, *name)),
            _ => None,
        })
        .collect();
    assert_eq!(traced, issued);

    // Acceptance criterion: per-slot issue events equal the executed
    // non-`nop` operations.
    assert_eq!(issued.len() as u64, sim.stats().operations);

    // Issue timing is internally consistent: completion never precedes
    // issue, and within one slot issues are strictly ordered.
    let mut last_issue_per_slot = std::collections::BTreeMap::new();
    for e in &events {
        if let SimEvent::OpIssue { slot, issue, completion, .. } = e {
            assert!(completion >= issue);
            if let Some(prev) = last_issue_per_slot.insert(*slot, *issue) {
                assert!(*issue > prev, "slot {slot} issued twice at {issue}");
            }
        }
    }

    // The issue-cycle timeline is deterministic: a second observed run
    // produces the identical OpIssue stream.
    let (_, _, events2) = run_both(SimConfig::with_model(CycleModelKind::Doe));
    let issues = |evs: &[SimEvent]| -> Vec<(u32, u8, u64, u64)> {
        evs.iter()
            .filter_map(|e| match e {
                SimEvent::OpIssue { addr, slot, issue, completion, .. } => {
                    Some((*addr, *slot, *issue, *completion))
                }
                _ => None,
            })
            .collect()
    };
    assert_eq!(issues(&events), issues(&events2));
}

#[test]
fn perfetto_export_has_expected_shape() {
    let (sim, _, events) = run_both(SimConfig::with_model(CycleModelKind::Doe));
    let json = perfetto::trace_json(&events);
    kahrisma_observe::json_lint::validate(&json).expect("Perfetto JSON parses");

    // Schema shape: the trace-event envelope, the functional track, and a
    // track per issue slot that saw an operation.
    assert!(json.starts_with("{\"displayTimeUnit\""));
    assert!(json.contains("\"traceEvents\":["));
    assert!(json.contains("\"name\":\"kahrisma-sim\""));
    assert!(json.contains("functional instructions"));
    assert!(json.contains("issue slot 0"));

    // One complete event per issued operation.
    let op_events = json.matches("\"stall\":").count() as u64;
    assert_eq!(op_events, sim.stats().operations);
    // One complete event per retired instruction on the functional track.
    let instr_events = json.matches("\"seq\":").count() as u64;
    assert_eq!(instr_events, sim.stats().instructions);
}

#[test]
fn observation_does_not_change_results() {
    let exe = build(&[("w.s", WORKLOAD)]).expect("assemble");
    let mut plain = Simulator::new(&exe, SimConfig::with_model(CycleModelKind::Doe)).unwrap();
    let plain_out = plain.run(1_000_000).unwrap();
    let (observed, _, _) = run_both(SimConfig::with_model(CycleModelKind::Doe));
    assert_eq!(
        plain_out,
        RunOutcome::Halted { exit_code: observed.state().exit_code }
    );
    assert_eq!(plain.stats().instructions, observed.stats().instructions);
    assert_eq!(plain.stats().operations, observed.stats().operations);
    assert_eq!(plain.cycle_stats(), observed.cycle_stats());
    assert_eq!(plain.state().stdout_string(), observed.state().stdout_string());
}
