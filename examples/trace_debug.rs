//! Trace-file generation and debugging (paper §V, §V-C): record every
//! executed operation with its inputs/outputs, and map instruction
//! addresses back to assembly lines and function names — including the
//! instruction-pointer history after a crash.
//!
//! ```text
//! cargo run --release -p kahrisma --example trace_debug
//! ```

use kahrisma::core::{TraceRecord, TraceSink};
use kahrisma::prelude::*;
use std::sync::{Arc, Mutex};

/// A sink that shares its records with the example after the run.
struct SharedSink(Arc<Mutex<Vec<TraceRecord>>>);

impl TraceSink for SharedSink {
    fn record(&mut self, record: TraceRecord) {
        self.0.lock().unwrap().push(record);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let asm_source = r#"
        .isa risc
        .text
        .global main
        .func main
    main:
        li   t0, 5          ; counter
        li   t1, 1          ; factorial accumulator
    loop:
        mul  t1, t1, t0
        addi t0, t0, -1
        bne  t0, zero, loop
        mv   rv, t1
        jr   ra
        .endfunc
    "#;
    let exe = kahrisma::asm::build(&[("factorial.s", asm_source)])?;

    // Record a full trace ("for each executed operation the cycle number,
    // opcode, input/output register numbers and values, and immediate
    // values", §V).
    let records = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Simulator::new(&exe, SimConfig::default())?;
    sim.set_trace_sink(Box::new(SharedSink(records.clone())));
    let outcome = sim.run(10_000)?;
    assert_eq!(outcome, RunOutcome::Halted { exit_code: 120 }); // 5!

    println!("--- first 12 trace lines ---");
    for r in records.lock().unwrap().iter().take(12) {
        println!("{}", r.to_line());
    }
    println!("({} operations traced in total)", records.lock().unwrap().len());

    // Address → source mapping, as the paper's simulator offers for error
    // detection: assembly file, line number, and containing function.
    println!("\n--- instruction-pointer history (newest last) ---");
    let history: Vec<u32> = sim.ip_history().collect();
    for addr in history.iter().rev().take(6).rev() {
        println!("{addr:#010x}  {}", sim.describe_addr(*addr));
    }

    // The same machinery annotates faults: running garbage produces an
    // illegal-instruction error with source context.
    let bad = kahrisma::asm::build(&[(
        "crash.s",
        ".isa risc\n.text\n.global main\n.func main\nmain: la t0, junk\n jr t0\n.endfunc\n.data\njunk: .word 0xFFFFFFFF\n",
    )])?;
    let mut crash_sim = Simulator::new(&bad, SimConfig::default())?;
    let err = crash_sim.run(1_000).expect_err("must fault");
    println!("\n--- fault report ---\n{err}");
    Ok(())
}
