//! Quickstart: compile a small KC program for a 4-issue VLIW instance, run
//! it in the cycle-approximate simulator, and print functional and cycle
//! statistics.
//!
//! ```text
//! cargo run --release -p kahrisma --example quickstart
//! ```

use kahrisma::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    // A small KC program: sum of the first 100 squares, printed and
    // returned (mod 256) as the exit code.
    let source = r#"
        int square(int x) { return x * x; }
        int main() {
            int s = 0;
            int i;
            for (i = 1; i <= 100; i++) s += square(i);
            print_int(s);
            putchar('\n');
            return s & 255;
        }
    "#;

    // Compile → assemble → link (the C-library stubs are linked in
    // automatically) for the 4-issue VLIW instance.
    let exe = kahrisma::kcc::compile_to_executable(source, &CompileOptions::for_isa(IsaKind::Vliw4))?;
    println!("entry {:#010x}, entry isa {}", exe.entry, exe.entry_isa);

    // Run with the DOE cycle model — the paper's approximation of the real
    // KAHRISMA microarchitecture.
    let mut sim = Simulator::new(&exe, SimConfig::with_model(CycleModelKind::Doe))?;
    let outcome = sim.run(10_000_000)?;
    println!("outcome: {outcome:?}");
    println!("stdout:  {}", sim.state().stdout_string().trim_end());

    let stats = sim.stats();
    println!(
        "executed {} instructions ({} operations), {} decoded once ({}% avoided)",
        stats.instructions,
        stats.operations,
        stats.detect_decodes,
        (stats.decode_avoided_ratio() * 100.0).round()
    );
    let cycles = sim.cycle_stats().expect("DOE model attached");
    println!(
        "DOE approximation: {} cycles, {:.2} operations/cycle",
        cycles.cycles,
        cycles.ops_per_cycle()
    );
    Ok(())
}
