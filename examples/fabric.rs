//! Multi-core fabric quickstart: run two different workloads on two
//! differently configured cores, synchronized at deterministic quantum
//! barriers, and print the aggregate result.
//!
//! ```text
//! cargo run --release --example fabric
//! ```

use kahrisma::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    // A heterogeneous fabric: a RISC core running the DCT next to a VLIW-4
    // core running the FFT, the latter with the AIE cycle model attached.
    let cores = vec![CoreSpec::parse("dct:risc")?, CoreSpec::parse("fft:vliw4:aie")?];
    let config = FabricConfig { quantum: 10_000, host_threads: 2, ..FabricConfig::default() };
    let mut fabric = Fabric::new(cores, config)?;

    let outcome = fabric.run_for(500_000_000)?;
    assert_eq!(outcome, FabricOutcome::AllHalted);

    let stats = fabric.stats();
    for (index, core) in stats.cores.iter().enumerate() {
        println!(
            "core{index} {:<14} {:>9} instructions, exit {:?}",
            core.name, core.stats.instructions, core.exit_code
        );
    }
    println!(
        "fabric: {} quanta, {} instructions aggregate",
        stats.quanta, stats.aggregate.instructions
    );

    // The same run expressed as the unified stats document.
    let mut report = StatsReport::new();
    stats.report_into(&mut report);
    println!("{}", report.to_json());
    Ok(())
}
