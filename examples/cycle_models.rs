//! Compare all cycle models (paper §VI) on one workload: the theoretical
//! ILP bound, atomic instruction execution, dynamic operation execution,
//! and the cycle-accurate reference pipeline — the accuracy/performance
//! trade-off the paper is about.
//!
//! ```text
//! cargo run --release -p kahrisma --example cycle_models [workload]
//! ```

use kahrisma::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "dct".to_string());
    let workload = Workload::ALL
        .into_iter()
        .find(|w| w.name() == name)
        .ok_or_else(|| -> Box<dyn std::error::Error + Send + Sync> {
            format!("unknown workload `{name}` (try dct, aes, fft, quicksort)").into()
        })?;
    println!("workload: {} on vliw4\n", workload.name());

    let exe = workload.build(IsaKind::Vliw4)?;

    println!("{:<28}{:>12}{:>10}", "model", "cycles", "ops/cyc");
    for (label, kind) in [
        ("ILP (theoretical bound)", CycleModelKind::Ilp),
        ("AIE (atomic instructions)", CycleModelKind::Aie),
        ("DOE (dynamic operations)", CycleModelKind::Doe),
    ] {
        let mut sim = Simulator::new(&exe, SimConfig::with_model(kind))?;
        let outcome = sim.run(500_000_000)?;
        assert!(matches!(outcome, RunOutcome::Halted { .. }));
        let stats = sim.cycle_stats().expect("model attached");
        println!("{label:<28}{:>12}{:>10.2}", stats.cycles, stats.ops_per_cycle());
    }

    let rtl = kahrisma::rtl::simulate(&exe, &RtlConfig::default(), 500_000_000)?;
    let rtl_opc = rtl.operations as f64 / rtl.cycles as f64;
    println!("{:<28}{:>12}{:>10.2}", "RTL (cycle-accurate)", rtl.cycles, rtl_opc);

    println!("\nnotes:");
    println!(" - AIE is the most pessimistic (every instruction is a barrier)");
    println!(" - DOE approximates the RTL reference within a few percent");
    println!(" - ILP assumes unlimited resources and bounds every instance");
    Ok(())
}
