//! Mixed-ISA execution (paper §V-D): a program whose functions run on
//! *different* processor instances — `main` on a 4-issue VLIW, one helper on
//! RISC, another on a 2-issue VLIW — switching the active ISA at runtime
//! with `switchtarget`.
//!
//! ```text
//! cargo run --release -p kahrisma --example mixed_isa
//! ```

use kahrisma::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        int tab[8] = {3, 1, 4, 1, 5, 9, 2, 6};

        // Compiled for RISC: minimal resources for control-heavy code.
        int sum_odd(int* p, int n) {
            int s = 0;
            int i;
            for (i = 0; i < n; i++) {
                if (p[i] % 2) s += p[i];
            }
            return s;
        }

        // Compiled for a 2-issue VLIW.
        int scale(int x) { return x * 4 + 2; }

        // Compiled for a 4-issue VLIW.
        int main() {
            return scale(sum_odd(tab, 8));
        }
    "#;

    let options = CompileOptions::for_isa(IsaKind::Vliw4)
        .with_function_isa("sum_odd", IsaKind::Risc)
        .with_function_isa("scale", IsaKind::Vliw2);
    let asm = kahrisma::kcc::compile(source, &options)?;

    // Show the cross-ISA call machinery the compiler emitted.
    println!("--- generated switchtarget sequences ---");
    for line in asm.lines().filter(|l| l.contains("switchtarget") || l.contains(".isa")) {
        println!("{line}");
    }

    let exe = kahrisma::asm::build(&[("mixed.s", &asm)])?;
    let mut sim = Simulator::new(&exe, SimConfig::default())?;
    let outcome = sim.run(1_000_000)?;
    // Odd entries sum to 3+1+1+5+9 = 19; scale(19) = 78.
    assert_eq!(outcome, RunOutcome::Halted { exit_code: 78 });
    println!("\noutcome: {outcome:?}");

    let stats = sim.stats();
    println!("isa switches executed: {}", stats.isa_switches);
    assert!(stats.isa_switches >= 4, "each cross-ISA call switches twice");

    // The executable's ISA map records which ISA each address range uses.
    println!("\n--- function table (name, start, isa) ---");
    for f in &exe.debug.funcs {
        println!("{:<12} {:#010x}..{:#010x}  isa {}", f.name, f.start, f.end, f.isa);
    }
    Ok(())
}
