//! Function-level ISA selection — the paper's motivating use case (§I,
//! §VIII): "automatic selection of an appropriate ISA for each function of
//! a given application […] The theoretical ILP could be used as an
//! indicator for the ISA selection process without the need to simulate any
//! combination of the different ISAs and applications."
//!
//! This example does both:
//! 1. measures the **theoretical ILP** of each workload once (RISC binary),
//!    and uses it as the cheap indicator;
//! 2. exhaustively simulates every instance with the **DOE model** and
//!    compares the indicator's ranking with the measured one, trading
//!    cycles against the resources (EDPEs) each instance occupies.
//!
//! ```text
//! cargo run --release -p kahrisma --example isa_selection
//! ```

use kahrisma::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let widths = [
        (1u32, IsaKind::Risc),
        (2, IsaKind::Vliw2),
        (4, IsaKind::Vliw4),
        (6, IsaKind::Vliw6),
        (8, IsaKind::Vliw8),
    ];

    // Selection policy: the narrowest instance within 5% of the best
    // achievable cycle count — adapt the resources of a hardware thread to
    // the application's exploitable parallelism (§III).
    const SLACK: f64 = 1.05;
    println!(
        "{:<11}{:>8}   narrowest instance within 5% of best (DOE cycles per instance)",
        "app", "ILP"
    );
    for w in Workload::ALL {
        // Indicator: theoretical ILP from one RISC simulation (§VI-A).
        let risc = w.build(IsaKind::Risc)?;
        let mut sim = Simulator::new(&risc, SimConfig::with_model(CycleModelKind::Ilp))?;
        sim.run(500_000_000)?;
        let ilp = sim.cycle_stats().expect("ilp model").ops_per_cycle();

        // Exhaustive measurement: DOE cycles per instance.
        let mut measured = Vec::new();
        let mut cells = Vec::new();
        for &(width, isa) in &widths {
            let exe = w.build(isa)?;
            let mut sim = Simulator::new(&exe, SimConfig::with_model(CycleModelKind::Doe))?;
            sim.run(500_000_000)?;
            let cycles = sim.cycle_stats().expect("doe model").cycles;
            cells.push(format!("{}={}", isa.name(), cycles));
            measured.push((width, isa, cycles));
        }
        let best = measured.iter().map(|&(_, _, c)| c).min().expect("five instances");
        let (_, chosen, _) = measured
            .iter()
            .find(|&&(_, _, c)| (c as f64) <= best as f64 * SLACK)
            .copied()
            .expect("some instance is within the slack");
        println!(
            "{:<11}{:>8.2}   -> {:<7} [{}]",
            w.name(),
            ilp,
            chosen.name(),
            cells.join(" ")
        );
    }

    println!();
    println!("reading: high-ILP applications justify wide instances; low-ILP ones");
    println!("waste EDPEs there — the indicator predicts this without simulating");
    println!("every (application x ISA) combination, as the paper envisions.");
    Ok(())
}
