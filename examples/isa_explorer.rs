//! Explore the architecture description: the ISA configurations, their
//! generated operation tables (paper §V: name, size, fields, implicit
//! registers), and a round trip through detection and decoding.
//!
//! ```text
//! cargo run --release -p kahrisma --example isa_explorer
//! ```

use kahrisma::adl::{FieldKind, TargetGen};
use kahrisma::isa;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = isa::arch();
    println!("architecture `{}`:", arch.name());
    println!(
        "  register file: {} x 32-bit GPRs (r0 hardwired: {})",
        arch.regfile().count(),
        arch.regfile().has_zero_register()
    );
    for isa_desc in arch.isas() {
        println!(
            "  {} (id {}): {}-issue, {} bytes/instruction, {} operations",
            isa_desc.name(),
            isa_desc.id().value(),
            isa_desc.issue_width(),
            isa_desc.instr_size(),
            isa_desc.operations().len()
        );
    }

    // TargetGen compiles the description into per-ISA operation tables.
    let tables = TargetGen::new(&arch).generate()?;
    let risc = tables.require(isa::isa_id::RISC)?;

    println!("\noperation table of `{}` (excerpt):", risc.name());
    println!("{:<14}{:<8}{:<8}{:<26}implicit", "name", "opcode", "delay", "fields");
    for op in risc.operations().iter().take(12) {
        let fields: Vec<String> = op
            .encoding()
            .fields()
            .iter()
            .map(|f| match f.kind() {
                FieldKind::Opcode => "op".into(),
                FieldKind::Rd => "rd".into(),
                FieldKind::Rs1 => "rs1".into(),
                FieldKind::Rs2 => "rs2".into(),
                FieldKind::Imm { signed } => {
                    format!("{}imm{}", if signed { "s" } else { "u" }, f.width())
                }
                other => format!("{other:?}"),
            })
            .collect();
        let implicit: Vec<String> =
            op.implicit_writes().iter().map(|r| format!("w:{r}")).collect();
        println!(
            "{:<14}{:#04x}    {:<8}{:<26}{}",
            op.name(),
            op.opcode(),
            op.delay(),
            fields.join(","),
            implicit.join(",")
        );
    }

    // Detection + decoding round trip (the simulator's hot path).
    let (_, addi) = risc.op_by_name("addi").expect("addi exists");
    let word = addi.encode(5, 6, 0, (-42i32) as u32);
    let decoded = risc.decode(word).expect("detects its own encoding");
    println!(
        "\nencoded `addi r5, r6, -42` as {word:#010x}; decoded: {} rd=r{} rs1=r{} imm={}",
        risc.op(decoded.op_index).name(),
        decoded.fields.rd,
        decoded.fields.rs1,
        decoded.fields.simm()
    );
    Ok(())
}
