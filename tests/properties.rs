//! Property-based tests over core data structures and cross-crate
//! invariants, including differential testing of the compiler across issue
//! widths.

use proptest::prelude::*;

use kahrisma::adl::{AluOp, Field, FieldKind};
use kahrisma::core::{AccessKind, CacheConfig, Memory};
use kahrisma::elf::{Object, SectionId, SymKind, Symbol};
use kahrisma::prelude::*;

// ---------------------------------------------------------------- memory --

proptest! {
    #[test]
    fn memory_matches_hashmap_model(writes in prop::collection::vec((any::<u32>(), any::<u8>()), 0..200)) {
        let mut mem = Memory::new();
        let mut model = std::collections::HashMap::new();
        for &(addr, value) in &writes {
            mem.write_byte(addr, value);
            model.insert(addr, value);
        }
        for &(addr, _) in &writes {
            prop_assert_eq!(mem.read_byte(addr), model[&addr]);
        }
    }

    #[test]
    fn memory_word_roundtrip_any_alignment(addr in any::<u32>(), value in any::<u32>()) {
        let mut mem = Memory::new();
        mem.write_word(addr, value);
        prop_assert_eq!(mem.read_word(addr), value);
        prop_assert_eq!(
            u32::from(mem.read_half(addr)) | (u32::from(mem.read_half(addr.wrapping_add(2))) << 16),
            value
        );
    }
}

// ------------------------------------------------------------------- alu --

proptest! {
    #[test]
    fn alu_div_rem_identity(a in any::<i32>(), b in any::<i32>().prop_filter("nonzero", |&b| b != 0)) {
        let (a, b) = (a as u32, b as u32);
        let q = AluOp::Div.eval(a, b) as i32;
        let r = AluOp::Rem.eval(a, b) as i32;
        // q*b + r == a in wrapping arithmetic (covers the MIN/-1 case too).
        prop_assert_eq!(q.wrapping_mul(b as i32).wrapping_add(r), a as i32);
    }

    #[test]
    fn alu_unsigned_div_rem_identity(a in any::<u32>(), b in 1u32..) {
        let q = AluOp::Divu.eval(a, b);
        let r = AluOp::Remu.eval(a, b);
        prop_assert_eq!(q * b + r, a);
        prop_assert!(r < b);
    }

    #[test]
    fn alu_commutative_ops(a in any::<u32>(), b in any::<u32>()) {
        for op in [AluOp::Add, AluOp::And, AluOp::Or, AluOp::Xor, AluOp::Mul] {
            prop_assert_eq!(op.eval(a, b), op.eval(b, a));
        }
    }

    #[test]
    fn alu_shift_amount_is_masked(a in any::<u32>(), s in any::<u32>()) {
        prop_assert_eq!(AluOp::Sll.eval(a, s), AluOp::Sll.eval(a, s & 31));
        prop_assert_eq!(AluOp::Srl.eval(a, s), AluOp::Srl.eval(a, s & 31));
        prop_assert_eq!(AluOp::Sra.eval(a, s), AluOp::Sra.eval(a, s & 31));
    }
}

// ---------------------------------------------------------------- fields --

proptest! {
    #[test]
    fn field_insert_extract_roundtrip(lsb in 0u8..32, width in 1u8..=32, value in any::<u32>(), word in any::<u32>()) {
        prop_assume!(u32::from(lsb) + u32::from(width) <= 32);
        let f = Field::new(FieldKind::Imm { signed: false }, lsb, width);
        let mask = f.mask() >> lsb;
        let inserted = f.insert(word, value);
        prop_assert_eq!(f.extract(inserted), value & mask);
        // Bits outside the field are untouched.
        prop_assert_eq!(inserted & !f.mask(), word & !f.mask());
    }

    #[test]
    fn signed_field_sign_extends(width in 2u8..=31, value in any::<i32>()) {
        let f = Field::new(FieldKind::Imm { signed: true }, 0, width);
        let min = -(1i64 << (width - 1));
        let max = (1i64 << (width - 1)) - 1;
        let v = i64::from(value).clamp(min, max);
        let word = f.insert(0, v as u32);
        prop_assert_eq!(f.extract_value(word) as i32 as i64, v);
    }
}

// ------------------------------------------------------------------- elf --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn object_roundtrips_through_elf(
        text in prop::collection::vec(any::<u8>(), 0..256),
        data in prop::collection::vec(any::<u8>(), 0..128),
        bss in 0u32..4096,
        names in prop::collection::hash_set("[a-z_][a-z0-9_]{0,12}", 0..8),
    ) {
        let mut obj = Object::new();
        // Word-align text like real operation streams.
        let mut text = text;
        text.truncate(text.len() / 4 * 4);
        obj.text = text;
        obj.data = data;
        obj.bss_size = bss;
        for (i, name) in names.iter().enumerate() {
            let section = match i % 3 {
                0 => SectionId::Text,
                1 => SectionId::Data,
                _ => SectionId::Bss,
            };
            let kind = if i % 2 == 0 { SymKind::Func } else { SymKind::Object };
            if i % 4 == 0 {
                obj.symbols.push(Symbol::local(name, section, i as u32 * 4, kind));
            } else {
                obj.symbols.push(Symbol::global(name, section, i as u32 * 4, kind));
            }
        }
        let back = Object::from_bytes(&obj.to_bytes()).expect("roundtrip");
        prop_assert_eq!(&back.text, &obj.text);
        prop_assert_eq!(&back.data, &obj.data);
        prop_assert_eq!(back.bss_size, obj.bss_size);
        prop_assert_eq!(back.symbols.len(), obj.symbols.len());
        for s in &obj.symbols {
            prop_assert!(back.symbols.contains(s), "missing {:?}", s);
        }
    }
}

// ----------------------------------------------------------------- cache --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn cache_accounting_and_monotonic_completions(
        accesses in prop::collection::vec((0u32..0x4000, any::<bool>(), 0u64..64), 1..200)
    ) {
        let mut h = MemoryHierarchy::new()
            .with_cache(CacheConfig::paper_l1())
            .with_memory(18);
        for (i, &(addr, is_write, start)) in accesses.iter().enumerate() {
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            let completion = h.access(addr, kind, 0, start);
            // A hit takes the L1 delay; anything else takes longer — but
            // never completes before start + L1 delay.
            prop_assert!(completion >= start + 3);
            let stats = h.l1_stats().expect("cache present");
            prop_assert_eq!(stats.hits + stats.misses, (i + 1) as u64);
        }
    }

    #[test]
    fn connection_limit_is_conserving(starts in prop::collection::vec(0u64..32, 1..64)) {
        // With one port, n accesses issued at arbitrary cycles occupy n
        // distinct request cycles: the maximum granted start grows at least
        // linearly once the port saturates.
        let mut h = MemoryHierarchy::new().with_conn_limit(1).with_memory(0);
        let mut completions = Vec::new();
        for &s in &starts {
            completions.push(h.access(0, AccessKind::Read, 0, s));
        }
        completions.sort_unstable();
        for (i, pair) in completions.windows(2).enumerate() {
            prop_assert!(pair[1] > pair[0], "duplicate completion at {i}: {completions:?}");
        }
    }
}

// ---------------------------------------------- compiler (differential) --

/// A random arithmetic expression over `a`, `b`, `c` using operators that
/// are total (no division) — evaluated identically by Rust and by the
/// compiled program on every issue width.
#[derive(Debug, Clone)]
enum Expr {
    Var(u8),
    Lit(i32),
    Bin(&'static str, Box<Expr>, Box<Expr>),
}

impl Expr {
    fn to_kc(&self) -> String {
        match self {
            Expr::Var(i) => char::from(b'a' + i % 3).to_string(),
            Expr::Lit(v) => format!("({v})"),
            Expr::Bin(op, l, r) => format!("({} {op} {})", l.to_kc(), r.to_kc()),
        }
    }

    fn eval(&self, vars: [i32; 3]) -> i32 {
        match self {
            Expr::Var(i) => vars[usize::from(i % 3)],
            Expr::Lit(v) => *v,
            Expr::Bin(op, l, r) => {
                let (a, b) = (l.eval(vars), r.eval(vars));
                match *op {
                    "+" => a.wrapping_add(b),
                    "-" => a.wrapping_sub(b),
                    "*" => a.wrapping_mul(b),
                    "&" => a & b,
                    "|" => a | b,
                    "^" => a ^ b,
                    _ => unreachable!(),
                }
            }
        }
    }
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0u8..3).prop_map(Expr::Var),
        (-1000i32..1000).prop_map(Expr::Lit),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        (
            prop_oneof![
                Just("+"),
                Just("-"),
                Just("*"),
                Just("&"),
                Just("|"),
                Just("^")
            ],
            inner.clone(),
            inner,
        )
            .prop_map(|(op, l, r)| Expr::Bin(op, Box::new(l), Box::new(r)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn compiled_expressions_match_reference_on_all_widths(
        e in arb_expr(),
        a in -500i32..500,
        b in -500i32..500,
        c in -500i32..500,
    ) {
        let expected = e.eval([a, b, c]) & 0xFF;
        let src = format!(
            "int main() {{ int a = {a}; int b = {b}; int c = {c}; return ({}) & 255; }}",
            e.to_kc()
        );
        for isa in [IsaKind::Risc, IsaKind::Vliw8] {
            let exe = kahrisma::kcc::compile_to_executable(&src, &CompileOptions::for_isa(isa))
                .expect("compile");
            let mut sim = Simulator::new(&exe, SimConfig::default()).expect("load");
            let RunOutcome::Halted { exit_code } = sim.run(1_000_000).expect("run") else {
                panic!("budget");
            };
            prop_assert_eq!(
                exit_code,
                expected as u32,
                "isa {} src {}",
                isa.name(),
                src
            );
        }
    }
}

// --------------------------------------------------------- metrics merge --
//
// `MetricsRegistry::merge` is the fleet aggregation primitive: the gate
// folds every worker's report into one. The fold is only well-defined if
// merge is a commutative monoid — workers answer in arbitrary order, and
// sub-fleets must aggregate the same as a flat fleet.

use kahrisma::observe::MetricsRegistry;

const METRIC_NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

fn arb_registry() -> impl Strategy<Value = MetricsRegistry> {
    (
        prop::collection::vec((0usize..4, 0u64..1000), 0..6),
        prop::collection::vec((0usize..4, -1000i32..1000), 0..6),
        prop::collection::vec(
            (0usize..4, prop::collection::vec(0u64..1_000_000, 1..10)),
            0..4,
        ),
    )
        .prop_map(|(counters, gauges, histograms)| {
            let mut reg = MetricsRegistry::new();
            for (name, delta) in counters {
                reg.count(METRIC_NAMES[name], delta);
            }
            for (name, value) in gauges {
                reg.set_gauge(METRIC_NAMES[name], f64::from(value));
            }
            for (name, samples) in histograms {
                for sample in samples {
                    reg.record(METRIC_NAMES[name], sample);
                }
            }
            reg
        })
}

fn merged(a: &MetricsRegistry, b: &MetricsRegistry) -> MetricsRegistry {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn metrics_merge_is_commutative(a in arb_registry(), b in arb_registry()) {
        prop_assert_eq!(merged(&a, &b).to_json(), merged(&b, &a).to_json());
    }

    #[test]
    fn metrics_merge_is_associative(
        a in arb_registry(),
        b in arb_registry(),
        c in arb_registry(),
    ) {
        prop_assert_eq!(
            merged(&merged(&a, &b), &c).to_json(),
            merged(&a, &merged(&b, &c)).to_json()
        );
    }

    #[test]
    fn empty_registry_is_the_merge_identity(a in arb_registry()) {
        let empty = MetricsRegistry::new();
        prop_assert_eq!(merged(&a, &empty).to_json(), a.to_json());
        prop_assert_eq!(merged(&empty, &a).to_json(), a.to_json());
    }
}
