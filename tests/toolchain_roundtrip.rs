//! Cross-crate integration: the complete toolchain round trip — KC source
//! → assembly → relocatable ELF objects → linked executable ELF bytes →
//! reparse → simulate — exercising compiler, assembler, linker, codec and
//! simulator together.

use kahrisma::prelude::*;

const PROGRAM: &str = "
    int tab[6] = {6, 5, 4, 3, 2, 1};
    int mul_add(int a, int b, int c) { return a * b + c; }
    int main() {
        int acc = 0;
        int i;
        for (i = 0; i < 6; i++) acc = mul_add(acc, 2, tab[i]);
        return acc;   // Horner over tab with base 2
    }
";

fn expected_exit() -> u32 {
    let tab = [6u32, 5, 4, 3, 2, 1];
    tab.iter().fold(0u32, |acc, &v| acc * 2 + v)
}

#[test]
fn compile_assemble_link_simulate() {
    for isa in IsaKind::ALL {
        let exe = kahrisma::kcc::compile_to_executable(PROGRAM, &CompileOptions::for_isa(isa))
            .unwrap_or_else(|e| panic!("compile for {}: {e}", isa.name()));
        let mut sim = Simulator::new(&exe, SimConfig::default()).expect("load");
        let outcome = sim.run(1_000_000).expect("run");
        assert_eq!(outcome, RunOutcome::Halted { exit_code: expected_exit() }, "{}", isa.name());
    }
}

#[test]
fn executable_survives_elf_serialization() {
    let exe = kahrisma::kcc::compile_to_executable(
        PROGRAM,
        &CompileOptions::for_isa(IsaKind::Vliw4),
    )
    .expect("compile");
    let bytes = exe.to_bytes();
    let reparsed = Executable::from_bytes(&bytes).expect("reparse");
    assert_eq!(reparsed, exe);

    // The reparsed executable must simulate identically.
    let mut sim = Simulator::new(&reparsed, SimConfig::default()).expect("load");
    let outcome = sim.run(1_000_000).expect("run");
    assert_eq!(outcome, RunOutcome::Halted { exit_code: expected_exit() });
}

#[test]
fn object_files_survive_elf_serialization() {
    let asm = kahrisma::kcc::compile(PROGRAM, &CompileOptions::for_isa(IsaKind::Vliw2))
        .expect("compile");
    let obj = kahrisma::asm::assemble("program.s", &asm).expect("assemble");
    let bytes = obj.to_bytes();
    let back = kahrisma::elf::Object::from_bytes(&bytes).expect("reparse object");
    assert_eq!(back.text, obj.text);
    assert_eq!(back.relocs.len(), obj.relocs.len());
    assert_eq!(back.debug, obj.debug);

    // Link the reparsed object together with fresh stubs and run.
    let stubs = kahrisma::asm::assemble(
        "libc_stubs.s",
        &kahrisma::asm::libc_stubs_asm(),
    )
    .expect("stubs");
    let exe = kahrisma::asm::link(&[back, stubs], &kahrisma::asm::LinkOptions::default())
        .expect("link");
    let mut sim = Simulator::new(&exe, SimConfig::default()).expect("load");
    assert_eq!(
        sim.run(1_000_000).expect("run"),
        RunOutcome::Halted { exit_code: expected_exit() }
    );
}

#[test]
fn separate_compilation_units_link_together() {
    // Two KC units compiled separately into objects, linked with the stubs.
    // Externals are declared by prototype; separate compilation assumes a
    // consistent target ISA across units (see `kahrisma_kcc` docs).
    let unit_a = "int helper(int x); int main() { return helper(20) + 2; }";
    let unit_b = "int helper(int x) { return x * 2; }";
    for isa in [IsaKind::Risc, IsaKind::Vliw4] {
        let asm_a = kahrisma::kcc::compile(unit_a, &CompileOptions::for_isa(isa)).unwrap();
        let asm_b = kahrisma::kcc::compile(unit_b, &CompileOptions::for_isa(isa)).unwrap();
        let exe = kahrisma::asm::build(&[("a.s", &asm_a), ("b.s", &asm_b)]).expect("build");
        let mut sim = Simulator::new(&exe, SimConfig::default()).expect("load");
        assert_eq!(
            sim.run(1_000_000).expect("run"),
            RunOutcome::Halted { exit_code: 42 },
            "{}",
            isa.name()
        );
    }
}

#[test]
fn debug_metadata_maps_addresses_to_functions() {
    let exe = kahrisma::kcc::compile_to_executable(
        PROGRAM,
        &CompileOptions::for_isa(IsaKind::Risc),
    )
    .expect("compile");
    let main = exe.debug.funcs.iter().find(|f| f.name == "main").expect("main recorded");
    let mul_add = exe.debug.funcs.iter().find(|f| f.name == "mul_add").expect("helper recorded");
    assert!(main.start < main.end);
    assert!(mul_add.start < mul_add.end);
    assert_eq!(exe.debug.isa_for_addr(main.start), Some(0));
    // Every generated line entry points at the compiler's assembly unit.
    assert!(exe.debug.line_for_addr(main.start).is_some());
}
