//! Trace-file validation (paper §V, goal 3): the trace "contains the exact
//! behavior of the processor for each cycle" and "is used to validate our
//! hardware implementation". These tests replay a recorded trace against an
//! independent architectural interpretation and cross-check it.

use std::sync::{Arc, Mutex};

use kahrisma::core::{TraceRecord, TraceSink};
use kahrisma::prelude::*;

struct SharedSink(Arc<Mutex<Vec<TraceRecord>>>);

impl TraceSink for SharedSink {
    fn record(&mut self, record: TraceRecord) {
        self.0.lock().unwrap().push(record);
    }
}

fn trace_of(src: &str, isa: IsaKind) -> (Vec<TraceRecord>, u32) {
    let exe = kahrisma::kcc::compile_to_executable(src, &CompileOptions::for_isa(isa))
        .expect("compile");
    let mut sim = Simulator::new(&exe, SimConfig::default()).expect("load");
    let records = Arc::new(Mutex::new(Vec::new()));
    sim.set_trace_sink(Box::new(SharedSink(records.clone())));
    let RunOutcome::Halted { exit_code } = sim.run(10_000_000).expect("run") else {
        panic!("budget exhausted");
    };
    let r = records.lock().unwrap().clone();
    (r, exit_code)
}

const PROGRAM: &str = "
    int main() {
        int s = 0;
        int i;
        for (i = 0; i < 10; i++) s = s * 3 + i;
        return s & 255;
    }
";

#[test]
fn trace_replays_register_dataflow() {
    // Replay: maintain a register file from the trace's outputs and check
    // that every input value matches what the trace previously established.
    let (records, _) = trace_of(PROGRAM, IsaKind::Risc);
    assert!(!records.is_empty());
    let mut regs = [0u32; 32];
    regs[29] = kahrisma::isa::abi::STACK_TOP;
    let mut mismatches = 0;
    for r in &records {
        for &(reg, value) in &r.inputs {
            // Loads read memory, so their base register still must match;
            // all values in `inputs` are register reads.
            if regs[reg as usize] != value {
                mismatches += 1;
            }
        }
        for &(reg, value) in &r.outputs {
            if reg != 0 {
                regs[reg as usize] = value;
            }
        }
    }
    // Loaded values enter registers via `outputs`, so a pure register
    // replay must agree exactly.
    assert_eq!(mismatches, 0, "trace register dataflow inconsistent");
}

#[test]
fn trace_sequence_numbers_are_monotonic() {
    let (records, _) = trace_of(PROGRAM, IsaKind::Vliw4);
    for pair in records.windows(2) {
        assert!(pair[0].cycle <= pair[1].cycle);
    }
}

#[test]
fn trace_covers_every_executed_operation() {
    let exe = kahrisma::kcc::compile_to_executable(
        PROGRAM,
        &CompileOptions::for_isa(IsaKind::Vliw2),
    )
    .expect("compile");
    let records = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Simulator::new(&exe, SimConfig::default()).expect("load");
    sim.set_trace_sink(Box::new(SharedSink(records.clone())));
    sim.run(10_000_000).expect("run");
    let stats = sim.stats();
    // One record per slot operation, including `nop` fillers.
    assert_eq!(
        records.lock().unwrap().len() as u64,
        stats.operations + stats.nops,
        "trace must cover every slot operation"
    );
}

#[test]
fn identical_runs_produce_identical_traces() {
    let (a, exit_a) = trace_of(PROGRAM, IsaKind::Vliw4);
    let (b, exit_b) = trace_of(PROGRAM, IsaKind::Vliw4);
    assert_eq!(exit_a, exit_b);
    assert_eq!(a, b, "traces must be deterministic");
}

#[test]
fn trace_lines_are_well_formed() {
    let (records, _) = trace_of(PROGRAM, IsaKind::Risc);
    for r in records.iter().take(200) {
        let line = r.to_line();
        assert!(line.contains(r.opcode), "{line}");
        assert!(line.contains(&format!("{:#010x}", r.addr)), "{line}");
    }
}
