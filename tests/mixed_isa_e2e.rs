//! Mixed-ISA end-to-end tests (paper §V-D): runtime ISA switching across
//! every pair of ISAs, hand-written assembly and compiled code.

use kahrisma::prelude::*;

#[test]
fn every_isa_pair_switches_correctly() {
    // For each (caller, callee) pair: main in `caller` calls a doubling
    // helper in `callee`; the result must be identical everywhere.
    for caller in IsaKind::ALL {
        for callee in IsaKind::ALL {
            let src = "int helper(int x) { return x * 2 + 1; } int main() { return helper(33); }";
            let options = CompileOptions::for_isa(caller).with_function_isa("helper", callee);
            let exe = kahrisma::kcc::compile_to_executable(src, &options)
                .unwrap_or_else(|e| panic!("{}->{}: {e}", caller.name(), callee.name()));
            let mut sim = Simulator::new(&exe, SimConfig::default()).expect("load");
            let outcome = sim.run(1_000_000).expect("run");
            assert_eq!(
                outcome,
                RunOutcome::Halted { exit_code: 67 },
                "{} -> {}",
                caller.name(),
                callee.name()
            );
            if caller != callee {
                assert!(
                    sim.stats().isa_switches >= 2,
                    "{} -> {} executed no switches",
                    caller.name(),
                    callee.name()
                );
            }
        }
    }
}

#[test]
fn deep_mixed_isa_call_chain() {
    // A chain through all five ISAs, with recursion at the bottom.
    let src = "
        int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
        int l4(int x) { return fib(x) + 1; }
        int l3(int x) { return l4(x) * 2; }
        int l2(int x) { return l3(x) + 3; }
        int main() { return l2(10); }
    ";
    let options = CompileOptions::for_isa(IsaKind::Vliw8)
        .with_function_isa("l2", IsaKind::Vliw6)
        .with_function_isa("l3", IsaKind::Vliw4)
        .with_function_isa("l4", IsaKind::Vliw2)
        .with_function_isa("fib", IsaKind::Risc);
    let exe = kahrisma::kcc::compile_to_executable(src, &options).expect("compile");
    let mut sim = Simulator::new(&exe, SimConfig::default()).expect("load");
    let outcome = sim.run(10_000_000).expect("run");
    // fib(10)=55; l4=56; l3=112; l2=115.
    assert_eq!(outcome, RunOutcome::Halted { exit_code: 115 });
}

#[test]
fn hand_written_mixed_isa_assembly() {
    // Mixed-ISA at the assembly level, switching twice inside one function.
    let src = "
        .isa risc
        .text
        .global main
        .func main
    main:
        li   t0, 7
        switchtarget vliw2
        .isa vliw2
        { add t1, t0, t0 | addi t2, zero, 3 }
        { switchtarget risc | nop }
        .isa risc
        add  rv, t1, t2
        jr   ra
        .endfunc
    ";
    let exe = kahrisma::asm::build(&[("m.s", src)]).expect("build");
    let mut sim = Simulator::new(&exe, SimConfig::default()).expect("load");
    assert_eq!(
        sim.run(10_000).expect("run"),
        RunOutcome::Halted { exit_code: 17 } // 7+7+3
    );
    assert_eq!(sim.stats().isa_switches, 2);
}

#[test]
fn initial_isa_override_matches_paper_cli_option() {
    // Paper §V-D: "the initial ISA can optionally be specified per command
    // line parameter". A VLIW4 binary started under the (wrong) RISC ISA
    // must fail, and under the right one succeed.
    let src = "int main() { return 9; }";
    let exe = kahrisma::kcc::compile_to_executable(
        src,
        &CompileOptions::for_isa(IsaKind::Vliw4),
    )
    .expect("compile");
    // The executable's recorded entry ISA is the synthesized RISC _start.
    assert_eq!(exe.entry_isa, 0);
    let config = SimConfig { initial_isa: Some(isa_id::RISC), ..SimConfig::default() };
    let mut sim = Simulator::new(&exe, config).expect("load");
    assert_eq!(sim.run(100_000).expect("run"), RunOutcome::Halted { exit_code: 9 });
}

#[test]
fn switching_to_unknown_isa_is_an_error() {
    let src = ".isa risc\n.text\n.global main\n.func main\nmain: switchtarget 99\n jr ra\n.endfunc\n";
    let exe = kahrisma::asm::build(&[("m.s", src)]).expect("build");
    let mut sim = Simulator::new(&exe, SimConfig::default()).expect("load");
    let err = sim.run(10_000).expect_err("must fail");
    let text = err.to_string();
    assert!(text.contains("99") || text.contains("unknown"), "{text}");
}
