//! Cross-model invariants over real workloads:
//!
//! * the ILP model bounds every instance's achieved throughput (§VI-A:
//!   "theoretical upper limit for operations per cycle"),
//! * DOE never takes more cycles than AIE (drifting slots can only help),
//! * the cycle-accurate reference is at least as constrained as the
//!   unported DOE approximation,
//! * cycle counts are deterministic.

use kahrisma::core::{CacheConfig, CycleStats};
use kahrisma::prelude::*;

fn cycles(w: Workload, isa: IsaKind, kind: CycleModelKind) -> CycleStats {
    let exe = w.build(isa).expect("build");
    let mut sim = Simulator::new(&exe, SimConfig::with_model(kind)).expect("load");
    let outcome = sim.run(500_000_000).expect("run");
    assert!(matches!(outcome, RunOutcome::Halted { .. }));
    sim.cycle_stats().expect("model")
}

/// Small, quick workloads for the invariant sweep.
const QUICK: [Workload; 4] =
    [Workload::Dct, Workload::Fft, Workload::Quicksort, Workload::Aes];

#[test]
fn ilp_is_an_upper_bound_on_doe_throughput() {
    for w in QUICK {
        let ilp = cycles(w, IsaKind::Risc, CycleModelKind::Ilp);
        for isa in [IsaKind::Risc, IsaKind::Vliw4, IsaKind::Vliw8] {
            let doe = cycles(w, isa, CycleModelKind::Doe);
            // Work is measured in RISC operations for both sides.
            let achieved = ilp.operations as f64 / doe.cycles as f64;
            assert!(
                ilp.ops_per_cycle() >= achieved - 1e-9,
                "{} on {}: ILP bound {:.3} < achieved {:.3}",
                w.name(),
                isa.name(),
                ilp.ops_per_cycle(),
                achieved
            );
        }
    }
}

#[test]
fn doe_never_exceeds_aie() {
    for w in QUICK {
        for isa in [IsaKind::Risc, IsaKind::Vliw2, IsaKind::Vliw8] {
            let aie = cycles(w, isa, CycleModelKind::Aie);
            let doe = cycles(w, isa, CycleModelKind::Doe);
            assert!(
                doe.cycles <= aie.cycles,
                "{} on {}: DOE {} > AIE {}",
                w.name(),
                isa.name(),
                doe.cycles,
                aie.cycles
            );
        }
    }
}

#[test]
fn wider_instances_never_lose_under_doe() {
    // More issue slots can only relax the per-slot in-order constraint for
    // the same RISC program... but the *programs* differ per width, so
    // compare the DOE cycle counts of the actual per-width binaries: they
    // must be monotonically non-increasing within noise for the high-ILP
    // DCT workload.
    let widths = [IsaKind::Risc, IsaKind::Vliw2, IsaKind::Vliw4, IsaKind::Vliw8];
    let counts: Vec<u64> =
        widths.iter().map(|&isa| cycles(Workload::Dct, isa, CycleModelKind::Doe).cycles).collect();
    for pair in counts.windows(2) {
        assert!(
            pair[1] <= pair[0] + pair[0] / 10,
            "DCT DOE cycles regressed sharply with width: {counts:?}"
        );
    }
    // And the widest instance must be clearly faster than RISC.
    assert!(
        (counts[3] as f64) < 0.75 * counts[0] as f64,
        "no width scaling: {counts:?}"
    );
}

#[test]
fn rtl_reference_is_at_least_as_constrained_as_unported_doe() {
    for isa in [IsaKind::Risc, IsaKind::Vliw4, IsaKind::Vliw8] {
        let exe = Workload::Dct.build(isa).expect("build");
        // DOE without the connection-limit module: strictly fewer
        // constraints than the reference pipeline.
        let mut config = SimConfig::with_model(CycleModelKind::Doe);
        config.memory = MemoryHierarchy::new()
            .with_cache(CacheConfig::paper_l1())
            .with_cache(CacheConfig::paper_l2())
            .with_memory(18);
        let mut sim = Simulator::new(&exe, config).expect("load");
        sim.run(500_000_000).expect("run");
        let doe = sim.cycle_stats().expect("model").cycles;
        let rtl = kahrisma::rtl::simulate(&exe, &RtlConfig::default(), u64::MAX)
            .expect("rtl")
            .cycles;
        assert!(
            doe <= rtl,
            "{}: unported DOE {} > RTL {}",
            isa.name(),
            doe,
            rtl
        );
    }
}

#[test]
fn cycle_counts_are_deterministic() {
    for kind in [CycleModelKind::Ilp, CycleModelKind::Aie, CycleModelKind::Doe] {
        let a = cycles(Workload::Quicksort, IsaKind::Vliw4, kind);
        let b = cycles(Workload::Quicksort, IsaKind::Vliw4, kind);
        assert_eq!(a.cycles, b.cycles, "{kind:?} nondeterministic");
        assert_eq!(a.operations, b.operations);
    }
    let r1 = kahrisma::rtl::simulate(
        &Workload::Quicksort.build(IsaKind::Vliw4).unwrap(),
        &RtlConfig::default(),
        u64::MAX,
    )
    .unwrap();
    let r2 = kahrisma::rtl::simulate(
        &Workload::Quicksort.build(IsaKind::Vliw4).unwrap(),
        &RtlConfig::default(),
        u64::MAX,
    )
    .unwrap();
    assert_eq!(r1.cycles, r2.cycles);
}

#[test]
fn tighter_rtl_drift_never_speeds_things_up() {
    let exe = Workload::Dct.build(IsaKind::Vliw8).expect("build");
    let mut last = u64::MAX;
    for drift in [1usize, 2, 4, 16] {
        let config = RtlConfig { max_drift: drift, ..RtlConfig::default() };
        let cycles = kahrisma::rtl::simulate(&exe, &config, u64::MAX).expect("rtl").cycles;
        assert!(
            cycles <= last,
            "drift {drift} slower than a tighter bound ({cycles} > {last})"
        );
        last = cycles;
    }
}
